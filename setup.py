"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by the PEP 517 editable path.
"""

from setuptools import setup

setup()
