"""Audit: every documented name is importable, and __all__ is honest.

Two guarantees:

* every ``from repro... import name`` shown in any docs/*.md guide
  resolves — the guides cannot drift from the code;
* every name in each public package's ``__all__`` actually exists on
  the package (no stale exports).
"""

import importlib
import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"

_IMPORT_RE = re.compile(r"from\s+(repro(?:\.\w+)*)\s+import\s+(.*)$")

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.measures",
    "repro.normalize",
    "repro.structure",
    "repro.generate",
    "repro.spec",
    "repro.scheduling",
    "repro.analysis",
    "repro.batch",
    "repro.obs",
    "repro.robust",
    "repro.serve",
    "repro.backends",
    "repro.shard",
]


def _strip_comment(line: str) -> str:
    return line.split("#", 1)[0].strip()


def _documented_imports():
    """(doc, module, name) triples for every import in docs/*.md."""
    triples = []
    for doc in sorted(DOCS_DIR.glob("*.md")):
        lines = doc.read_text(encoding="utf-8").splitlines()
        i = 0
        while i < len(lines):
            match = _IMPORT_RE.match(lines[i].strip())
            if match:
                module, rest = match.group(1), _strip_comment(match.group(2))
                if rest.startswith("("):
                    rest = rest[1:]
                    while ")" not in rest:
                        i += 1
                        rest += "," + _strip_comment(lines[i])
                    rest = rest.split(")", 1)[0]
                for raw in rest.split(","):
                    name = raw.strip()
                    if name and name.isidentifier():
                        triples.append((doc.name, module, name))
            i += 1
    return sorted(set(triples))


DOCUMENTED = _documented_imports()


def test_docs_have_import_statements():
    # Guard against the regex silently matching nothing.
    assert len(DOCUMENTED) > 40
    docs_seen = {doc for doc, _, _ in DOCUMENTED}
    assert "API.md" in docs_seen
    assert "ROBUSTNESS.md" in docs_seen


@pytest.mark.parametrize(
    "doc,module,name",
    DOCUMENTED,
    ids=[f"{d}:{m}:{n}" for d, m, n in DOCUMENTED],
)
def test_documented_name_imports(doc, module, name):
    mod = importlib.import_module(module)
    assert hasattr(mod, name), f"docs/{doc} documents {module}.{name}"


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_all_entries_resolve(module):
    mod = importlib.import_module(module)
    missing = [n for n in mod.__all__ if not hasattr(mod, n)]
    assert not missing, f"{module}.__all__ lists missing names: {missing}"


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_all_has_no_duplicates(module):
    mod = importlib.import_module(module)
    assert len(mod.__all__) == len(set(mod.__all__))


def test_obs_entry_points_at_top_level():
    import repro

    for name in ("recording", "span", "traced", "summary", "ScalingOutcome"):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_robust_entry_points_at_top_level():
    import repro

    for name in (
        "Budget",
        "FaultPlan",
        "QuarantineReport",
        "characterize_ensemble_robust",
        "repaired_matrix",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)
