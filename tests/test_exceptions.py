"""Tests for the exception hierarchy's contracts."""

import pytest

import repro
from repro.exceptions import (
    ConvergenceError,
    DatasetError,
    EmptyRowColumnError,
    GenerationError,
    MatrixShapeError,
    MatrixValueError,
    NotNormalizableError,
    ReproError,
    SchedulingError,
    WeightError,
)

ALL_ERRORS = [
    MatrixShapeError,
    MatrixValueError,
    EmptyRowColumnError,
    WeightError,
    ConvergenceError,
    NotNormalizableError,
    DatasetError,
    SchedulingError,
    GenerationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        for cls in (
            MatrixShapeError,
            MatrixValueError,
            WeightError,
            NotNormalizableError,
            GenerationError,
            SchedulingError,
        ):
            assert issubclass(cls, ValueError), cls

    def test_dataset_error_is_keyerror(self):
        assert issubclass(DatasetError, KeyError)

    def test_convergence_error_is_runtimeerror(self):
        assert issubclass(ConvergenceError, RuntimeError)

    def test_empty_row_column_is_matrix_value(self):
        assert issubclass(EmptyRowColumnError, MatrixValueError)

    def test_all_exported_at_top_level(self):
        for cls in ALL_ERRORS + [ReproError]:
            assert getattr(repro, cls.__name__) is cls


class TestConvergenceErrorPayload:
    def test_carries_diagnostics(self):
        err = ConvergenceError("nope", iterations=42, residual=0.5)
        assert err.iterations == 42
        assert err.residual == 0.5
        assert "nope" in str(err)

    def test_defaults_none(self):
        err = ConvergenceError("nope")
        assert err.iterations is None
        assert err.residual is None

    def test_raised_with_payload_from_sinkhorn(self, eq10_matrix):
        from repro.normalize import sinkhorn_knopp

        with pytest.raises(ConvergenceError) as excinfo:
            sinkhorn_knopp(eq10_matrix, max_iterations=25)
        assert excinfo.value.iterations == 25
        assert excinfo.value.residual > 0


class TestSingleCatchAll:
    def test_library_failures_catchable_uniformly(self, eq10_matrix):
        """The package contract: one except clause covers everything."""
        from repro import ETCMatrix, standardize
        from repro.generate import from_targets
        from repro.scheduling import run_heuristic

        failing_calls = [
            lambda: ETCMatrix([[0.0]]),
            lambda: standardize(eq10_matrix),
            lambda: from_targets(2, 2, (2.0, 0.5, 0.1)),
            lambda: run_heuristic("nope", [[1.0]]),
        ]
        for call in failing_calls:
            with pytest.raises(ReproError):
                call()
