"""Property-based tests for the scheduling substrate.

Invariants checked against randomized workloads:

* every heuristic's makespan is bounded below by the two classic lower
  bounds (the largest per-task best time, and ideal-parallelism work
  division) and above by the serial schedule;
* Min-min/Max-min/Sufferage produce permutation-valid assignments;
* evaluate_mapping's metrics are internally consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.scheduling import (
    duplex,
    evaluate_mapping,
    max_min,
    mct,
    met,
    min_min,
    olb,
    simulate_online,
    sufferage,
)

etc_instances = st.tuples(
    st.integers(1, 14), st.integers(1, 5)
).flatmap(
    lambda shape: npst.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(0.1, 50.0, allow_nan=False),
    )
)

HEURISTICS = [olb, met, mct, min_min, max_min, sufferage, duplex]


def _lower_bound(etc: np.ndarray) -> float:
    """max(longest unavoidable task, perfectly divided best-case work)."""
    best = etc.min(axis=1)
    return max(float(best.max()), float(best.sum() / etc.shape[1]))


def _serial_upper_bound(etc: np.ndarray) -> float:
    """Everything on one machine, worst choice per task."""
    return float(etc.max(axis=1).sum())


class TestMakespanBounds:
    @given(etc_instances)
    @settings(max_examples=30, deadline=None)
    def test_all_heuristics_within_bounds(self, etc):
        lb = _lower_bound(etc)
        ub = _serial_upper_bound(etc)
        for heuristic in HEURISTICS:
            makespan = heuristic(etc, seed=0).makespan
            assert makespan >= lb - 1e-9, heuristic.__name__
            assert makespan <= ub + 1e-9, heuristic.__name__

    @given(etc_instances)
    @settings(max_examples=30, deadline=None)
    def test_duplex_never_worse_than_parents(self, etc):
        d = duplex(etc).makespan
        assert d <= min_min(etc).makespan + 1e-9
        assert d <= max_min(etc).makespan + 1e-9

    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_single_machine_makespan_is_total_work(self, etc):
        column = etc[:, :1]
        for heuristic in HEURISTICS:
            assert heuristic(column).makespan == pytest.approx(
                float(column.sum())
            )


class TestAssignmentValidity:
    @given(etc_instances)
    @settings(max_examples=30, deadline=None)
    def test_assignments_in_range_and_complete(self, etc):
        for heuristic in HEURISTICS:
            mapping = heuristic(etc, seed=1)
            assert mapping.assignment.shape == (etc.shape[0],)
            assert (
                (0 <= mapping.assignment)
                & (mapping.assignment < etc.shape[1])
            ).all()

    @given(etc_instances)
    @settings(max_examples=30, deadline=None)
    def test_loads_reconstruct_makespan(self, etc):
        for heuristic in HEURISTICS:
            mapping = heuristic(etc, seed=2)
            rebuilt = np.bincount(
                mapping.assignment,
                weights=etc[np.arange(etc.shape[0]), mapping.assignment],
                minlength=etc.shape[1],
            )
            np.testing.assert_allclose(rebuilt, mapping.machine_loads)
            assert mapping.makespan == pytest.approx(rebuilt.max())

    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_flowtime_at_least_sum_of_times(self, etc):
        mapping = min_min(etc)
        times = etc[np.arange(etc.shape[0]), mapping.assignment]
        assert mapping.flowtime >= times.sum() - 1e-9


class TestOnlineProperties:
    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_online_zero_arrivals_matches_mct(self, etc):
        """Online MCT with simultaneous arrivals is exactly batch MCT."""
        online = simulate_online(etc, np.zeros(etc.shape[0]), policy="mct")
        static = mct(etc)
        np.testing.assert_array_equal(online.assignment, static.assignment)
        assert online.makespan == pytest.approx(static.makespan)

    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_completion_after_start_after_arrival(self, etc):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 10, size=etc.shape[0]))
        result = simulate_online(etc, arrivals, policy="mct")
        assert (result.start_times >= arrivals - 1e-12).all()
        assert (result.completion_times > result.start_times).all()

    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_no_machine_overlap(self, etc):
        """FIFO invariant: execution windows on one machine are
        disjoint."""
        rng = np.random.default_rng(1)
        arrivals = np.sort(rng.uniform(0, 5, size=etc.shape[0]))
        result = simulate_online(etc, arrivals, policy="mct")
        for machine in range(etc.shape[1]):
            mask = result.assignment == machine
            if mask.sum() < 2:
                continue
            starts = result.start_times[mask]
            ends = result.completion_times[mask]
            order = np.argsort(starts)
            assert (starts[order][1:] >= ends[order][:-1] - 1e-9).all()

    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_utilization_bounded(self, etc):
        result = simulate_online(etc, np.zeros(etc.shape[0]))
        assert (result.utilization >= 0).all()
        assert (result.utilization <= 1 + 1e-9).all()


class TestEvaluateMappingConsistency:
    @given(etc_instances)
    @settings(max_examples=20, deadline=None)
    def test_metrics_for_random_assignment(self, etc):
        rng = np.random.default_rng(3)
        assignment = rng.integers(0, etc.shape[1], size=etc.shape[0])
        mapping = evaluate_mapping(etc, assignment)
        assert mapping.makespan <= mapping.flowtime + 1e-9
        assert mapping.machine_loads.sum() == pytest.approx(
            etc[np.arange(etc.shape[0]), assignment].sum()
        )
