"""Tests for Mapping and evaluate_mapping."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import evaluate_mapping


@pytest.fixture
def etc():
    return np.array(
        [
            [2.0, 5.0],
            [4.0, 1.0],
            [3.0, 3.0],
        ]
    )


class TestEvaluateMapping:
    def test_loads_and_makespan(self, etc):
        mapping = evaluate_mapping(etc, [0, 1, 0])
        np.testing.assert_allclose(mapping.machine_loads, [5.0, 1.0])
        assert mapping.makespan == 5.0

    def test_flowtime_in_assignment_order(self, etc):
        mapping = evaluate_mapping(etc, [0, 0, 0])
        # Completion times on machine 0: 2, 6, 9 -> flowtime 17.
        assert mapping.flowtime == pytest.approx(17.0)

    def test_flowtime_across_machines(self, etc):
        mapping = evaluate_mapping(etc, [0, 1, 1])
        # m0: 2 -> 2; m1: 1 then 1+3 -> 1 + 4.
        assert mapping.flowtime == pytest.approx(2.0 + 1.0 + 4.0)

    def test_heuristic_label(self, etc):
        assert evaluate_mapping(etc, [0, 0, 0], heuristic="x").heuristic == "x"

    def test_empty_machine_allowed(self, etc):
        mapping = evaluate_mapping(etc, [0, 0, 0])
        assert mapping.machine_loads[1] == 0.0

    def test_wrong_length_rejected(self, etc):
        with pytest.raises(SchedulingError):
            evaluate_mapping(etc, [0, 1])

    def test_out_of_range_rejected(self, etc):
        with pytest.raises(SchedulingError):
            evaluate_mapping(etc, [0, 2, 0])
        with pytest.raises(SchedulingError):
            evaluate_mapping(etc, [0, -1, 0])

    def test_incompatible_assignment_rejected(self):
        etc = np.array([[1.0, np.inf], [2.0, 3.0]])
        with pytest.raises(SchedulingError):
            evaluate_mapping(etc, [1, 0])

    def test_results_readonly(self, etc):
        mapping = evaluate_mapping(etc, [0, 1, 0])
        with pytest.raises(ValueError):
            mapping.assignment[0] = 1
        with pytest.raises(ValueError):
            mapping.machine_loads[0] = 0.0
