"""Tests for workload expansion (task types -> task instances)."""

import numpy as np
import pytest

from repro import ECSMatrix, ETCMatrix, SchedulingError
from repro.scheduling import expand_workload


@pytest.fixture
def etc():
    return ETCMatrix(
        [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
        task_names=["a", "b", "c"],
        task_weights=[1.0, 1.0, 8.0],
    )


class TestExpandWorkload:
    def test_explicit_counts(self, etc):
        w = expand_workload(etc, counts=[2, 0, 3], shuffle=False)
        assert w.n_instances == 5
        np.testing.assert_array_equal(w.type_of, [0, 0, 2, 2, 2])
        np.testing.assert_allclose(w.etc_instances[0], [1.0, 2.0])
        np.testing.assert_allclose(w.etc_instances[-1], [5.0, 6.0])

    def test_default_one_per_type(self, etc):
        w = expand_workload(etc, shuffle=False)
        assert w.n_instances == 3
        np.testing.assert_array_equal(w.type_of, [0, 1, 2])

    def test_total_draw_uses_weights(self, etc):
        w = expand_workload(etc, total=2000, seed=0)
        counts = np.bincount(w.type_of, minlength=3)
        # Task c has weight 8/10 -> roughly 80% of the batch.
        assert counts[2] / 2000 == pytest.approx(0.8, abs=0.05)

    def test_shuffle_controls_order(self, etc):
        a = expand_workload(etc, counts=[5, 5, 5], shuffle=False)
        assert (np.diff(a.type_of) >= 0).all()
        b = expand_workload(etc, counts=[5, 5, 5], shuffle=True, seed=1)
        assert not (np.diff(b.type_of) >= 0).all()

    def test_accepts_ecs(self):
        ecs = ECSMatrix([[1.0, 0.5]])
        w = expand_workload(ecs, counts=[2], shuffle=False)
        np.testing.assert_allclose(w.etc_instances, [[1.0, 2.0], [1.0, 2.0]])

    def test_accepts_raw_array(self):
        w = expand_workload([[1.0, 2.0]], counts=[3])
        assert w.n_instances == 3
        assert w.n_machines == 2

    def test_machine_names_carried(self, etc):
        assert expand_workload(etc).machine_names == ("m1", "m2")

    def test_bad_counts_rejected(self, etc):
        with pytest.raises(SchedulingError):
            expand_workload(etc, counts=[1, 2])
        with pytest.raises(SchedulingError):
            expand_workload(etc, counts=[0, 0, 0])
        with pytest.raises(SchedulingError):
            expand_workload(etc, counts=[-1, 1, 1])

    def test_bad_total_rejected(self, etc):
        with pytest.raises(SchedulingError):
            expand_workload(etc, total=0)

    def test_instances_readonly(self, etc):
        w = expand_workload(etc, counts=[1, 1, 1])
        with pytest.raises(ValueError):
            w.etc_instances[0, 0] = 0.0

    def test_deterministic(self, etc):
        a = expand_workload(etc, total=50, seed=3)
        b = expand_workload(etc, total=50, seed=3)
        np.testing.assert_array_equal(a.type_of, b.type_of)
