"""Tests for the text Gantt renderer."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import gantt_text, simulate_online


@pytest.fixture
def two_machine_result():
    return simulate_online([[2.0, 9.0], [9.0, 2.0]], [0.0, 0.0])


class TestGanttText:
    def test_basic_layout(self, two_machine_result):
        text = gantt_text(two_machine_result, width=8)
        lines = text.splitlines()
        assert lines[0] == "m1 | 00000000"
        assert lines[1] == "m2 | 11111111"
        assert lines[2] == "t = 0 .. 2"

    def test_idle_cells_dotted(self):
        # One machine, a gap between arrivals.
        res = simulate_online([[1.0], [1.0]], [0.0, 3.0])
        text = gantt_text(res, width=8)
        assert "." in text.splitlines()[0]

    def test_custom_labels(self, two_machine_result):
        text = gantt_text(
            two_machine_result,
            width=4,
            machine_names=["xeon", "gpu"],
            task_labels=["A", "B"],
        )
        assert "xeon | AAAA" in text
        assert "gpu  | BBBB" in text

    def test_row_per_machine_plus_axis(self):
        rng = np.random.default_rng(0)
        etc = rng.uniform(1, 5, size=(10, 4))
        res = simulate_online(etc, np.zeros(10))
        text = gantt_text(res, width=30)
        assert len(text.splitlines()) == 5

    def test_rows_equal_width(self):
        rng = np.random.default_rng(1)
        etc = rng.uniform(1, 5, size=(8, 3))
        res = simulate_online(etc, np.sort(rng.uniform(0, 5, 8)))
        lines = gantt_text(res, width=40).splitlines()[:-1]
        assert len({len(line) for line in lines}) == 1

    def test_busy_fraction_tracks_utilization(self):
        rng = np.random.default_rng(2)
        etc = rng.uniform(1, 5, size=(12, 3))
        res = simulate_online(etc, np.zeros(12))
        lines = gantt_text(res, width=100).splitlines()[:-1]
        for machine, line in enumerate(lines):
            cells = line.split("| ")[1]
            busy = sum(1 for c in cells if c != ".") / len(cells)
            assert busy == pytest.approx(
                res.utilization[machine], abs=0.08
            )

    def test_validation(self, two_machine_result):
        with pytest.raises(SchedulingError):
            gantt_text(two_machine_result, width=2)
        with pytest.raises(SchedulingError):
            gantt_text(two_machine_result, machine_names=["only-one"])
        with pytest.raises(SchedulingError):
            gantt_text(two_machine_result, task_labels=["x"])
