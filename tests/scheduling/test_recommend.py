"""Tests for the measure-driven heuristic recommendation."""

import numpy as np

from repro.measures import characterize
from repro.scheduling import (
    HEURISTICS,
    compare_heuristics,
    recommend_heuristic,
)
from repro.spec import cint2006rate, figure8b


class TestRecommendHeuristic:
    def test_returns_known_heuristic_and_reason(self):
        name, reason = recommend_heuristic(cint2006rate())
        assert name in HEURISTICS
        assert len(reason) > 10

    def test_homogeneous_gets_mct(self):
        name, _ = recommend_heuristic(np.ones((4, 4)))
        assert name == "mct"

    def test_affinity_gets_sufferage(self):
        name, reason = recommend_heuristic(figure8b())
        assert name == "sufferage"
        assert "affinity" in reason

    def test_dominant_tasks_get_duplex(self):
        from repro.generate import from_targets

        env = from_targets(6, 4, (0.6, 0.2, 0.1))
        name, _ = recommend_heuristic(env)
        assert name == "duplex"

    def test_heterogeneous_machines_get_min_min(self):
        from repro.generate import from_targets

        env = from_targets(6, 4, (0.4, 0.8, 0.1))
        name, _ = recommend_heuristic(env)
        assert name == "min_min"

    def test_accepts_profile(self):
        profile = characterize(cint2006rate())
        assert recommend_heuristic(profile) == recommend_heuristic(
            cint2006rate()
        )

    def test_recommendation_is_competitive(self):
        """Across a grid of generated environments the recommendation
        stays within 1.35x of the per-environment best mapper."""
        from repro.generate import heterogeneity_grid

        for member in heterogeneity_grid(
            8,
            5,
            mph_values=(0.35, 0.85),
            tdh_values=(0.6,),
            tma_values=(0.05, 0.45),
            jitter=0.2,
            seed=0,
        ):
            etc = member.ecs.to_etc()
            name, _ = recommend_heuristic(etc)
            comparison = compare_heuristics(
                etc, counts=[4] * 8, seed=1
            )
            assert comparison.ratios[name] < 1.35, (member.spec, name)
