"""Tests for heuristic comparison and the selection study."""

import pytest

from repro.scheduling import HeuristicComparison, compare_heuristics, selection_study
from repro.spec import cint2006rate


class TestCompareHeuristics:
    def test_default_excludes_ga(self):
        comparison = compare_heuristics(cint2006rate(), seed=0)
        assert "ga" not in comparison.makespans
        assert "min_min" in comparison.makespans

    def test_explicit_subset(self):
        comparison = compare_heuristics(
            cint2006rate(), heuristics=["mct", "olb"], seed=1
        )
        assert set(comparison.makespans) == {"mct", "olb"}

    def test_best_is_minimum(self):
        comparison = compare_heuristics(cint2006rate(), total=40, seed=2)
        best = comparison.best
        assert comparison.makespans[best] == min(comparison.makespans.values())

    def test_ratios_normalized(self):
        comparison = compare_heuristics(cint2006rate(), total=40, seed=3)
        ratios = comparison.ratios
        assert min(ratios.values()) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in ratios.values())

    def test_same_workload_for_all(self):
        """Deterministic seed -> identical workload -> duplex never
        worse than min_min or max_min on the same batch."""
        comparison = compare_heuristics(cint2006rate(), total=60, seed=4)
        assert comparison.makespans["duplex"] <= comparison.makespans[
            "min_min"
        ] + 1e-9
        assert comparison.makespans["duplex"] <= comparison.makespans[
            "max_min"
        ] + 1e-9


class TestSelectionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return selection_study(
            n_tasks=6,
            n_machines=4,
            instances_per_type=3,
            mph_values=(0.3, 0.9),
            tdh_values=(0.6,),
            tma_values=(0.0, 0.5),
            jitter=0.2,
            seed=0,
        )

    def test_grid_coverage(self, study):
        assert len(study) == 4
        specs = {(r.spec.mph, r.spec.tdh, r.spec.tma) for r in study}
        assert specs == {
            (0.3, 0.6, 0.0),
            (0.3, 0.6, 0.5),
            (0.9, 0.6, 0.0),
            (0.9, 0.6, 0.5),
        }

    def test_results_carry_specs(self, study):
        assert all(isinstance(r, HeuristicComparison) for r in study)
        assert all(r.spec is not None for r in study)

    def test_met_penalty_depends_on_regime(self, study):
        """MET chases the single fast machine when affinity is low and
        machines are heterogeneous, but spreads naturally when each
        task's best machine differs (high TMA)."""
        by_spec = {(r.spec.mph, r.spec.tma): r.ratios["met"] for r in study}
        assert by_spec[(0.9, 0.0)] > by_spec[(0.9, 0.5)]

    def test_batch_heuristics_competitive_everywhere(self, study):
        for r in study:
            best_batch = min(
                r.ratios["min_min"], r.ratios["sufferage"], r.ratios["duplex"]
            )
            assert best_batch < 1.5
