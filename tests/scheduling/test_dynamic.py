"""Tests for the online (dynamic) mapping simulator."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import (
    ONLINE_POLICIES,
    expand_workload,
    poisson_arrivals,
    simulate_online,
)
from repro.spec import cint2006rate


class TestPoissonArrivals:
    def test_monotone_and_positive(self):
        times = poisson_arrivals(200, rate=3.0, seed=0)
        assert (np.diff(times) >= 0).all()
        assert (times > 0).all()

    def test_rate_controls_density(self):
        fast = poisson_arrivals(500, rate=10.0, seed=1)[-1]
        slow = poisson_arrivals(500, rate=1.0, seed=1)[-1]
        assert slow == pytest.approx(10 * fast, rel=1e-9)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            poisson_arrivals(10, 1.0, seed=2), poisson_arrivals(10, 1.0, seed=2)
        )

    def test_validation(self):
        with pytest.raises(SchedulingError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(Exception):
            poisson_arrivals(5, 0.0)


class TestSimulateOnline:
    ETC = np.array([[1.0, 5.0], [5.0, 1.0], [1.0, 5.0], [5.0, 1.0]])

    def test_mct_balances_obvious_case(self):
        result = simulate_online(self.ETC, np.zeros(4), policy="mct")
        np.testing.assert_array_equal(result.assignment, [0, 1, 0, 1])
        assert result.makespan == 2.0

    def test_fifo_queueing(self):
        # Single machine: tasks run back to back.
        etc = np.array([[2.0], [3.0], [1.0]])
        result = simulate_online(etc, [0.0, 0.0, 0.0], policy="mct")
        np.testing.assert_allclose(result.start_times, [0.0, 2.0, 5.0])
        np.testing.assert_allclose(result.completion_times, [2.0, 5.0, 6.0])

    def test_idle_gap_when_arrivals_sparse(self):
        etc = np.array([[1.0], [1.0]])
        result = simulate_online(etc, [0.0, 10.0], policy="mct")
        assert result.start_times[1] == 10.0
        assert result.makespan == 11.0
        # Utilization reflects the idle gap.
        assert result.utilization[0] == pytest.approx(2.0 / 11.0)

    def test_mean_response(self):
        etc = np.array([[2.0], [2.0]])
        result = simulate_online(etc, [0.0, 0.0], policy="mct")
        # Responses: 2 and 4.
        assert result.mean_response == 3.0

    def test_met_queue_blind(self):
        etc = np.array([[1.0, 1.5]] * 5)
        result = simulate_online(etc, np.zeros(5), policy="met")
        np.testing.assert_array_equal(result.assignment, 0)

    def test_olb_ignores_etc(self):
        etc = np.array([[1.0, 100.0]] * 4)
        result = simulate_online(etc, np.zeros(4), policy="olb", seed=0)
        assert set(result.assignment.tolist()) == {0, 1}

    def test_kpb_interpolates(self):
        # With k=1 KPB must equal MCT.
        rng = np.random.default_rng(3)
        etc = rng.uniform(1, 10, size=(30, 5))
        arrivals = poisson_arrivals(30, 1.0, seed=4)
        full = simulate_online(etc, arrivals, policy="kpb", k=1.0)
        mct = simulate_online(etc, arrivals, policy="mct")
        np.testing.assert_array_equal(full.assignment, mct.assignment)

    def test_kpb_small_k_close_to_met(self):
        rng = np.random.default_rng(5)
        etc = rng.uniform(1, 10, size=(20, 5))
        tiny = simulate_online(etc, np.zeros(20), policy="kpb", k=0.01)
        met = simulate_online(etc, np.zeros(20), policy="met")
        # With one candidate, KPB picks each task's best machine = MET.
        np.testing.assert_array_equal(tiny.assignment, met.assignment)

    def test_auto_policy_labels(self):
        w = expand_workload(cint2006rate(), total=30, seed=6)
        arrivals = poisson_arrivals(30, 0.01, seed=7)
        result = simulate_online(w, arrivals, policy="auto")
        assert result.policy.startswith("auto[k=")

    def test_incompatibility_respected(self):
        etc = np.array([[np.inf, 2.0], [1.0, np.inf]] * 3)
        for policy in ("mct", "met", "olb", "kpb"):
            result = simulate_online(
                etc, np.zeros(6), policy=policy, seed=8
            )
            assert np.isfinite(
                etc[np.arange(6), result.assignment]
            ).all(), policy

    def test_validation_errors(self):
        with pytest.raises(SchedulingError):
            simulate_online(self.ETC, [0.0, 0.0])  # wrong arrival count
        with pytest.raises(SchedulingError):
            simulate_online(self.ETC, [3.0, 2.0, 1.0, 0.0])  # decreasing
        with pytest.raises(SchedulingError):
            simulate_online(self.ETC, [-1.0, 0.0, 0.0, 0.0])
        with pytest.raises(SchedulingError):
            simulate_online(self.ETC, np.zeros(4), policy="psychic")
        with pytest.raises(SchedulingError):
            simulate_online(
                np.array([[np.inf, np.inf]]), [0.0]
            )

    def test_policy_registry(self):
        assert set(ONLINE_POLICIES) == {"mct", "met", "olb", "kpb", "auto"}

    def test_results_readonly(self):
        result = simulate_online(self.ETC, np.zeros(4))
        with pytest.raises(ValueError):
            result.assignment[0] = 1


class TestLoadRegimes:
    def test_saturation_raises_response(self):
        """Response time grows when arrivals outpace service capacity."""
        w = expand_workload(cint2006rate(), total=40, seed=9)
        light = simulate_online(
            w, poisson_arrivals(40, rate=0.001, seed=10), policy="mct"
        )
        heavy = simulate_online(
            w, poisson_arrivals(40, rate=1.0, seed=10), policy="mct"
        )
        assert heavy.mean_response > light.mean_response

    def test_mct_beats_met_under_load(self):
        w = expand_workload(cint2006rate(), total=50, seed=11)
        arrivals = poisson_arrivals(50, rate=0.05, seed=12)
        mct = simulate_online(w, arrivals, policy="mct")
        met = simulate_online(w, arrivals, policy="met")
        assert mct.makespan < met.makespan
