"""Tests for makespan bounds and the exact branch-and-bound solver."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import (
    duplex,
    makespan_lower_bound,
    makespan_upper_bound,
    max_min,
    min_min,
    optimal_makespan,
    sufferage,
)


class TestBounds:
    def test_dominant_task_bound(self):
        assert makespan_lower_bound(
            [[4.0, 9.0], [1.0, 1.0], [1.0, 1.0]]
        ) == 4.0

    def test_work_division_bound(self):
        etc = np.full((4, 2), 2.0)
        assert makespan_lower_bound(etc) == 4.0

    def test_upper_bound_serial(self):
        assert makespan_upper_bound([[1.0, 3.0], [2.0, 5.0]]) == 8.0

    def test_incompatible_entries_skipped(self):
        etc = np.array([[np.inf, 2.0], [3.0, np.inf]])
        assert makespan_lower_bound(etc) == pytest.approx(3.0)
        assert makespan_upper_bound(etc) == pytest.approx(5.0)

    def test_bounds_order(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            etc = rng.uniform(1, 20, size=(8, 3))
            assert makespan_lower_bound(etc) <= makespan_upper_bound(etc)


class TestOptimalMakespan:
    def test_known_small_case(self):
        assert optimal_makespan([[3.0, 1.0], [2.0, 4.0]]) == 2.0

    def test_between_bounds(self):
        rng = np.random.default_rng(1)
        for seed in range(8):
            rng = np.random.default_rng(seed)
            etc = rng.uniform(1, 10, size=(7, 3))
            opt = optimal_makespan(etc)
            assert makespan_lower_bound(etc) - 1e-9 <= opt
            assert opt <= makespan_upper_bound(etc) + 1e-9

    def test_heuristics_never_beat_optimum(self):
        rng = np.random.default_rng(2)
        for seed in range(6):
            rng = np.random.default_rng(100 + seed)
            etc = rng.uniform(1, 10, size=(8, 3))
            opt = optimal_makespan(etc)
            for heuristic in (min_min, max_min, sufferage, duplex):
                assert heuristic(etc).makespan >= opt - 1e-9

    def test_heuristics_usually_near_optimal(self):
        """On paper-scale instances the batch heuristics stay within
        ~1.5x of optimum — the empirical finding of Braun et al."""
        rng = np.random.default_rng(3)
        ratios = []
        for seed in range(6):
            rng = np.random.default_rng(200 + seed)
            etc = rng.uniform(1, 10, size=(8, 3))
            opt = optimal_makespan(etc)
            best = min(
                h(etc).makespan for h in (min_min, sufferage, duplex)
            )
            ratios.append(best / opt)
        assert max(ratios) < 1.5

    def test_matches_brute_force(self):
        from itertools import product

        rng = np.random.default_rng(4)
        etc = rng.uniform(1, 10, size=(5, 2))
        brute = min(
            max(
                sum(etc[i, a[i]] for i in range(5) if a[i] == m)
                for m in range(2)
            )
            for a in product(range(2), repeat=5)
        )
        assert optimal_makespan(etc) == pytest.approx(brute)

    def test_respects_incompatibility(self):
        etc = np.array([[np.inf, 2.0], [3.0, np.inf], [1.0, 1.0]])
        # Forced: t0->m1 (2), t1->m0 (3); t2 on m1 balances to 3.
        assert optimal_makespan(etc) == pytest.approx(3.0)

    def test_size_guard(self):
        with pytest.raises(SchedulingError):
            optimal_makespan(np.ones((30, 10)))
