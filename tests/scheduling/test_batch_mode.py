"""Tests for batch-mode dynamic mapping (regeneration intervals)."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import (
    BATCH_SELECT_RULES,
    expand_workload,
    poisson_arrivals,
    simulate_batch_mode,
    simulate_online,
)
from repro.spec import cint2006rate


class TestSimulateBatchMode:
    ETC = np.array([[1.0, 5.0], [5.0, 1.0], [1.0, 5.0], [5.0, 1.0]])

    def test_single_epoch_matches_min_min(self):
        """All tasks arriving in one epoch: the mapping equals plain
        Min-min on the whole batch (started at the boundary)."""
        from repro.scheduling import min_min

        rng = np.random.default_rng(0)
        etc = rng.uniform(1, 10, size=(12, 3))
        batch = simulate_batch_mode(etc, np.full(12, 0.5), interval=1.0)
        static = min_min(etc)
        # All twelve map together at the t=1 boundary, so the makespan
        # is the static Min-min makespan shifted by the boundary.
        assert batch.makespan == pytest.approx(static.makespan + 1.0)

    def test_tasks_wait_for_boundary(self):
        res = simulate_batch_mode(self.ETC, [0.1, 0.2, 0.3, 0.4],
                                  interval=1.0)
        assert (res.start_times >= 1.0).all()
        assert res.makespan == 3.0

    def test_arrival_on_boundary_maps_immediately(self):
        res = simulate_batch_mode(np.array([[2.0]]), [5.0], interval=5.0)
        assert res.start_times[0] == 5.0

    def test_multiple_epochs(self):
        etc = np.array([[1.0], [1.0], [1.0]])
        res = simulate_batch_mode(etc, [0.5, 0.6, 5.5], interval=1.0)
        # First two map at the t=1 boundary, the third at t=6.
        np.testing.assert_allclose(np.sort(res.start_times), [1.0, 2.0, 6.0])

    def test_machine_carryover_between_epochs(self):
        # Epoch 1 loads the machine with 10 units; epoch 2's task must
        # wait for it to drain.
        etc = np.array([[10.0], [1.0]])
        res = simulate_batch_mode(etc, [0.5, 1.5], interval=1.0)
        assert res.start_times[0] == pytest.approx(1.0)
        assert res.start_times[1] == pytest.approx(11.0)

    @pytest.mark.parametrize("rule", BATCH_SELECT_RULES)
    def test_all_rules_valid(self, rule):
        w = expand_workload(cint2006rate(), total=30, seed=1)
        arrivals = poisson_arrivals(30, rate=0.05, seed=2)
        res = simulate_batch_mode(w, arrivals, interval=200.0, rule=rule)
        assert res.makespan > 0
        assert res.policy.startswith(f"batch[{rule}")

    def test_longer_interval_worse_response(self):
        w = expand_workload(cint2006rate(), total=40, seed=3)
        arrivals = poisson_arrivals(40, rate=0.02, seed=4)
        short = simulate_batch_mode(w, arrivals, interval=50.0)
        long = simulate_batch_mode(w, arrivals, interval=2000.0)
        assert short.mean_response < long.mean_response

    def test_batching_helps_bursty_load_vs_olb_style(self):
        """With a burst of mixed tasks, the batch mapper exploits joint
        knowledge that immediate OLB cannot."""
        w = expand_workload(cint2006rate(), total=50, seed=5)
        arrivals = np.zeros(50)
        batch = simulate_batch_mode(w, arrivals, interval=1.0)
        olb = simulate_online(w, arrivals, policy="olb", seed=6)
        assert batch.makespan < olb.makespan

    def test_incompatibilities_respected(self):
        etc = np.array([[np.inf, 2.0], [1.0, np.inf]] * 2)
        res = simulate_batch_mode(etc, np.zeros(4), interval=1.0)
        assert np.isfinite(etc[np.arange(4), res.assignment]).all()

    def test_validation(self):
        with pytest.raises(SchedulingError):
            simulate_batch_mode(self.ETC, [0.0, 0.0], interval=1.0)
        with pytest.raises(SchedulingError):
            simulate_batch_mode(self.ETC, np.zeros(4), interval=1.0,
                                rule="psychic")
        with pytest.raises(Exception):
            simulate_batch_mode(self.ETC, np.zeros(4), interval=0.0)

    def test_policy_label(self):
        res = simulate_batch_mode(self.ETC, np.zeros(4), interval=2.5,
                                  rule="sufferage")
        assert res.policy == "batch[sufferage, interval=2.5]"
