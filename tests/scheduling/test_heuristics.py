"""Tests for the mapping heuristics (Braun et al. substrate)."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import (
    HEURISTICS,
    duplex,
    ga,
    max_min,
    mct,
    met,
    min_min,
    olb,
    random_mapping,
    run_heuristic,
    sufferage,
)

ALL = [olb, met, mct, min_min, max_min, sufferage, duplex, random_mapping]


@pytest.fixture
def simple():
    # Two tasks, each clearly belonging to a different machine.
    return np.array([[1.0, 10.0], [10.0, 1.0]])


class TestBasics:
    @pytest.mark.parametrize("heuristic", ALL)
    def test_valid_mapping(self, heuristic):
        rng = np.random.default_rng(0)
        etc = rng.uniform(1, 10, size=(12, 4))
        mapping = heuristic(etc, seed=1)
        assert mapping.assignment.shape == (12,)
        assert ((0 <= mapping.assignment) & (mapping.assignment < 4)).all()
        assert mapping.makespan == pytest.approx(mapping.machine_loads.max())

    @pytest.mark.parametrize("heuristic", ALL)
    def test_affinity_obvious_case(self, heuristic, simple):
        mapping = heuristic(simple, seed=2)
        if heuristic is not random_mapping:
            np.testing.assert_array_equal(mapping.assignment, [0, 1])
            assert mapping.makespan == 1.0

    @pytest.mark.parametrize("heuristic", ALL)
    def test_incompatibility_respected(self, heuristic):
        etc = np.array(
            [
                [np.inf, 2.0, 3.0],
                [1.0, np.inf, 3.0],
                [1.0, 2.0, np.inf],
            ]
        )
        mapping = heuristic(etc, seed=3)
        assert np.isfinite(
            etc[np.arange(3), mapping.assignment]
        ).all()

    def test_all_incompatible_task_rejected(self):
        etc = np.array([[np.inf, np.inf], [1.0, 1.0]])
        with pytest.raises(SchedulingError):
            min_min(etc)

    def test_nonpositive_etc_rejected(self):
        with pytest.raises(SchedulingError):
            mct([[0.0, 1.0]])


class TestKnownBehaviours:
    def test_met_ignores_load(self):
        # One machine dominates: MET piles everything on it.
        etc = np.array([[1.0, 2.0]] * 6)
        mapping = met(etc)
        np.testing.assert_array_equal(mapping.assignment, 0)
        assert mapping.makespan == 6.0

    def test_mct_balances_that_case(self):
        etc = np.array([[1.0, 2.0]] * 6)
        assert mct(etc).makespan < met(etc).makespan

    def test_olb_ignores_execution_times(self):
        # OLB alternates machines regardless of the 100x penalty.
        etc = np.array([[1.0, 100.0]] * 4)
        mapping = olb(etc)
        assert set(mapping.assignment.tolist()) == {0, 1}

    def test_min_min_optimal_small_case(self):
        etc = np.array([[3.0, 1.0], [2.0, 4.0]])
        assert min_min(etc).makespan == 2.0

    def test_max_min_schedules_long_task_first(self):
        # One giant task plus small filler: Max-min dedicates the best
        # machine to the giant.
        etc = np.vstack([[10.0, 12.0], np.tile([2.0, 2.5], (4, 1))])
        mapping = max_min(etc)
        assert mapping.assignment[0] == 0

    def test_sufferage_identifies_contested_machine(self):
        # Tasks 0/1 both prefer machine 0 but task 1 suffers more when
        # displaced.
        etc = np.array([[1.0, 2.0], [1.0, 9.0]])
        mapping = sufferage(etc)
        assert mapping.assignment[1] == 0

    def test_duplex_best_of_both(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            etc = rng.uniform(1, 20, size=(10, 3))
            d = duplex(etc).makespan
            assert d <= min_min(etc).makespan + 1e-9
            assert d <= max_min(etc).makespan + 1e-9

    def test_batch_beats_random_on_average(self):
        rng = np.random.default_rng(5)
        wins = 0
        for seed in range(8):
            etc = rng.uniform(1, 50, size=(20, 5))
            if min_min(etc).makespan <= random_mapping(etc, seed=seed).makespan:
                wins += 1
        assert wins >= 7


class TestGa:
    def test_never_worse_than_min_min(self):
        rng = np.random.default_rng(6)
        etc = rng.uniform(1, 30, size=(15, 4))
        assert ga(etc, seed=7, generations=40).makespan <= min_min(
            etc
        ).makespan + 1e-9

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(8)
        etc = rng.uniform(1, 30, size=(10, 3))
        a = ga(etc, seed=9, generations=20)
        b = ga(etc, seed=9, generations=20)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_respects_compatibility(self):
        etc = np.array([[np.inf, 2.0], [1.0, np.inf], [3.0, 3.0]] * 3)
        mapping = ga(etc, seed=10, generations=15)
        assert np.isfinite(etc[np.arange(9), mapping.assignment]).all()


class TestRegistry:
    def test_registry_complete(self):
        assert set(HEURISTICS) == {
            "olb", "met", "mct", "min_min", "max_min", "sufferage",
            "duplex", "ga", "random",
        }

    def test_run_by_name(self, simple):
        assert run_heuristic("MIN_MIN", simple).makespan == 1.0

    def test_unknown_name(self, simple):
        with pytest.raises(SchedulingError):
            run_heuristic("quantum", simple)

    def test_workload_accepted(self, simple):
        from repro.scheduling import expand_workload

        workload = expand_workload(simple, counts=[2, 2], shuffle=False)
        mapping = run_heuristic("mct", workload)
        assert mapping.assignment.shape == (4,)
