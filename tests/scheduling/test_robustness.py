"""Tests for the FePIA robustness radius."""

import numpy as np
import pytest

from repro import SchedulingError
from repro.scheduling import (
    evaluate_mapping,
    min_min,
    robustness_comparison,
    robustness_radius,
)
from repro.spec import cint2006rate


@pytest.fixture
def mapping():
    etc = np.array([[2.0, 9.0], [2.0, 9.0], [9.0, 4.0]])
    return evaluate_mapping(etc, [0, 0, 1])


class TestRobustnessRadius:
    def test_hand_computed(self, mapping):
        # Loads: m0 = 4 (2 tasks), m1 = 4 (1 task); beta = 6.
        report = robustness_radius(mapping, beta=6.0)
        np.testing.assert_allclose(
            report.per_machine, [2.0 / np.sqrt(2.0), 2.0]
        )
        assert report.radius == pytest.approx(np.sqrt(2.0))
        assert report.critical_machine == 0

    def test_idle_machine_infinite(self):
        etc = np.array([[1.0, 5.0], [1.0, 5.0]])
        mapping = evaluate_mapping(etc, [0, 0])
        report = robustness_radius(mapping, beta=4.0)
        assert np.isinf(report.per_machine[1])
        assert report.critical_machine == 0

    def test_default_slack(self, mapping):
        report = robustness_radius(mapping, slack=1.5)
        assert report.beta == pytest.approx(1.5 * mapping.makespan)

    def test_beta_at_makespan_zero_radius(self, mapping):
        report = robustness_radius(mapping, beta=mapping.makespan)
        assert report.radius == pytest.approx(0.0)

    def test_beta_below_makespan_rejected(self, mapping):
        with pytest.raises(SchedulingError):
            robustness_radius(mapping, beta=0.5 * mapping.makespan)

    def test_slack_must_exceed_one(self, mapping):
        with pytest.raises(SchedulingError):
            robustness_radius(mapping, slack=1.0)

    def test_radius_scales_with_beta(self, mapping):
        small = robustness_radius(mapping, beta=5.0).radius
        large = robustness_radius(mapping, beta=8.0).radius
        assert large > small

    def test_more_tasks_lower_radius(self):
        """Same load split across more tasks is more fragile."""
        etc_few = np.array([[4.0, 99.0]])
        etc_many = np.array([[1.0, 99.0]] * 4)
        few = robustness_radius(
            evaluate_mapping(etc_few, [0]), beta=6.0
        ).radius
        many = robustness_radius(
            evaluate_mapping(etc_many, [0, 0, 0, 0]), beta=6.0
        ).radius
        assert few == pytest.approx(2.0)
        assert many == pytest.approx(1.0)  # (6-4)/sqrt(4)


class TestRobustnessComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return robustness_comparison(cint2006rate(), total=40, seed=0)

    def test_all_heuristics_present(self, comparison):
        assert "min_min" in comparison and "met" in comparison
        assert "ga" not in comparison

    def test_pairs_are_makespan_radius(self, comparison):
        for makespan, radius in comparison.values():
            assert makespan > 0
            assert radius >= 0

    def test_met_fragile_on_low_affinity_environment(self, comparison):
        """MET overloads the fast machine past the shared beta."""
        assert comparison["met"][1] == 0.0

    def test_some_batch_heuristic_robust(self, comparison):
        assert max(
            comparison["min_min"][1],
            comparison["sufferage"][1],
            comparison["duplex"][1],
        ) > 0.0

    def test_common_beta_consistency(self, comparison):
        """A heuristic with radius 0 either exceeds the common beta or
        sits exactly at it."""
        best = min(ms for ms, _ in comparison.values())
        beta = 1.2 * best
        for name, (makespan, radius) in comparison.items():
            if radius == 0.0:
                assert makespan >= beta - 1e-9, name

    def test_radius_recomputable(self):
        etc = cint2006rate()
        from repro.scheduling import expand_workload

        workload = expand_workload(etc, total=40, seed=0)
        mapping = min_min(workload)
        direct = robustness_radius(mapping, beta=1.5 * mapping.makespan)
        assert direct.radius > 0
