"""End-to-end tests for the repro-hc command-line interface."""

import json

import pytest

from repro import ETCMatrix, save_etc_csv
from repro.cli import build_parser, main


@pytest.fixture
def etc_csv(tmp_path):
    path = tmp_path / "env.csv"
    save_etc_csv(
        ETCMatrix(
            [[10.0, 5.0], [4.0, 8.0], [6.0, 6.0]],
            task_names=["a", "b", "c"],
        ),
        path,
    )
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestMeasures:
    def test_text_output(self, etc_csv, capsys):
        assert main(["measures", etc_csv]) == 0
        out = capsys.readouterr().out
        assert "MPH" in out and "TMA" in out

    def test_json_output(self, etc_csv, capsys):
        assert main(["measures", etc_csv, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_tasks"] == 3
        assert 0 <= doc["tma"] <= 1

    def test_missing_file(self, capsys):
        assert main(["measures", "/nonexistent.csv"]) == 2
        assert "error" in capsys.readouterr().err


class TestDataset:
    def test_list(self, capsys):
        assert main(["dataset", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cint2006rate" in out and "cfp2006rate" in out

    def test_named(self, capsys):
        assert main(["dataset", "cint2006rate"]) == 0
        assert "12 task types" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert main(["dataset", "nope"]) == 2


class TestGenerate:
    def test_generate_and_remeasure(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.csv")
        code = main(
            [
                "generate", "--tasks", "5", "--machines", "4",
                "--mph", "0.6", "--tdh", "0.8", "--tma", "0.2",
                "--seed", "3", "-o", out_path,
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["measures", out_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mph"] == pytest.approx(0.6, abs=1e-6)
        assert doc["tdh"] == pytest.approx(0.8, abs=1e-6)
        assert doc["tma"] == pytest.approx(0.2, abs=1e-3)

    def test_impossible_targets_exit_code(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate", "--tasks", "2", "--machines", "9",
                    "--tma", "0.99", "-o", str(tmp_path / "x.csv"),
                ]
            )
            == 2
        )


class TestWhatif:
    def test_both_axes(self, etc_csv, capsys):
        assert main(["whatif", etc_csv]) == 0
        out = capsys.readouterr().out
        assert "drop task a" in out
        assert "drop machine m1" in out
        assert out.count("drop") == 5  # 3 tasks + 2 machines

    def test_single_axis(self, etc_csv, capsys):
        assert main(["whatif", etc_csv, "--axis", "tasks"]) == 0
        out = capsys.readouterr().out
        assert "drop machine" not in out


class TestCluster:
    def test_cluster_output(self, tmp_path, capsys):
        path = str(tmp_path / "affine.csv")
        save_etc_csv(
            ETCMatrix(
                [[1.0, 9.0], [9.0, 1.0]],
                task_names=["a", "b"],
                machine_names=["x", "y"],
            ),
            path,
        )
        assert main(["cluster", path]) == 0
        out = capsys.readouterr().out
        assert "affinity group" in out
        assert "group 0" in out and "group 1" in out

    def test_explicit_cluster_count(self, etc_csv, capsys):
        assert main(["cluster", etc_csv, "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("group") >= 2

    def test_bad_cluster_count(self, etc_csv, capsys):
        assert main(["cluster", etc_csv, "--clusters", "99"]) == 2


class TestSensitivity:
    def test_table_output(self, etc_csv, capsys):
        assert (
            main(
                [
                    "sensitivity", etc_csv,
                    "--trials", "3", "--noise", "0.05,0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sigma" in out
        assert len(out.strip().splitlines()) == 3


class TestReport:
    def test_report_output(self, etc_csv, capsys):
        assert main(["report", etc_csv, "--name", "demo"]) == 0
        out = capsys.readouterr().out
        assert "# Heterogeneity report: demo" in out
        assert "## Measures" in out
        assert "Highest-impact removals" in out

    def test_no_whatif_flag(self, etc_csv, capsys):
        assert main(["report", etc_csv, "--no-whatif"]) == 0
        out = capsys.readouterr().out
        assert "Highest-impact removals" not in out


class TestRecommend:
    def test_recommendation_printed(self, etc_csv, capsys):
        assert main(["recommend", etc_csv]) == 0
        out = capsys.readouterr().out
        assert out.startswith("recommended: ")
        assert "reason:" in out

    def test_check_ranking(self, etc_csv, capsys):
        assert main(["recommend", etc_csv, "--check", "--total", "20"]) == 0
        out = capsys.readouterr().out
        assert "<- recommended" in out
        assert "ratio=" in out


class TestCharacterize:
    def test_healthy_ensemble(self, etc_csv, capsys):
        assert main(["characterize", etc_csv, "--members", "6"]) == 0
        out = capsys.readouterr().out
        assert "6 environments" in out
        assert "all members healthy" in out

    def test_injected_faults_text(self, etc_csv, capsys):
        assert (
            main(
                [
                    "characterize", etc_csv,
                    "--members", "6",
                    "--inject-faults", "nan=1,zero-row=1",
                    "--fault-seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 quarantined" in out
        assert "nan" in out and "empty-line" in out

    def test_injected_faults_json(self, etc_csv, capsys):
        assert (
            main(
                [
                    "characterize", etc_csv,
                    "--members", "8",
                    "--inject-faults", "nan=1",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["members"] == 8
        assert doc["policy"] == "quarantine"
        assert list(doc["injected"].values()) == ["nan"]
        assert doc["quarantined"] == [int(k) for k in doc["injected"]]
        (bad,) = doc["quarantined"]
        assert doc["mph"][bad] is None  # NaN serializes as null
        assert sum(v is None for v in doc["mph"]) == 1

    def test_repair_policy(self, etc_csv, capsys):
        assert (
            main(
                [
                    "characterize", etc_csv,
                    "--members", "6",
                    "--policy", "repair",
                    "--inject-faults", "zero-row=1",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["repaired"] == [int(k) for k in doc["injected"]]
        assert doc["quarantined"] == []
        assert all(v is not None for v in doc["mph"])

    def test_raise_policy_fails_on_fault(self, etc_csv, capsys):
        assert (
            main(
                [
                    "characterize", etc_csv,
                    "--members", "4",
                    "--policy", "raise",
                    "--inject-faults", "nan=1",
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_dataset_name_as_input(self, capsys):
        assert (
            main(["characterize", "cint2006rate", "--members", "4"]) == 0
        )
        assert "4 environments" in capsys.readouterr().out

    def test_bad_fault_spec(self, etc_csv, capsys):
        assert (
            main(
                [
                    "characterize", etc_csv,
                    "--inject-faults", "meteor=1",
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err


class TestProfileEnsemble:
    def test_profile_with_ensemble_counters(self, etc_csv, capsys):
        assert main(["profile", etc_csv, "--ensemble", "4"]) == 0
        out = capsys.readouterr().out
        assert "ensemble:" in out
        assert "counter ensemble.slices = 4" in out

    def test_profile_with_chaos_counters(self, etc_csv, capsys):
        assert (
            main(
                [
                    "profile", etc_csv,
                    "--ensemble", "6",
                    "--policy", "quarantine",
                    "--inject-faults", "nan=1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "counter robust.quarantined = 1" in out
        assert "counter robust.fault.nan = 1" in out


class TestSchedule:
    def test_schedule_output(self, etc_csv, capsys):
        assert main(["schedule", etc_csv, "--total", "12"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "min_min" in out

    def test_heuristic_subset(self, etc_csv, capsys):
        assert (
            main(["schedule", etc_csv, "--heuristics", "mct,olb"]) == 0
        )
        out = capsys.readouterr().out
        assert "mct" in out and "olb" in out
        assert "min_min" not in out
