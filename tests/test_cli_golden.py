"""Golden-output tests for the repro-hc CLI.

Unlike tests/test_cli.py (presence checks), these pin the exact text
and JSON schema of the deterministic subcommands — `measures`,
`sensitivity` and the new `profile` — so output-format regressions
show up as diffs.  Timing numbers are inherently non-deterministic, so
the profile assertions pin the table *structure* (rows, columns,
counters) rather than the millisecond values.
"""

import json

import pytest

from repro import ETCMatrix, save_etc_csv
from repro.cli import main

GOLDEN_MEASURES = """\
HC environment: 3 task types x 2 machines
  MPH = 0.9516   (R=0.9516, G=0.9516, COV=0.0248)
  TDH = 0.8944   (R=0.8000, G=0.8944, COV=0.0913)
  TMA = 0.2722   [standard form]
  standard form: 7 iterations, residual 4.64e-09
"""

#: Keys (and value types) of `repro-hc measures --json`.
MEASURES_JSON_SCHEMA = {
    "n_tasks": int,
    "n_machines": int,
    "mph": float,
    "tdh": float,
    "tma": float,
    "tma_method": str,
    "machine_r": float,
    "machine_g": float,
    "machine_cov": float,
    "task_r": float,
    "task_g": float,
    "task_cov": float,
    "sinkhorn_iterations": int,
}

#: Keys (and value types) of `repro-hc profile --json`.
PROFILE_JSON_SCHEMA = {
    "file": str,
    "n_tasks": int,
    "n_machines": int,
    "measures": dict,
    "best_heuristic": str,
    "spans": list,
    "counters": dict,
}

SPAN_ROW_SCHEMA = {
    "name": str,
    "count": int,
    "total_s": float,
    "mean_s": float,
    "p50_s": float,
    "p95_s": float,
    "p99_s": float,
    "max_s": float,
    "cpu_s": float,
}


#: Keys (and value types) of `repro-hc characterize --store --json`.
CHARACTERIZE_STORE_JSON_SCHEMA = {
    "file": str,
    "members": int,
    "policy": str,
    "mph": list,
    "tdh": list,
    "tma": list,
    "converged": list,
    "shards": dict,
    "quarantined": list,
    "repaired": list,
    "categories": dict,
}


@pytest.fixture
def etc_csv(tmp_path):
    path = tmp_path / "env.csv"
    save_etc_csv(
        ETCMatrix(
            [[10.0, 5.0], [4.0, 8.0], [6.0, 6.0]],
            task_names=["a", "b", "c"],
        ),
        path,
    )
    return str(path)


class TestMeasuresGolden:
    def test_text_output_exact(self, etc_csv, capsys):
        assert main(["measures", etc_csv]) == 0
        assert capsys.readouterr().out == GOLDEN_MEASURES

    def test_json_schema(self, etc_csv, capsys):
        assert main(["measures", etc_csv, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == set(MEASURES_JSON_SCHEMA)
        for key, typ in MEASURES_JSON_SCHEMA.items():
            assert isinstance(doc[key], typ), (key, doc[key])


class TestSensitivityGolden:
    def test_deterministic_table(self, etc_csv, capsys):
        argv = [
            "sensitivity", etc_csv,
            "--trials", "4", "--noise", "0.05,0.1", "--seed", "7",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # fixed seed => byte-identical table
        lines = first.strip().splitlines()
        assert lines[0].split() == [
            "sigma", "mean|dMPH|", "mean|dTDH|", "mean|dTMA|",
            "max|dMPH|", "max|dTDH|", "max|dTMA|",
        ]
        assert len(lines) == 3  # header + one row per noise level
        assert lines[1].startswith("0.050") and lines[2].startswith("0.100")


class TestProfileGolden:
    def test_text_output_structure(self, etc_csv, capsys):
        assert main(["profile", etc_csv, "--seed", "0"]) == 0
        out = capsys.readouterr().out
        # the characterize header comes first, then the span table
        assert out.startswith("HC environment: 3 task types x 2 machines")
        assert "best heuristic: " in out
        header_line = next(
            line for line in out.splitlines() if line.startswith("span")
        )
        assert header_line.split() == [
            "span", "count", "total", "mean", "p50", "p95", "p99",
            "max", "cpu",
        ]
        for expected in (
            "measures.characterize",
            "sinkhorn.scalar",
            "svd.scalar",
            "scheduling.min_min",
            "counter scheduling.decisions",
        ):
            assert expected in out, expected

    def test_json_schema(self, etc_csv, capsys):
        assert main(["profile", etc_csv, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == set(PROFILE_JSON_SCHEMA)
        for key, typ in PROFILE_JSON_SCHEMA.items():
            assert isinstance(doc[key], typ), (key, doc[key])
        assert set(doc["measures"]) == {"mph", "tdh", "tma"}
        for row in doc["spans"]:
            assert set(row) == set(SPAN_ROW_SCHEMA)
            for key, typ in SPAN_ROW_SCHEMA.items():
                assert isinstance(row[key], typ), (key, row)
        names = {row["name"] for row in doc["spans"]}
        assert any(n.startswith("sinkhorn") for n in names)
        assert any(n.startswith("svd") for n in names)
        assert any(n.startswith("scheduling") for n in names)
        assert doc["counters"]["scheduling.decisions"] > 0

    def test_dataset_name_accepted(self, capsys):
        assert main(["profile", "cint2006rate"]) == 0
        out = capsys.readouterr().out
        assert "12 task types x 5 machines" in out
        assert "sinkhorn.scalar" in out

    def test_trace_output_jsonl(self, etc_csv, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["profile", etc_csv, "-o", str(trace)]) == 0
        assert f"trace events written to {trace}" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in trace.read_text().strip().splitlines()
        ]
        assert all("type" in r for r in records)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "sinkhorn.scalar" in span_names

    def test_missing_file_exit_code(self, capsys):
        assert main(["profile", "/nonexistent.csv"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_recorder_left_behind(self, etc_csv, capsys):
        from repro.obs import current_recorder

        assert main(["profile", etc_csv]) == 0
        capsys.readouterr()
        assert current_recorder() is None


class TestCharacterizeStoreGolden:
    """`characterize --store`: out-of-core transcript and flag guards."""

    @pytest.fixture
    def store_path(self, tmp_path):
        from repro.generate import random_ecs_store

        random_ecs_store(tmp_path / "store", 12, 3, 2, seed=5)
        return str(tmp_path / "store")

    def test_text_transcript(self, store_path, capsys):
        argv = ["characterize", "--store", store_path, "--chunk-size", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # store + seedless run => deterministic
        lines = first.splitlines()
        assert lines[0] == (
            "3 shard(s) x 5 member(s) over 12 (no budget, est. peak 0.0 MB)"
        )
        assert lines[1].startswith("12 environments (3x2): MPH ")
        assert lines[2] == "quarantine report: all members healthy"

    def test_memory_budget_summary_line(self, store_path, capsys):
        argv = [
            "characterize", "--store", store_path, "--memory-budget", "1",
        ]
        assert main(argv) == 0
        assert capsys.readouterr().out.splitlines()[0] == (
            "1 shard(s) x 12 member(s) over 12 (1 MB budget, "
            "est. peak 0.0 MB)"
        )

    def test_json_schema(self, store_path, capsys):
        argv = [
            "characterize", "--store", store_path,
            "--memory-budget", "1", "--json",
        ]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == set(CHARACTERIZE_STORE_JSON_SCHEMA)
        for key, typ in CHARACTERIZE_STORE_JSON_SCHEMA.items():
            assert isinstance(doc[key], typ), (key, doc[key])
        assert doc["file"] == store_path
        assert doc["members"] == 12
        assert len(doc["mph"]) == 12
        assert doc["converged"] == [True] * 12
        assert doc["shards"] == {
            "count": 1,
            "chunk_size": 12,
            "memory_budget_bytes": 2**20,
            "estimated_peak_bytes": 12 * 3 * 2 * 8 * 16,
        }

    def test_matches_in_memory_pipeline(self, store_path, capsys):
        from repro.batch import characterize_ensemble
        from repro.shard import open_store

        argv = [
            "characterize", "--store", store_path,
            "--chunk-size", "5", "--json",
        ]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        whole = characterize_ensemble(
            open_store(store_path).read(0, 12), policy="quarantine"
        )
        assert doc["mph"] == [float(v) for v in whole.mph]
        assert doc["tma"] == [float(v) for v in whole.tma]

    def test_file_and_store_conflict(self, etc_csv, store_path, capsys):
        argv = ["characterize", etc_csv, "--store", store_path]
        assert main(argv) == 2
        assert "not both" in capsys.readouterr().err

    def test_store_flags_require_store(self, etc_csv, capsys):
        argv = ["characterize", etc_csv, "--memory-budget", "8"]
        assert main(argv) == 2
        assert "--store" in capsys.readouterr().err

    def test_missing_file_and_store(self, capsys):
        assert main(["characterize"]) == 2
        assert "--store" in capsys.readouterr().err
