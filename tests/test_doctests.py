"""Run every docstring example in the library as a test."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("name", sorted(_iter_modules()))
def test_module_doctests(name):
    try:
        module = importlib.import_module(name)
    except ModuleNotFoundError as exc:
        # Optional-dependency modules (repro.backends.numba_backend)
        # import their backing library at module level and simply never
        # register when it is absent.
        pytest.skip(f"optional dependency missing for {name}: {exc}")
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"
