"""Oracle tests: one class per paper artifact (DESIGN.md E1–E10).

Each test pins the library's output to the value or ordering the paper
reports; the benchmark harnesses under ``benchmarks/`` regenerate the
full tables these spot-check.
"""

import numpy as np
import pytest

from repro import NotNormalizableError
from repro.measures import (
    characterize,
    coefficient_of_variation,
    geometric_mean_ratio,
    machine_performance,
    min_max_ratio,
    mph,
    tdh,
    tma,
)
from repro.normalize import sinkhorn_knopp, standardize
from repro.spec import cfp2006rate, cint2006rate, figure8a, figure8b
from repro.structure import (
    is_fully_indecomposable,
    is_normalizable,
    permute_to_block_form,
)


class TestE1Figure1:
    """Machine performance is the ECS column sum; machine 1 scores 17."""

    def test_machine1_performance(self, fig1_ecs):
        assert machine_performance(fig1_ecs)[0] == 17.0

    def test_full_vector(self, fig1_ecs):
        np.testing.assert_allclose(
            machine_performance(fig1_ecs), [17.0, 23.0, 14.0]
        )


class TestE2Figure2:
    """MPH matches intuition; R, G, COV fail (Section II-D)."""

    def test_paper_numbers(self, fig2_performances):
        paper = {
            "env1": (0.5, 0.06, 0.5, 0.88),
            "env2": (0.77, 0.06, 0.5, 1.5),
            "env3": (0.77, 0.06, 0.5, 0.46),
            "env4": (0.63, 0.06, 0.5, 0.90),
        }
        for env, (p_mph, p_r, p_g, p_cov) in paper.items():
            perf = fig2_performances[env]
            assert np.mean(
                np.sort(perf)[:-1] / np.sort(perf)[1:]
            ) == pytest.approx(p_mph, abs=6e-3), env
            assert min_max_ratio(perf) == pytest.approx(p_r, abs=6e-3), env
            assert geometric_mean_ratio(perf) == pytest.approx(
                p_g, abs=6e-3
            ), env
            assert coefficient_of_variation(perf) == pytest.approx(
                p_cov, abs=6e-3
            ), env

    def test_intuitive_ordering_only_from_mph(self, fig2_performances):
        from repro.measures import average_adjacent_ratio

        values = {
            k: average_adjacent_ratio(v) for k, v in fig2_performances.items()
        }
        # env1 most heterogeneous < env4 < env2 == env3.
        assert values["env1"] < values["env4"] < values["env2"]
        assert values["env2"] == pytest.approx(values["env3"])


class TestE3Figure3:
    """Machine-homogeneous environments can still differ in affinity."""

    def test_both_machine_homogeneous(self, fig3a_ecs, fig3b_ecs):
        assert mph(fig3a_ecs) == pytest.approx(1.0)
        assert mph(fig3b_ecs) == pytest.approx(1.0)

    def test_affinity_separates_them(self, fig3a_ecs, fig3b_ecs):
        assert tma(fig3a_ecs) == pytest.approx(0.0, abs=1e-8)
        assert tma(fig3b_ecs) > 0.2

    def test_column_angles_explanation(self, fig3a_ecs, fig3b_ecs):
        """The paper's geometric reading: (a) has zero angles between
        columns, (b) does not."""

        def max_angle(ecs):
            unit = ecs / np.linalg.norm(ecs, axis=0)
            cos = np.clip(unit.T @ unit, -1.0, 1.0)
            return float(np.arccos(cos).max())

        assert max_angle(fig3a_ecs) == pytest.approx(0.0, abs=1e-7)
        assert max_angle(fig3b_ecs) > 0.1


class TestE4Figure4:
    """Eight extreme 2×2 matrices at the corners of measure space."""

    def test_tma_extremes(self, fig4_matrices):
        for key in "ABCD":
            assert tma(
                fig4_matrices[key], zeros="limit"
            ) == pytest.approx(1.0, abs=1e-6), key
        for key in "EFGH":
            assert tma(fig4_matrices[key]) == pytest.approx(
                0.0, abs=1e-6
            ), key

    def test_c_is_already_standard(self, fig4_matrices):
        from repro.normalize import is_standard

        assert is_standard(fig4_matrices["C"])

    def test_second_singular_value_of_c_is_one(self, fig4_matrices):
        import scipy.linalg

        values = scipy.linalg.svdvals(fig4_matrices["C"].astype(float))
        assert values[1] == pytest.approx(1.0)

    def test_abd_converge_to_standard_form_of_c(self, fig4_matrices):
        target = standardize(fig4_matrices["C"]).matrix
        for key in "ABD":
            limit = standardize(fig4_matrices[key], zeros="limit").matrix
            np.testing.assert_allclose(limit, target, atol=1e-8)

    def test_mph_split(self, fig4_matrices):
        for key in "CDGH":
            assert mph(fig4_matrices[key]) > 0.9, key
        for key in "ABEF":
            assert mph(fig4_matrices[key]) < 0.2, key

    def test_tdh_split(self, fig4_matrices):
        for key in "ACEG":
            assert tdh(fig4_matrices[key]) > 0.9, key
        for key in "BDFH":
            assert tdh(fig4_matrices[key]) < 0.2, key


class TestE5E6SpecSuites:
    """Figs. 6-7: the reconstructed SPEC environments."""

    def test_cint_paper_row(self):
        profile = characterize(cint2006rate())
        assert profile.tdh == pytest.approx(0.90, abs=5e-3)
        assert profile.mph == pytest.approx(0.82, abs=5e-3)
        assert profile.tma == pytest.approx(0.07, abs=5e-3)

    def test_cfp_paper_row(self):
        profile = characterize(cfp2006rate())
        assert profile.tdh == pytest.approx(0.91, abs=5e-3)
        assert profile.mph == pytest.approx(0.83, abs=5e-3)

    def test_cfp_more_affine_than_cint(self):
        assert characterize(cfp2006rate()).tma > characterize(
            cint2006rate()
        ).tma

    def test_convergence_iterations_small(self):
        """Paper: 6 and 7 iterations at tol 1e-8."""
        for env in (cint2006rate(), cfp2006rate()):
            ecs = env.to_ecs().values
            iters = standardize(ecs).iterations
            assert iters <= 10


class TestE7Figure8:
    def test_8a_paper_values(self):
        profile = characterize(figure8a())
        assert profile.tma == pytest.approx(0.05, abs=5e-3)
        assert profile.tdh == pytest.approx(0.16, abs=5e-3)

    def test_8b_paper_value(self):
        assert characterize(figure8b()).tma == pytest.approx(0.60, abs=5e-3)

    def test_orderings(self):
        a = characterize(figure8a())
        b = characterize(figure8b())
        assert b.tma > a.tma          # (b) has the affinity
        assert a.tdh > b.tdh          # (a) more homogeneous task types


class TestE8SectionVI:
    """The eq. 10 counterexample and the eq. 11/12 block form."""

    def test_not_normalizable(self, eq10_matrix):
        assert not is_normalizable(eq10_matrix)
        with pytest.raises(NotNormalizableError):
            standardize(eq10_matrix)

    def test_iteration_stalls(self, eq10_matrix):
        result = sinkhorn_knopp(
            eq10_matrix, max_iterations=500, require_convergence=False
        )
        assert not result.converged

    def test_decomposable_with_certificate(self, eq10_matrix):
        assert not is_fully_indecomposable(eq10_matrix)
        form = permute_to_block_form(eq10_matrix)
        permuted = form.apply(eq10_matrix)
        assert not permuted[: form.block_size, form.block_size:].any()

    def test_four_nonzero_argument(self, eq10_matrix):
        """The paper's argument: rows 1/3 and columns 1/2 have single
        nonzeros, so a normalized version would equal the original —
        which is not normalized."""
        assert (eq10_matrix != 0).sum() == 4
        row_sums = eq10_matrix.sum(axis=1)
        col_sums = eq10_matrix.sum(axis=0)
        np.testing.assert_allclose(row_sums, [1, 2, 1])
        np.testing.assert_allclose(col_sums, [1, 1, 2])

    def test_diagonal_counterexample(self):
        """Decomposability is sufficient-not-necessary: diagonal
        matrices normalize to the identity."""
        result = standardize(np.diag([3.0, 7.0, 2.0]))
        np.testing.assert_allclose(result.matrix, np.eye(3), atol=1e-8)


class TestE10ScaleInvariance:
    """Property 2 across every bundled environment."""

    @pytest.mark.parametrize("factor", [1e-3, 1 / 60, 60.0, 3600.0])
    def test_spec_suites(self, factor):
        for env in (cint2006rate(), cfp2006rate()):
            scaled = env.scaled(factor)
            base = characterize(env)
            after = characterize(scaled)
            assert after.mph == pytest.approx(base.mph, rel=1e-9)
            assert after.tdh == pytest.approx(base.tdh, rel=1e-9)
            assert after.tma == pytest.approx(base.tma, abs=1e-6)
