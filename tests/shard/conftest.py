"""Shared fixtures for the sharded-ensemble test harness.

The differential suites all compare a sharded run against the
in-memory pipeline bit for bit, so the helpers here are strict:
``assert_results_equal`` uses ``np.array_equal`` (no tolerance) on
every result column and compares quarantine reports by dataclass
equality.
"""

import numpy as np
import pytest

from repro import list_backends
from repro.robust.ensemble import RobustEnsembleCharacterization

#: Measure columns every characterization result carries.
RESULT_COLUMNS = ("mph", "tdh", "tma", "iterations", "converged", "batched")


@pytest.fixture(params=list_backends())
def backend(request):
    return request.param


def random_stack(n, t, m, *, seed=0):
    """A positive (N, T, M) stack, log-uniform like the generators."""
    rng = np.random.default_rng(seed)
    return np.exp(rng.uniform(-2.3, 2.3, size=(n, t, m)))


def assert_results_equal(actual, expected):
    """Bit-identity across all columns, geometry and (robust) reports."""
    assert type(actual) is type(expected)
    assert len(actual) == len(expected)
    assert actual.n_tasks == expected.n_tasks
    assert actual.n_machines == expected.n_machines
    for name in RESULT_COLUMNS:
        a, e = getattr(actual, name), getattr(expected, name)
        assert np.array_equal(a, e, equal_nan=True), (
            f"column {name!r} differs: {a} vs {e}"
        )
    if isinstance(expected, RobustEnsembleCharacterization):
        assert actual.report == expected.report
