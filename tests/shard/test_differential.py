"""Differential harness: sharded execution == in-memory, bit for bit.

One (512, 8, 8) store is characterized through every combination of
registered backend x robustness policy, serially and through the
process pool, and compared with ``np.array_equal`` (no tolerance)
against ``characterize_ensemble`` on the same stack in RAM — including
quarantine reports under injected faults.
"""

import pytest

from repro.batch import characterize_ensemble
from repro.robust import FaultPlan
from repro.shard import characterize_store, write_store

from .conftest import assert_results_equal, random_stack

N_MEMBERS = 512
CHUNK = 100  # five full shards + a short tail


@pytest.fixture(scope="module")
def stack():
    stack = random_stack(N_MEMBERS, 8, 8, seed=42)
    # A couple of zero-patterned (but valid) members exercise the
    # scalar fallback path inside chunks.
    for member in (100, 301):
        stack[member, 0, 1] = 0.0
    return stack


@pytest.fixture(scope="module")
def store(stack, tmp_path_factory):
    path = tmp_path_factory.mktemp("differential") / "store"
    return write_store(path, stack)


@pytest.fixture(scope="module")
def fault_plan():
    # Data faults only (stall semantics are covered by the chaos suite);
    # members span several shards, including the short tail.
    return FaultPlan.random(
        N_MEMBERS, faults="nan=2,zero-row=1,zero-col=1", seed=3
    )


class TestPolicyBackendMatrix:
    def test_raise_policy_matches(self, stack, store, backend):
        whole = characterize_ensemble(stack, backend=backend)
        sharded = characterize_store(store, chunk_size=CHUNK, backend=backend)
        assert_results_equal(sharded, whole)
        assert not sharded.batched[100]  # scalar fallback kept

    @pytest.mark.parametrize("policy", ["quarantine", "repair"])
    def test_faulty_policies_match(self, stack, store, backend, policy, fault_plan):
        whole = characterize_ensemble(
            stack, policy=policy, fault_plan=fault_plan, backend=backend
        )
        sharded = characterize_store(
            store,
            chunk_size=CHUNK,
            policy=policy,
            fault_plan=fault_plan,
            backend=backend,
        )
        assert_results_equal(sharded, whole)
        # The report carries absolute indices matching the plan's targets.
        assert {f.index for f in sharded.report.faults} == set(
            fault_plan.members
        )


class TestDispatchModes:
    def test_pool_matches_serial(self, stack, store):
        whole = characterize_ensemble(stack)
        pooled = characterize_store(store, chunk_size=CHUNK, n_jobs=2)
        assert_results_equal(pooled, whole)

    def test_pool_matches_with_faults(self, stack, store, fault_plan):
        whole = characterize_ensemble(
            stack, policy="quarantine", fault_plan=fault_plan
        )
        pooled = characterize_store(
            store,
            chunk_size=CHUNK,
            n_jobs=2,
            policy="quarantine",
            fault_plan=fault_plan,
        )
        assert_results_equal(pooled, whole)

    def test_memory_budget_path_matches(self, stack, store):
        whole = characterize_ensemble(stack)
        sharded = characterize_store(store, memory_budget_mb=1.0)
        assert_results_equal(sharded, whole)

    def test_single_shard_matches(self, stack, store):
        whole = characterize_ensemble(stack)
        sharded = characterize_store(store, chunk_size=N_MEMBERS)
        assert_results_equal(sharded, whole)

    def test_chunk_of_one_member(self, stack, store):
        # Degenerate tiling: 512 single-member shards, via the facade.
        small = random_stack(9, 4, 4, seed=9)
        whole = characterize_ensemble(small)
        sharded = characterize_store(
            write_store(store.path.parent / "tiny", small), chunk_size=1
        )
        assert_results_equal(sharded, whole)


class TestFacade:
    def test_characterize_ensemble_store_kwarg(self, stack, store):
        whole = characterize_ensemble(stack)
        via_facade = characterize_ensemble(store=store, chunk_size=CHUNK)
        assert_results_equal(via_facade, whole)

    def test_store_accepted_as_path(self, stack, store):
        whole = characterize_ensemble(stack)
        sharded = characterize_store(str(store.path), chunk_size=CHUNK)
        assert_results_equal(sharded, whole)
