"""characterize_store / characterize_ensemble(store=...) API contracts."""

import numpy as np
import pytest

from repro.batch import characterize_ensemble
from repro.exceptions import MatrixValueError, WeightError
from repro.robust import Budget
from repro.shard import characterize_store, write_store

from .conftest import random_stack


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("engine") / "store"
    return write_store(path, random_stack(12, 3, 3, seed=21))


class TestEngineValidation:
    def test_unknown_policy(self, store):
        with pytest.raises(MatrixValueError, match="policy"):
            characterize_store(store, policy="retry")

    def test_budget_requires_robust_policy(self, store):
        with pytest.raises(MatrixValueError, match="quarantine"):
            characterize_store(store, budget=Budget(deadline_s=10.0))

    @pytest.mark.parametrize("bad", [0, -2.0, True, "32"])
    def test_bad_memory_budget(self, store, bad):
        with pytest.raises(MatrixValueError, match="memory_budget_mb"):
            characterize_store(store, memory_budget_mb=bad)

    def test_budget_and_chunk_mutually_exclusive(self, store):
        with pytest.raises(MatrixValueError, match="not both"):
            characterize_store(store, memory_budget_mb=8, chunk_size=4)

    def test_nonexistent_store_path(self, tmp_path):
        with pytest.raises(MatrixValueError, match="not a stack store"):
            characterize_store(tmp_path / "missing")

    def test_deadline_budget_flows_to_chunks(self, store):
        # A generous run-level deadline must not disturb the results.
        result = characterize_store(
            store,
            chunk_size=5,
            policy="quarantine",
            budget=Budget(deadline_s=300.0),
        )
        assert len(result) == 12
        assert result.converged.all()


class TestFacadeValidation:
    def test_store_and_environments_conflict(self, store):
        with pytest.raises(MatrixValueError, match="not both"):
            characterize_ensemble(np.ones((2, 2, 2)), store=store)

    def test_neither_store_nor_environments(self):
        with pytest.raises(MatrixValueError, match="needs environments"):
            characterize_ensemble()

    def test_weights_not_supported_on_store_path(self, store):
        with pytest.raises(WeightError, match="bake weights"):
            characterize_ensemble(store=store, task_weights=[1.0, 1.0, 1.0])

    def test_warm_start_not_supported_on_store_path(self, store):
        with pytest.raises(MatrixValueError, match="warm_start"):
            characterize_ensemble(
                store=store, warm_start=(np.ones((12, 3)), np.ones((12, 3)))
            )

    def test_budget_kwargs_require_store(self):
        with pytest.raises(MatrixValueError, match="store path"):
            characterize_ensemble(np.ones((2, 2, 2)), memory_budget_mb=8)
        with pytest.raises(MatrixValueError, match="store path"):
            characterize_ensemble(np.ones((2, 2, 2)), chunk_size=4)
