"""random_ecs_store: streamed generation equals the in-memory stack."""

import numpy as np
import pytest

from repro.exceptions import MatrixValueError
from repro.generate import random_ecs_store, random_ecs_stack
from repro.shard import StackStore, open_store


class TestSeedInvariant:
    def test_store_equals_stack_bit_for_bit(self, tmp_path):
        store = random_ecs_store(tmp_path / "s", 50, 4, 3, seed=123)
        stack = random_ecs_stack(50, 4, 3, seed=123)
        assert isinstance(store, StackStore)
        assert store.shape == (50, 4, 3)
        assert np.array_equal(np.asarray(store.memmap()), stack)

    def test_write_chunk_does_not_change_members(self, tmp_path):
        kwargs = dict(zero_fraction=0.2, spread=5.0, seed=7)
        small = random_ecs_store(
            tmp_path / "small", 23, 3, 3, write_chunk=4, **kwargs
        )
        large = random_ecs_store(
            tmp_path / "large", 23, 3, 3, write_chunk=1000, **kwargs
        )
        assert np.array_equal(
            np.asarray(small.memmap()), np.asarray(large.memmap())
        )
        assert np.array_equal(
            np.asarray(small.memmap()),
            random_ecs_stack(23, 3, 3, **kwargs),
        )

    def test_zero_fraction_members_stay_valid(self, tmp_path):
        store = random_ecs_store(
            tmp_path / "s", 30, 3, 4, zero_fraction=0.4, seed=5
        )
        stack = store.read(0, 30)
        # The generator repairs all-zero lines, so every member keeps a
        # positive entry in each row and column.
        assert (stack > 0).any(axis=2).all() and (stack > 0).any(axis=1).all()

    def test_reopen_roundtrip(self, tmp_path):
        random_ecs_store(tmp_path / "s", 10, 2, 2, seed=1)
        assert len(open_store(tmp_path / "s")) == 10


class TestOptions:
    def test_float32_store(self, tmp_path):
        store = random_ecs_store(
            tmp_path / "s", 12, 3, 3, seed=2, dtype="float32"
        )
        assert store.dtype == np.dtype("float32")
        stack = random_ecs_stack(12, 3, 3, seed=2)
        assert np.array_equal(
            np.asarray(store.memmap()), stack.astype(np.float32)
        )

    def test_invalid_counts_rejected(self, tmp_path):
        with pytest.raises(MatrixValueError, match="n_matrices"):
            random_ecs_store(tmp_path / "a", 0, 2, 2)
        with pytest.raises(MatrixValueError, match="write_chunk"):
            random_ecs_store(tmp_path / "b", 4, 2, 2, write_chunk=0)

    def test_refuses_existing_store(self, tmp_path):
        random_ecs_store(tmp_path / "s", 4, 2, 2, seed=0)
        with pytest.raises(MatrixValueError, match="already holds"):
            random_ecs_store(tmp_path / "s", 4, 2, 2, seed=0)
