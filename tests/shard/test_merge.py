"""Property harness for shard-result merging: the two merge laws.

Merging is pure bookkeeping over result columns, so the properties run
against one real characterization computed once per module (no kernel
calls inside Hypothesis examples): parts are column slices of the
whole, and any partition — merged in any order, or merged in nested
groups — must reproduce the whole bit for bit.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import characterize_ensemble
from repro.batch.ensemble import EnsembleCharacterization
from repro.exceptions import MatrixShapeError, MatrixValueError
from repro.robust.ensemble import RobustEnsembleCharacterization
from repro.robust.taxonomy import MemberFault, QuarantineReport
from repro.shard import merge_characterizations, merge_reports, shift_report

from .conftest import RESULT_COLUMNS, assert_results_equal, random_stack

N_MEMBERS = 24


@pytest.fixture(scope="module")
def whole():
    return characterize_ensemble(random_stack(N_MEMBERS, 3, 3, seed=7))


@pytest.fixture(scope="module")
def whole_robust():
    # A synthetic report exercises index shifting without needing real
    # faults: merge only moves indices around.
    plain = characterize_ensemble(random_stack(N_MEMBERS, 3, 3, seed=7))
    report = QuarantineReport(
        policy="quarantine",
        faults=tuple(
            MemberFault(index=i, category="nan", detail=f"member {i}")
            for i in (2, 11, 17, 23)
        ),
    )
    return RobustEnsembleCharacterization(
        report=report,
        **{name: getattr(plain, name) for name in RESULT_COLUMNS},
        n_tasks=plain.n_tasks,
        n_machines=plain.n_machines,
    )


def slice_result(result, start, stop):
    """The part covering members [start, stop), indices made relative."""
    columns = {
        name: getattr(result, name)[start:stop] for name in RESULT_COLUMNS
    }
    if isinstance(result, RobustEnsembleCharacterization):
        faults = tuple(
            dataclasses.replace(f, index=f.index - start)
            for f in result.report.faults
            if start <= f.index < stop
        )
        return RobustEnsembleCharacterization(
            report=QuarantineReport(
                policy=result.report.policy, faults=faults
            ),
            **columns,
            n_tasks=result.n_tasks,
            n_machines=result.n_machines,
        )
    return EnsembleCharacterization(
        **columns, n_tasks=result.n_tasks, n_machines=result.n_machines
    )


partitions = st.lists(
    st.integers(min_value=1, max_value=N_MEMBERS - 1),
    unique=True,
    max_size=N_MEMBERS - 1,
).map(lambda cuts: [0, *sorted(cuts), N_MEMBERS])


@st.composite
def shuffled_partitions(draw):
    bounds = draw(partitions)
    parts = list(zip(bounds[:-1], bounds[1:]))
    return draw(st.permutations(parts))


class TestMergeLaws:
    @settings(max_examples=60, deadline=None)
    @given(parts=shuffled_partitions())
    def test_order_independent_merge_reproduces_whole(self, parts, whole):
        merged = merge_characterizations(
            [(start, slice_result(whole, start, stop)) for start, stop in parts]
        )
        assert_results_equal(merged, whole)

    @settings(max_examples=60, deadline=None)
    @given(parts=shuffled_partitions())
    def test_order_independent_merge_robust(self, parts, whole_robust):
        merged = merge_characterizations(
            [
                (start, slice_result(whole_robust, start, stop))
                for start, stop in parts
            ]
        )
        assert_results_equal(merged, whole_robust)
        assert [f.index for f in merged.report.faults] == [2, 11, 17, 23]

    @settings(max_examples=40, deadline=None)
    @given(
        parts=shuffled_partitions(),
        pivot=st.integers(min_value=1, max_value=10),
    )
    def test_merge_is_associative(self, parts, pivot, whole_robust):
        """Merging merges equals merging everything at once."""
        ordered = sorted(parts)
        pivot = min(pivot, len(ordered) - 1)
        if pivot == 0:
            groups = [ordered]
        else:
            groups = [ordered[:pivot], ordered[pivot:]]
        group_results = [
            (
                group[0][0],
                merge_characterizations(
                    [
                        (start, slice_result(whole_robust, start, stop))
                        for start, stop in group
                    ]
                ),
            )
            for group in groups
        ]
        assert_results_equal(
            merge_characterizations(group_results), whole_robust
        )

    def test_single_part_is_identity(self, whole):
        merged = merge_characterizations([(0, whole)])
        assert_results_equal(merged, whole)

    def test_nonzero_base_offset(self, whole_robust):
        # Parts need not start at member 0: a merged sub-range keeps
        # report indices relative to its own base.
        part = slice_result(whole_robust, 8, 20)
        merged = merge_characterizations(
            [(108, part), (120, slice_result(whole_robust, 20, 24))]
        )
        assert len(merged) == 16
        # whole faults at 11, 17, 23 fall in [8, 24) -> relative 3, 9, 15.
        assert [f.index for f in merged.report.faults] == [3, 9, 15]


class TestMergeErrors:
    def test_empty_merge(self):
        with pytest.raises(MatrixValueError, match="zero shard results"):
            merge_characterizations([])

    def test_gap_rejected(self, whole):
        with pytest.raises(MatrixShapeError, match="not contiguous"):
            merge_characterizations(
                [
                    (0, slice_result(whole, 0, 8)),
                    (10, slice_result(whole, 10, 24)),
                ]
            )

    def test_overlap_rejected(self, whole):
        with pytest.raises(MatrixShapeError, match="not contiguous"):
            merge_characterizations(
                [
                    (0, slice_result(whole, 0, 10)),
                    (8, slice_result(whole, 8, 24)),
                ]
            )

    def test_duplicate_start_rejected(self, whole):
        with pytest.raises(MatrixShapeError):
            merge_characterizations(
                [
                    (0, slice_result(whole, 0, 12)),
                    (0, slice_result(whole, 0, 12)),
                ]
            )

    def test_mixed_robust_and_plain_rejected(self, whole, whole_robust):
        with pytest.raises(MatrixValueError, match="robust and non-robust"):
            merge_characterizations(
                [
                    (0, slice_result(whole, 0, 12)),
                    (12, slice_result(whole_robust, 12, 24)),
                ]
            )

    def test_shape_mismatch_rejected(self, whole):
        other = characterize_ensemble(random_stack(4, 2, 2, seed=8))
        with pytest.raises(MatrixShapeError, match="member shape"):
            merge_characterizations([(0, whole), (24, other)])


class TestReportMerging:
    def test_shift_report_zero_is_identity(self, whole_robust):
        assert shift_report(whole_robust.report, 0) is whole_robust.report

    def test_shift_report_moves_every_index(self, whole_robust):
        shifted = shift_report(whole_robust.report, 100)
        assert [f.index for f in shifted.faults] == [102, 111, 117, 123]
        # Non-index fields are untouched.
        assert [f.detail for f in shifted.faults] == [
            f.detail for f in whole_robust.report.faults
        ]

    def test_merge_reports_sorts_absolute_indices(self):
        first = QuarantineReport(
            policy="repair",
            faults=(MemberFault(index=1, category="nan", detail="a"),),
        )
        second = QuarantineReport(
            policy="repair",
            faults=(MemberFault(index=0, category="non-convergent", detail="b"),),
        )
        merged = merge_reports([(10, second), (0, first)])
        assert merged.policy == "repair"
        assert [(f.index, f.category) for f in merged.faults] == [
            (1, "nan"),
            (10, "non-convergent"),
        ]

    def test_merge_reports_empty(self):
        with pytest.raises(MatrixValueError, match="zero quarantine"):
            merge_reports([])

    def test_merge_reports_policy_mismatch(self):
        a = QuarantineReport(policy="quarantine", faults=())
        b = QuarantineReport(policy="repair", faults=())
        with pytest.raises(MatrixValueError, match="different policies"):
            merge_reports([(0, a), (4, b)])
