"""StackStore / StackStoreWriter: layout, validation, failure modes."""

import json

import numpy as np
import pytest

from repro.exceptions import MatrixShapeError, MatrixValueError
from repro.shard import (
    DATA_NAME,
    MANIFEST_NAME,
    STORE_SCHEMA,
    StackStore,
    create_store,
    open_store,
    write_store,
)

from .conftest import random_stack


class TestRoundtrip:
    def test_write_store_roundtrip(self, tmp_path):
        stack = random_stack(7, 3, 4, seed=1)
        store = write_store(tmp_path / "s", stack)
        assert store.shape == (7, 3, 4)
        assert len(store) == 7
        assert np.array_equal(np.asarray(store.memmap()), stack)

    def test_streaming_writer_mixed_chunks(self, tmp_path):
        stack = random_stack(9, 2, 3, seed=2)
        with create_store(tmp_path / "s", n_tasks=2, n_machines=3) as writer:
            assert writer.append(stack[0]) == 1  # single (T, M) member
            assert writer.append(stack[1:5]) == 5  # (k, T, M) chunk
            assert writer.append(stack[5:]) == 9
        store = open_store(tmp_path / "s")
        assert np.array_equal(np.asarray(store.memmap()), stack)

    def test_read_chunk_is_owned_float64(self, tmp_path):
        stack = random_stack(6, 2, 2, seed=3)
        store = write_store(tmp_path / "s", stack)
        chunk = store.read(2, 5)
        assert chunk.dtype == np.float64
        assert chunk.flags["C_CONTIGUOUS"] and chunk.flags["OWNDATA"]
        assert np.array_equal(chunk, stack[2:5])
        # Mutating the chunk must not touch the store.
        chunk[:] = 0.0
        assert np.array_equal(store.read(2, 5), stack[2:5])

    def test_getitem_member_and_negative_index(self, tmp_path):
        stack = random_stack(5, 3, 2, seed=4)
        store = write_store(tmp_path / "s", stack)
        assert np.array_equal(store[3], stack[3])
        assert np.array_equal(store[-1], stack[-1])

    def test_float32_store_serves_float64(self, tmp_path):
        stack = random_stack(4, 2, 2, seed=5)
        store = write_store(tmp_path / "s", stack, dtype="float32")
        assert store.dtype == np.dtype("float32")
        assert store.memmap().dtype == np.dtype("float32")
        chunk = store.read(0, 4)
        assert chunk.dtype == np.float64
        assert np.array_equal(chunk, stack.astype(np.float32).astype(np.float64))
        assert store.nbytes == stack.astype(np.float32).nbytes

    def test_geometry_properties(self, tmp_path):
        store = write_store(tmp_path / "s", np.ones((3, 4, 5)))
        assert store.member_nbytes == 4 * 5 * 8
        assert store.nbytes == 3 * 4 * 5 * 8
        assert "StackStore" in repr(store) and "(3, 4, 5)" in repr(store)


class TestWriterErrors:
    def test_refuses_overwrite(self, tmp_path):
        write_store(tmp_path / "s", np.ones((2, 2, 2)))
        with pytest.raises(MatrixValueError, match="already holds"):
            create_store(tmp_path / "s", n_tasks=2, n_machines=2)

    def test_empty_store_cannot_finalize(self, tmp_path):
        writer = create_store(tmp_path / "s", n_tasks=2, n_machines=2)
        with pytest.raises(MatrixShapeError, match="empty"):
            writer.close()

    def test_append_after_close_raises(self, tmp_path):
        writer = create_store(tmp_path / "s", n_tasks=2, n_machines=2)
        writer.append(np.ones((2, 2)))
        writer.close()
        with pytest.raises(MatrixValueError, match="closed"):
            writer.append(np.ones((2, 2)))

    def test_close_is_idempotent(self, tmp_path):
        writer = create_store(tmp_path / "s", n_tasks=2, n_machines=2)
        writer.append(np.ones((2, 2)))
        assert len(writer.close()) == 1
        assert len(writer.close()) == 1

    def test_shape_mismatch_rejected(self, tmp_path):
        writer = create_store(tmp_path / "s", n_tasks=2, n_machines=3)
        with pytest.raises(MatrixShapeError, match="T=2, M=3"):
            writer.append(np.ones((3, 2)))
        with pytest.raises(MatrixShapeError):
            writer.append(np.ones((4,)))

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(MatrixValueError, match="dtype"):
            create_store(tmp_path / "s", n_tasks=2, n_machines=2, dtype="int32")

    def test_bad_dims_rejected(self, tmp_path):
        with pytest.raises(MatrixValueError, match="n_tasks"):
            create_store(tmp_path / "s", n_tasks=0, n_machines=2)
        with pytest.raises(MatrixValueError, match="n_machines"):
            create_store(tmp_path / "s2", n_tasks=2, n_machines=True)

    def test_aborted_writer_leaves_no_manifest(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with create_store(tmp_path / "s", n_tasks=2, n_machines=2) as w:
                w.append(np.ones((50, 2, 2)))
                raise RuntimeError("boom")
        assert not (tmp_path / "s" / MANIFEST_NAME).exists()
        with pytest.raises(MatrixValueError, match="not a stack store"):
            open_store(tmp_path / "s")


class TestReaderValidation:
    @pytest.fixture
    def store_dir(self, tmp_path):
        write_store(tmp_path / "s", random_stack(4, 2, 3, seed=6))
        return tmp_path / "s"

    def _manifest(self, store_dir):
        return json.loads((store_dir / MANIFEST_NAME).read_text())

    def _rewrite(self, store_dir, manifest):
        (store_dir / MANIFEST_NAME).write_text(json.dumps(manifest))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(MatrixValueError, match="not a stack store"):
            StackStore(tmp_path)

    def test_invalid_json_manifest(self, store_dir):
        (store_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(MatrixValueError, match="not valid JSON"):
            StackStore(store_dir)

    def test_wrong_schema(self, store_dir):
        manifest = self._manifest(store_dir)
        manifest["schema"] = "repro-stack/99"
        self._rewrite(store_dir, manifest)
        with pytest.raises(MatrixValueError, match=STORE_SCHEMA.split("/")[0]):
            StackStore(store_dir)

    def test_malformed_manifest_fields(self, store_dir):
        manifest = self._manifest(store_dir)
        del manifest["n_members"]
        self._rewrite(store_dir, manifest)
        with pytest.raises(MatrixValueError, match="malformed"):
            StackStore(store_dir)

    def test_unsupported_dtype(self, store_dir):
        manifest = self._manifest(store_dir)
        manifest["dtype"] = "int64"
        self._rewrite(store_dir, manifest)
        with pytest.raises(MatrixValueError, match="dtype"):
            StackStore(store_dir)

    def test_nonpositive_dims(self, store_dir):
        manifest = self._manifest(store_dir)
        manifest["n_members"] = 0
        self._rewrite(store_dir, manifest)
        with pytest.raises(MatrixValueError, match="positive"):
            StackStore(store_dir)

    def test_missing_data_file(self, store_dir):
        (store_dir / DATA_NAME).unlink()
        with pytest.raises(MatrixValueError, match="missing data file"):
            StackStore(store_dir)

    def test_truncated_data_file(self, store_dir):
        data = (store_dir / DATA_NAME).read_bytes()
        (store_dir / DATA_NAME).write_bytes(data[:-8])
        with pytest.raises(MatrixValueError, match="truncated or corrupt"):
            StackStore(store_dir)

    def test_oversized_data_file(self, store_dir):
        with open(store_dir / DATA_NAME, "ab") as fh:
            fh.write(b"\0" * 16)
        with pytest.raises(MatrixValueError, match="truncated or corrupt"):
            StackStore(store_dir)

    def test_read_bounds(self, store_dir):
        store = StackStore(store_dir)
        for start, stop in ((-1, 2), (0, 5), (2, 2), (3, 1)):
            with pytest.raises(MatrixShapeError, match="out of bounds"):
                store.read(start, stop)

    def test_getitem_rejects_slices(self, store_dir):
        store = StackStore(store_dir)
        with pytest.raises(MatrixValueError, match="single member ints"):
            store[0:2]
