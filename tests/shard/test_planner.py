"""Property harness for the shard planner (the two docstring invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MatrixValueError
from repro.shard import (
    DEFAULT_CHUNK_SIZE,
    WORKING_SET_FACTOR,
    Shard,
    plan_shards,
)

geometries = st.tuples(
    st.integers(min_value=1, max_value=5000),  # n_members
    st.integers(min_value=1, max_value=16),  # n_tasks
    st.integers(min_value=1, max_value=16),  # n_machines
)


def assert_exact_partition(plan):
    """Shards tile range(n_members) exactly once, in order."""
    expected = 0
    for i, shard in enumerate(plan.shards):
        assert shard.index == i
        assert shard.start == expected
        assert shard.stop > shard.start
        assert shard.n_members == shard.stop - shard.start
        expected = shard.stop
    assert expected == plan.n_members


class TestCoverageProperty:
    @settings(max_examples=60, deadline=None)
    @given(geometry=geometries, chunk=st.integers(min_value=1, max_value=6000))
    def test_explicit_chunk_partitions_exactly_once(self, geometry, chunk):
        n, t, m = geometry
        plan = plan_shards(n, t, m, chunk_size=chunk)
        assert_exact_partition(plan)
        assert plan.chunk_size == min(chunk, n)
        # Every full shard has chunk_size members; only the last is short.
        for shard in plan.shards[:-1]:
            assert shard.n_members == plan.chunk_size
        assert plan.shards[-1].n_members <= plan.chunk_size

    @settings(max_examples=60, deadline=None)
    @given(
        geometry=geometries,
        budget=st.integers(min_value=1, max_value=2**28),
    )
    def test_budgeted_plan_partitions_exactly_once(self, geometry, budget):
        n, t, m = geometry
        plan = plan_shards(n, t, m, memory_budget_bytes=budget)
        assert_exact_partition(plan)
        assert plan.memory_budget_bytes == budget

    @settings(max_examples=30, deadline=None)
    @given(geometry=geometries)
    def test_default_chunk(self, geometry):
        n, t, m = geometry
        plan = plan_shards(n, t, m)
        assert_exact_partition(plan)
        assert plan.chunk_size == min(DEFAULT_CHUNK_SIZE, n)
        assert plan.memory_budget_bytes is None


class TestBudgetProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        geometry=geometries,
        budget=st.integers(min_value=1, max_value=2**28),
    )
    def test_estimated_peak_within_budget_when_feasible(self, geometry, budget):
        n, t, m = geometry
        plan = plan_shards(n, t, m, memory_budget_bytes=budget)
        floor = plan.member_nbytes * WORKING_SET_FACTOR
        if budget >= floor:
            assert plan.estimated_peak_bytes <= budget
        else:
            # One member per chunk is the planning floor; the plan is
            # best-effort and says so via estimated_peak_bytes.
            assert plan.chunk_size == 1
            assert plan.estimated_peak_bytes == floor

    def test_known_chunk_derivation(self):
        # 64 MiB over (8, 8) float64: 64 MiB / (512 B * 16) = 8192.
        plan = plan_shards(10**6, 8, 8, memory_budget_bytes=64 * 2**20)
        assert plan.chunk_size == 8192
        assert len(plan.shards) == 123  # ceil(1e6 / 8192)
        assert plan.estimated_peak_bytes <= 64 * 2**20


class TestValidation:
    def test_budget_and_chunk_are_mutually_exclusive(self):
        with pytest.raises(MatrixValueError, match="not both"):
            plan_shards(10, 2, 2, memory_budget_bytes=1000, chunk_size=4)

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "4"])
    def test_bad_chunk_size(self, bad):
        with pytest.raises(MatrixValueError, match="chunk_size"):
            plan_shards(10, 2, 2, chunk_size=bad)

    @pytest.mark.parametrize("bad", [0, -1, 0.5, True, "64"])
    def test_bad_budget(self, bad):
        with pytest.raises(MatrixValueError, match="memory_budget_bytes"):
            plan_shards(10, 2, 2, memory_budget_bytes=bad)

    @pytest.mark.parametrize("field", ["n_members", "n_tasks", "n_machines"])
    def test_bad_geometry(self, field):
        kwargs = {"n_members": 4, "n_tasks": 2, "n_machines": 2}
        kwargs[field] = 0
        with pytest.raises(MatrixValueError, match=field):
            plan_shards(
                kwargs["n_members"], kwargs["n_tasks"], kwargs["n_machines"]
            )

    def test_shard_rejects_empty_range(self):
        with pytest.raises(MatrixValueError, match="empty or negative"):
            Shard(index=0, start=3, stop=3)
        with pytest.raises(MatrixValueError):
            Shard(index=0, start=-1, stop=2)


class TestSummary:
    def test_summary_mentions_budget_and_shards(self):
        plan = plan_shards(100, 8, 8, memory_budget_bytes=2**20)
        text = plan.summary()
        assert "1 MB budget" in text
        assert f"{len(plan)} shard(s)" in text

    def test_summary_without_budget(self):
        assert "no budget" in plan_shards(100, 8, 8, chunk_size=10).summary()
