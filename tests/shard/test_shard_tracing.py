"""Trace-context handoff into shard pool workers.

With an ambient tracer installed (``tracing(path)``), a pooled
``characterize_store`` run serializes a per-shard span context into each
worker's argument tuple; workers append their ``shard.worker`` spans to
the shared JSONL file with one O_APPEND write each.  Under speculation a
shard's primary and backup dispatches are *sibling* spans under one
``shard.dispatch`` parent — the loser's span is synthesized by the
scheduler (terminated stragglers cannot write their own).
"""

from __future__ import annotations

import pytest

from repro.obs import (
    TraceContext,
    group_traces,
    load_spans,
    trace_scope,
    tracing,
)
from repro.obs.metrics import MetricsRegistry, collecting_metrics
from repro.robust import Budget, FaultPlan
from repro.robust.chaos import FaultSpec
from repro.shard import characterize_store, write_store

from .conftest import random_stack

N_MEMBERS = 16
CHUNK = 8  # two shards


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    stack = random_stack(N_MEMBERS, 5, 4, seed=7)
    return write_store(tmp_path_factory.mktemp("traced") / "store", stack)


def _traced_run(store, trace_path, **kwargs):
    with collecting_metrics(MetricsRegistry()):
        with tracing(str(trace_path)):
            characterize_store(store, chunk_size=CHUNK, **kwargs)
    return load_spans(str(trace_path))


class TestPooledRunTracing:
    def test_worker_spans_hang_off_dispatch_parents(self, store, tmp_path):
        spans = _traced_run(store, tmp_path / "spans.jsonl", n_jobs=2)
        [view] = group_traces(spans)  # one run, one trace

        dispatches = [s for s in spans if s["name"] == "shard.dispatch"]
        workers = [s for s in spans if s["name"] == "shard.worker"]
        assert len(dispatches) == 2
        assert len(workers) == 2
        assert all(s["trace_id"] == view.trace_id for s in spans)

        dispatch_ids = {d["span_id"] for d in dispatches}
        assert {w["parent_id"] for w in workers} <= dispatch_ids
        # Worker spans carry their shard slice and real process ids.
        for worker in workers:
            assert worker["meta"]["members"] == CHUNK
            assert worker["process"].startswith("shard-worker-")
        # Each dispatch records its winner without speculation.
        for dispatch in dispatches:
            assert dispatch["meta"]["speculated"] is False
            assert dispatch["meta"]["winner"] == "primary"

    def test_dispatch_spans_adopt_the_ambient_context(
        self, store, tmp_path
    ):
        ambient = TraceContext.new()
        with collecting_metrics(MetricsRegistry()):
            with tracing(str(tmp_path / "spans.jsonl")):
                with trace_scope(ambient):
                    characterize_store(store, chunk_size=CHUNK, n_jobs=2)
        spans = load_spans(str(tmp_path / "spans.jsonl"))
        assert spans and all(
            s["trace_id"] == ambient.trace_id for s in spans
        )
        for dispatch in (s for s in spans if s["name"] == "shard.dispatch"):
            assert dispatch["parent_id"] == ambient.span_id

    def test_speculation_yields_sibling_pair_under_one_parent(
        self, store, tmp_path
    ):
        plan = FaultPlan(
            faults=(FaultSpec(kind="stall", member=3, stall_s=3.0),)
        )
        spans = _traced_run(
            store,
            tmp_path / "spans.jsonl",
            n_jobs=2,
            policy="quarantine",
            fault_plan=plan,
            budget=Budget(member_timeout_s=0.25),
        )
        [view] = group_traces(spans)

        # The stalled shard's dispatch fathered two sibling attempts:
        # the backup's real worker span and the synthesized span of the
        # cancelled primary.
        speculated = next(
            s for s in spans
            if s["name"] == "shard.dispatch" and s["meta"]["speculated"]
        )
        siblings = [
            s for s in spans
            if s["parent_id"] == speculated["span_id"]
            and s["name"].startswith("shard.worker")
        ]
        assert len(siblings) == 2
        by_name = {s["name"]: s for s in siblings}
        assert set(by_name) == {"shard.worker", "shard.worker.lost"}
        lost = by_name["shard.worker.lost"]
        assert "cancelled" in lost["error"]
        assert lost["meta"]["attempt"] != by_name["shard.worker"]["meta"][
            "attempt"
        ]
        assert speculated["meta"]["winner"] == "backup"
        assert view.root["name"] == "shard.dispatch" or view.root[
            "parent_id"
        ] is None

    def test_untraced_pooled_run_emits_nothing(self, store, tmp_path):
        with collecting_metrics(MetricsRegistry()):
            characterize_store(store, chunk_size=CHUNK, n_jobs=2)
        assert list(tmp_path.iterdir()) == []

    def test_serial_run_emits_no_dispatch_spans(self, store, tmp_path):
        with collecting_metrics(MetricsRegistry()):
            with tracing(str(tmp_path / "spans.jsonl")):
                characterize_store(store, chunk_size=CHUNK)
        # Serial path never dispatches; the lazily-opened sink may not
        # even have created the file.
        path = tmp_path / "spans.jsonl"
        spans = load_spans(str(path)) if path.exists() else []
        assert [
            s for s in spans if s["name"].startswith("shard.")
        ] == []
