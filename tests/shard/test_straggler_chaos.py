"""Chaos drill: straggling shards are speculated around, not waited for.

A ``stall`` fault pins one shard's primary dispatch; with a per-shard
timeout (``Budget.member_timeout_s``) the pool scheduler re-dispatches
the shard redundantly, the healthy copy wins, the straggler is
cancelled, and the merged result is bit-identical to a stall-free
in-memory run — all of it recorded by ``repro_shard_dispatch_total``.
"""

import time

import numpy as np
import pytest

from repro.batch import characterize_ensemble
from repro.exceptions import MatrixValueError
from repro.obs import recording
from repro.obs.metrics import MetricsRegistry, collecting_metrics
from repro.robust import Budget, FaultPlan
from repro.robust.chaos import FaultSpec
from repro.shard import characterize_store, write_store

from .conftest import assert_results_equal, random_stack

N_MEMBERS = 32
CHUNK = 8  # four shards

STALL_S = 3.0
TIMEOUT_S = 0.25


@pytest.fixture(scope="module")
def stack():
    return random_stack(N_MEMBERS, 6, 6, seed=11)


@pytest.fixture(scope="module")
def store(stack, tmp_path_factory):
    return write_store(tmp_path_factory.mktemp("chaos") / "store", stack)


def dispatches(registry):
    counter = registry.get("repro_shard_dispatch_total")
    return {
        event: counter.value(event=event)
        for event in (
            "primary",
            "speculative",
            "winner_primary",
            "winner_backup",
            "cancelled",
        )
    }


class TestSpeculation:
    def test_backup_overtakes_stalled_shard(self, stack, store):
        plan = FaultPlan(
            faults=(FaultSpec(kind="stall", member=3, stall_s=STALL_S),)
        )
        started = time.monotonic()
        with collecting_metrics(MetricsRegistry()) as registry, recording() as rec:
            sharded = characterize_store(
                store,
                chunk_size=CHUNK,
                n_jobs=3,
                policy="quarantine",
                fault_plan=plan,
                budget=Budget(member_timeout_s=TIMEOUT_S),
            )
        elapsed = time.monotonic() - started

        # The run never waited out the stall: the backup finished first.
        assert elapsed < STALL_S

        events = dispatches(registry)
        assert events["primary"] == 4.0
        assert events["speculative"] >= 1.0
        assert events["winner_backup"] >= 1.0
        assert events["cancelled"] >= 1.0
        assert (
            events["winner_primary"] + events["winner_backup"] == 4.0
        )  # every shard produced exactly one winning result
        assert rec.counters.get("shard.speculative", 0) >= 1
        assert rec.counters.get("shard.cancelled", 0) >= 1
        assert rec.counters["shard.shards"] == 4
        assert rec.counters["shard.members"] == N_MEMBERS

        # Stalls delay, they do not corrupt: bit-identical to a healthy
        # in-memory run.
        whole = characterize_ensemble(stack, policy="quarantine")
        assert_results_equal(sharded, whole)

    def test_serial_stall_just_waits(self, stack, store):
        plan = FaultPlan(
            faults=(FaultSpec(kind="stall", member=3, stall_s=0.2),)
        )
        started = time.monotonic()
        with collecting_metrics(MetricsRegistry()) as registry:
            sharded = characterize_store(
                store, chunk_size=CHUNK, fault_plan=plan
            )
        elapsed = time.monotonic() - started
        assert elapsed >= 0.2  # no speculation without a pool
        events = dispatches(registry)
        assert events["primary"] == 4.0
        assert events["speculative"] == 0.0
        assert events["cancelled"] == 0.0
        assert_results_equal(sharded, characterize_ensemble(stack))

    def test_no_timeout_means_no_speculation(self, stack, store):
        with collecting_metrics(MetricsRegistry()) as registry:
            sharded = characterize_store(store, chunk_size=CHUNK, n_jobs=2)
        events = dispatches(registry)
        assert events["primary"] == 4.0
        assert events["speculative"] == 0.0
        assert events["winner_primary"] == 4.0
        assert_results_equal(sharded, characterize_ensemble(stack))

    def test_stall_combined_with_data_faults(self, stack, store):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="stall", member=3, stall_s=STALL_S),
                FaultSpec(kind="nan", member=17),
                FaultSpec(kind="zero-row", member=30),
            )
        )
        with collecting_metrics(MetricsRegistry()) as registry:
            sharded = characterize_store(
                store,
                chunk_size=CHUNK,
                n_jobs=3,
                policy="quarantine",
                fault_plan=plan,
                budget=Budget(member_timeout_s=TIMEOUT_S),
            )
        assert dispatches(registry)["winner_backup"] >= 1.0
        # Data faults keep in-memory semantics even on a speculated run.
        whole = characterize_ensemble(
            stack,
            policy="quarantine",
            fault_plan=FaultPlan(
                faults=(
                    FaultSpec(kind="nan", member=17),
                    FaultSpec(kind="zero-row", member=30),
                )
            ),
        )
        for name in ("mph", "tdh", "tma"):
            assert np.array_equal(
                getattr(sharded, name), getattr(whole, name), equal_nan=True
            )
        assert {f.index for f in sharded.report.faults} == {17, 30}


class TestChaosValidation:
    def test_timeout_requires_robust_policy(self, store):
        with pytest.raises(MatrixValueError, match="policy='quarantine'"):
            characterize_store(
                store, chunk_size=CHUNK, budget=Budget(member_timeout_s=0.1)
            )

    def test_fault_beyond_store_rejected(self, store):
        plan = FaultPlan(faults=(FaultSpec(kind="nan", member=N_MEMBERS),))
        with pytest.raises(MatrixValueError, match="only 32 members"):
            characterize_store(
                store, chunk_size=CHUNK, policy="quarantine", fault_plan=plan
            )
