"""Memory-ceiling regression: streaming peaks stay under the budget.

``tracemalloc`` sees every numpy heap allocation but not memmap pages
(those live in the OS page cache), so the traced peak of a
``characterize_store`` run is exactly the streaming working set the
planner budgets: chunk copies, kernel temporaries, plus the O(N)
result columns (~34 bytes per member — see docs/SHARDING.md).  The
quick variant runs in tier 1; the ``slow``-marked variant streams a
store several times larger than its budget.
"""

import tracemalloc

import numpy as np
import pytest

from repro.shard import characterize_store, create_store, open_store


def build_store(path, n_members, *, chunk=8192, seed=0):
    """Stream a positive (N, 8, 8) ensemble to disk in bounded chunks."""
    rng = np.random.default_rng(seed)
    with create_store(path, n_tasks=8, n_machines=8) as writer:
        remaining = n_members
        while remaining:
            k = min(chunk, remaining)
            writer.append(np.exp(rng.uniform(-2.3, 2.3, size=(k, 8, 8))))
            remaining -= k
    return open_store(path)


def traced_peak_bytes(func):
    """tracemalloc peak of one call, isolated from collection noise."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        result = func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_and_assert_ceiling(store, budget_mb):
    result, peak = traced_peak_bytes(
        lambda: characterize_store(store, memory_budget_mb=budget_mb)
    )
    assert len(result) == len(store)
    assert result.converged.all()
    budget_bytes = budget_mb * 2**20
    assert peak <= budget_bytes, (
        f"streaming peak {peak / 2**20:.1f} MiB exceeds the "
        f"{budget_mb} MiB budget"
    )
    return peak


def test_quick_ceiling(tmp_path):
    # 16384 members = 8 MiB on disk, streamed under an 8 MiB budget in
    # 1024-member chunks.
    store = build_store(tmp_path / "s", 16384)
    peak = run_and_assert_ceiling(store, budget_mb=8)
    # Sanity: the whole stack would not have fit the measured peak
    # (float64 stack + standard form alone is 2x nbytes).
    assert peak < 2 * store.nbytes


@pytest.mark.slow
def test_ceiling_on_store_much_larger_than_budget(tmp_path):
    # 64 Ki members = 32 MiB on disk against a 16 MiB working-set
    # budget: the stack cannot be materialized inside the budget even
    # once, so only streaming can pass.
    store = build_store(tmp_path / "s", 65536)
    budget_mb = 16
    assert store.nbytes == 32 * 2**20 > budget_mb * 2**20
    run_and_assert_ceiling(store, budget_mb=budget_mb)


def test_warm_import_baseline(tmp_path):
    # Guard the harness itself: a tiny run must register a peak well
    # below the quick budget, proving imports/caches are not billed to
    # the streaming working set by the time the ceiling tests run.
    store = build_store(tmp_path / "s", 64, chunk=64)
    _, peak = traced_peak_bytes(
        lambda: characterize_store(store, chunk_size=32)
    )
    assert peak < 4 * 2**20
