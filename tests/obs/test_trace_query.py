"""Span-file loading/querying, and sink integrity under shutdown.

The second half is the crash-safety contract of the serving span sinks:
a SIGTERM'd server loses at most the record being written (the loader
tolerates exactly that truncated final line), and concurrent pool
workers appending to one shared span file never interleave lines.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import (
    JsonlSink,
    RotatingJsonlSink,
    TraceContext,
    Tracer,
    format_trace,
    group_traces,
    load_spans,
    query_traces,
)
from repro.obs.trace_context import append_span_record


def _span(trace_id, span_id, *, parent=None, wall_s=0.1, start=0.0, **meta):
    return {
        "type": "span",
        "name": meta.pop("name", "step"),
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent,
        "start": start,
        "wall_s": wall_s,
        "cpu_s": wall_s,
        "meta": meta,
    }


def _write_jsonl(path, records):
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )


class TestLoadSpans:
    def test_loads_span_records_only(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        _write_jsonl(path, [
            _span("t" * 32, "a" * 16),
            {"type": "counter", "name": "n", "value": 1},
            {"type": "span", "name": "untraced", "wall_s": 0.1},
        ])
        spans = load_spans(str(path))
        assert len(spans) == 1
        assert spans[0]["span_id"] == "a" * 16

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        _write_jsonl(path, [_span("t" * 32, "a" * 16)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "trace_id": "tr')  # cut mid-write
        spans = load_spans(str(path))
        assert len(spans) == 1

    def test_interior_corruption_raises_with_line_number(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        _write_jsonl(path, [_span("t" * 32, "a" * 16)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{broken\n")
            handle.write(json.dumps(_span("t" * 32, "b" * 16)) + "\n")
        with pytest.raises(ValueError, match=r":2: malformed span record"):
            load_spans(str(path))


class TestQueryTraces:
    def _spans(self):
        fast, slow = "f" * 32, "5" * 32
        return [
            _span(fast, "a" * 16, wall_s=0.010, start=1.0, name="serve.request"),
            _span(fast, "b" * 16, parent="a" * 16, wall_s=0.008, start=1.0),
            _span(slow, "c" * 16, wall_s=0.900, start=2.0, name="serve.request"),
        ]

    def test_group_preserves_first_seen_order(self):
        views = group_traces(self._spans())
        assert [v.trace_id for v in views] == ["f" * 32, "5" * 32]
        assert len(views[0].spans) == 2

    def test_root_and_total(self):
        views = group_traces(self._spans())
        assert views[0].root["span_id"] == "a" * 16
        assert views[0].total_s == pytest.approx(0.010)

    def test_trace_id_prefix_filter(self):
        views = query_traces(self._spans(), trace_id="f" * 4)
        assert [v.trace_id for v in views] == ["f" * 32]

    def test_slower_than_filter(self):
        views = query_traces(self._spans(), slower_than_s=0.5)
        assert [v.trace_id for v in views] == ["5" * 32]

    def test_last_takes_most_recent_by_start(self):
        views = query_traces(self._spans(), last=1)
        assert [v.trace_id for v in views] == ["5" * 32]

    def test_filters_compose(self):
        assert query_traces(
            self._spans(), trace_id="f", slower_than_s=0.5
        ) == []

    def test_format_trace_renders_tree_and_timings(self):
        trace_id = "d" * 32
        root = _span(
            trace_id, "a" * 16, wall_s=0.02, name="serve.request",
            endpoint="characterize", status=200,
        )
        root["meta"]["timings"] = {"kernel_s": 0.015, "other_s": 0.005}
        child = _span(
            trace_id, "b" * 16, parent="a" * 16, wall_s=0.015,
            name="serve.kernel",
        )
        text = format_trace(group_traces([root, child])[0])
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace_id}")
        assert "- serve.request" in lines[1]
        assert "endpoint=characterize" in lines[1]
        assert any("kernel_s" in line for line in lines)
        # The child is indented one level under the root.
        child_line = next(l for l in lines if "serve.kernel" in l)
        assert child_line.startswith("  - ")


class TestSinkIntegrityUnderShutdown:
    def test_jsonl_sink_flushes_every_record(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"type": "span", "trace_id": "t" * 32, "wall_s": 0.1})
        # Readable *before* close: the line was flushed at emit time.
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1
        sink.close()

    def test_sigterm_loses_no_completed_spans(self, tmp_path):
        """Kill a tracer-owning process mid-run; every span emitted
        before the kill must be intact on disk."""
        path = tmp_path / "spans.jsonl"
        script = f"""
import sys, time
sys.path.insert(0, {repr(os.path.join(os.getcwd(), "src"))})
from repro.obs import JsonlSink, Tracer, TraceContext

tracer = Tracer(JsonlSink({repr(str(path))}), process="victim")
for i in range(5):
    tracer.emit_span("pre-kill", TraceContext.new(), wall_s=0.001)
print("ready", flush=True)
time.sleep(30)  # killed long before this returns; sink never closed
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            cwd="/root/repo",
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            proc.kill()
        spans = load_spans(str(path))
        assert len(spans) == 5
        assert all(s["name"] == "pre-kill" for s in spans)

    def test_concurrent_pool_writers_never_interleave(self, tmp_path):
        """Many processes appending to one span file via O_APPEND: every
        line parses and nothing is lost (satellite: worker handoff)."""
        path = str(tmp_path / "shared.jsonl")
        jobs = [(path, worker, 25) for worker in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(_append_batch, jobs))
        spans = load_spans(path)
        assert len(spans) == 100
        writers = {s["meta"]["writer"] for s in spans}
        assert writers == {0, 1, 2, 3}
        # Every record round-trips: no torn/interleaved lines anywhere
        # (load_spans would have raised on an interior malformed line).
        for record in spans:
            assert record["trace_id"] == "c" * 32


class TestRotatingSink:
    def test_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        sink = RotatingJsonlSink(str(path), max_bytes=200, backups=2)
        for index in range(40):
            sink.emit({"type": "slow_request", "index": index})
        sink.close()
        assert path.exists()
        assert (tmp_path / "slow.jsonl.1").exists()
        assert (tmp_path / "slow.jsonl.2").exists()
        assert not (tmp_path / "slow.jsonl.3").exists()
        # Newest records live in the live file, oldest in the deepest
        # backup; every surviving line parses.
        def indices(p):
            return [
                json.loads(line)["index"]
                for line in p.read_text(encoding="utf-8").splitlines()
            ]
        live = indices(path)
        oldest = indices(tmp_path / "slow.jsonl.2")
        assert live[-1] == 39
        assert max(oldest) < min(live)

    def test_backups_zero_truncates(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        sink = RotatingJsonlSink(str(path), max_bytes=120, backups=0)
        for index in range(30):
            sink.emit({"index": index})
        sink.close()
        assert not (tmp_path / "slow.jsonl.1").exists()
        content = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(content[-1])["index"] == 29


def _append_batch(job):
    """Pool target: append ``count`` span records with one O_APPEND
    write each (module-level for pickling)."""
    path, writer, count = job
    for index in range(count):
        append_span_record(
            path,
            {
                "type": "span",
                "name": "worker.step",
                "trace_id": "c" * 32,
                "span_id": f"{writer:08x}{index:08x}",
                "wall_s": 0.001,
                "meta": {"writer": writer, "index": index},
            },
        )
        if index % 7 == 0:
            time.sleep(0.001)  # encourage interleaving across writers
    return writer
