"""The metrics registry: instruments, the gate, and the hot-path feeds."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    ITERATION_BUCKETS,
    MetricsRegistry,
    collecting_metrics,
    disable_metrics,
    enable_metrics,
    fold_recorder,
    get_registry,
    metrics_enabled,
    set_registry,
)


@pytest.fixture(autouse=True)
def _gate_closed():
    """Every test starts and ends with collection disabled."""
    assert not metrics_enabled()
    yield
    disable_metrics()


class TestCounter:
    def test_labelled_series_accumulate_independently(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Runs.", labelnames=("kind",))
        runs.inc(kind="a")
        runs.inc(2.5, kind="a")
        runs.inc(kind="b")
        assert runs.value(kind="a") == 3.5
        assert runs.value(kind="b") == 1.0
        assert runs.value(kind="never") == 0.0

    def test_rejects_decrease_and_nan(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(float("nan"))

    def test_rejects_wrong_label_set(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(kind="a", extra="b")


class TestGauge:
    def test_set_inc_and_read(self):
        gauge = MetricsRegistry().gauge("g", "Gauge.")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        # le semantics: 1.0 lands in the le=1 bucket (bisect_left).
        assert snap["buckets"][1.0] == 2
        assert snap["buckets"][10.0] == 3
        assert snap["buckets"][math.inf] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)

    def test_cumulative_buckets_non_decreasing(self):
        h = MetricsRegistry().histogram(
            "h", buckets=ITERATION_BUCKETS, labelnames=("kernel",)
        )
        for value in (1, 3, 7, 7, 120, 10**6):
            h.observe(value, kernel="scalar")
        counts = list(h.snapshot(kernel="scalar")["buckets"].values())
        assert counts == sorted(counts)
        assert counts[-1] == 6

    def test_nan_observations_are_dropped(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        h.observe(float("nan"))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5

    def test_unobserved_series_snapshots_to_zero(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert h.snapshot() == {
            "buckets": {1.0: 0, math.inf: 0},
            "sum": 0.0,
            "count": 0,
        }

    def test_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h0", buckets=())
        with pytest.raises(ValueError, match="strictly"):
            registry.histogram("h1", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("h2", buckets=(1.0, math.inf))


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "Help.", labelnames=("k",))
        again = registry.counter("c_total", "other help", labelnames=("k",))
        assert first is again

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", labelnames=("k",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m", labelnames=("k",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("m", labelnames=("other",))
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine", labelnames=("bad-label",))
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine", labelnames=("__reserved",))

    def test_collect_and_names_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge")
        registry.counter("a_total")
        assert registry.names() == ("a_total", "b_gauge")
        assert [f.name for f in registry.collect()] == ["a_total", "b_gauge"]

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", "C.", labelnames=("k",)).inc(k="x")
        registry.histogram("h", "H.", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        json.dumps(snap)  # raises on anything non-serializable
        assert snap["c_total"]["series"] == [
            {"labels": {"k": "x"}, "value": 1.0}
        ]
        hist = snap["h"]["series"][0]
        assert hist["counts"] == [0, 1, 0]
        assert hist["count"] == 1
        assert snap["h"]["buckets"] == [1.0, 2.0]

    def test_reset_drops_values_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        registry.reset()
        assert counter.value() == 0.0
        assert registry.get("c_total") is counter

    def test_get_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            MetricsRegistry().get("nope")

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000.0


class TestGate:
    def test_disabled_by_default_and_helpers_noop(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            obs_metrics.observe_sinkhorn(
                "scalar", iterations=5, residual=1e-9, converged=True
            )
            obs_metrics.observe_svd("scalar", 0.01)
            obs_metrics.count_characterize("standard")
            assert registry.names() == ()
        finally:
            set_registry(previous)

    def test_enable_disable_roundtrip(self):
        enable_metrics()
        assert metrics_enabled()
        disable_metrics()
        assert not metrics_enabled()

    def test_collecting_metrics_swaps_and_restores(self):
        original = get_registry()
        fresh = MetricsRegistry()
        with collecting_metrics(fresh) as registry:
            assert registry is fresh
            assert get_registry() is fresh
            assert metrics_enabled()
        assert get_registry() is original
        assert not metrics_enabled()

    def test_collecting_metrics_default_registry(self):
        original = get_registry()
        with collecting_metrics() as registry:
            assert registry is original


class TestHotPathFeeds:
    def test_scalar_sinkhorn_feeds_registry(self):
        from repro.normalize.sinkhorn import sinkhorn_knopp

        with collecting_metrics(MetricsRegistry()) as registry:
            result = sinkhorn_knopp([[1.0, 2.0], [3.0, 4.0]])
        runs = registry.get("repro_sinkhorn_runs_total")
        assert runs.value(kernel="scalar", converged="true") == 1.0
        iters = registry.get("repro_sinkhorn_iterations")
        snap = iters.snapshot(kernel="scalar")
        assert snap["count"] == 1
        assert snap["sum"] == result.iterations
        residual = registry.get("repro_sinkhorn_exit_residual")
        assert residual.snapshot(kernel="scalar")["count"] == 1

    def test_margin_scaling_feeds_margins_kernel(self):
        from repro.normalize.sinkhorn import scale_to_margins

        with collecting_metrics(MetricsRegistry()) as registry:
            scale_to_margins(
                [[1.0, 2.0], [3.0, 4.0]], row_sums=(1, 1), col_sums=(1, 1)
            )
        runs = registry.get("repro_sinkhorn_runs_total")
        assert runs.value(kernel="margins", converged="true") == 1.0

    def test_batched_sinkhorn_feeds_per_slice(self):
        from repro.batch.sinkhorn import standardize_batched

        stack = np.random.default_rng(0).uniform(0.5, 4.0, size=(5, 4, 3))
        with collecting_metrics(MetricsRegistry()) as registry:
            standardize_batched(stack)
        runs = registry.get("repro_sinkhorn_runs_total")
        assert runs.value(kernel="batched", converged="true") == 5.0
        iters = registry.get("repro_sinkhorn_iterations")
        assert iters.snapshot(kernel="batched")["count"] == 5

    def test_characterize_feeds_svd_and_method(self):
        from repro import characterize

        with collecting_metrics(MetricsRegistry()) as registry:
            characterize([[1.0, 2.0], [2.0, 1.0]])
        assert (
            registry.get("repro_characterize_runs_total").value(
                tma_method="standard"
            )
            == 1.0
        )
        svd = registry.get("repro_svd_seconds")
        assert svd.snapshot(kernel="scalar")["count"] == 1

    def test_batched_ensemble_counts_dispatch_paths(self):
        from repro.batch import characterize_ensemble

        stack = np.random.default_rng(1).uniform(0.5, 4.0, size=(6, 4, 4))
        with collecting_metrics(MetricsRegistry()) as registry:
            characterize_ensemble(stack)
        members = registry.get("repro_ensemble_members_total")
        assert members.value(path="batched") == 6.0
        assert registry.get("repro_svd_seconds").snapshot(
            kernel="batched"
        )["count"] >= 1

    def test_robust_outcomes_by_taxonomy_slug(self):
        from repro.batch import characterize_ensemble
        from repro.robust import FaultPlan

        stack = np.random.default_rng(2).uniform(0.5, 4.0, size=(6, 4, 4))
        plan = FaultPlan.random(6, faults="nan=2", seed=0)
        with collecting_metrics(MetricsRegistry()) as registry:
            characterize_ensemble(
                stack, policy="quarantine", fault_plan=plan
            )
        outcomes = registry.get("repro_member_outcomes_total")
        assert outcomes.value(outcome="quarantined") == 2.0
        assert outcomes.value(outcome="fault.nan") == 2.0

    def test_count_member_outcomes_with_explicit_report(self):
        from repro.robust.taxonomy import MemberFault, QuarantineReport

        report = QuarantineReport(
            policy="repair",
            faults=(
                MemberFault(index=0, category="nan", detail="x"),
                MemberFault(
                    index=2,
                    category="non-convergent",
                    detail="y",
                    repaired=True,
                    attempts=1,
                    repair="tol-backoff:1e-06",
                ),
            ),
        )
        registry = MetricsRegistry()
        obs_metrics.count_member_outcomes(report, registry=registry)
        outcomes = registry.get("repro_member_outcomes_total")
        assert outcomes.value(outcome="quarantined") == 1.0
        assert outcomes.value(outcome="repaired") == 1.0
        assert outcomes.value(outcome="fault.nan") == 1.0
        assert outcomes.value(outcome="fault.non-convergent") == 1.0


class TestFoldRecorder:
    def test_spans_counters_gauges_fold(self):
        from repro.obs import recording, span

        with recording() as rec:
            with span("demo.ok"):
                pass
            with pytest.raises(RuntimeError):
                with span("demo.err"):
                    raise RuntimeError("boom")
            rec.counter("demo.count", 3)
            rec.gauge("demo.gauge", 7.5)
        registry = MetricsRegistry()
        fold_recorder(rec, registry=registry)
        assert registry.get("repro_spans_total").value(span="demo.ok") == 1.0
        assert (
            registry.get("repro_span_errors_total").value(span="demo.err")
            == 1.0
        )
        assert (
            registry.get("repro_span_seconds")
            .snapshot(span="demo.ok")["count"]
            == 1
        )
        assert (
            registry.get("repro_obs_counter_total").value(counter="demo.count")
            == 3.0
        )
        assert (
            registry.get("repro_obs_gauge").value(gauge="demo.gauge") == 7.5
        )

    def test_recording_auto_folds_while_enabled(self):
        from repro import characterize
        from repro.obs import recording

        with collecting_metrics(MetricsRegistry()) as registry:
            with recording():
                characterize([[1.0, 2.0], [2.0, 1.0]])
        spans = registry.get("repro_spans_total")
        assert spans.value(span="measures.characterize") == 1.0

    def test_recording_does_not_fold_while_disabled(self):
        from repro.obs import recording, span

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            with recording():
                with span("demo.step"):
                    pass
            assert "repro_spans_total" not in registry.names()
        finally:
            set_registry(previous)
