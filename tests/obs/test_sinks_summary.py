"""Sinks and span-summary aggregation."""

import json
import logging

import pytest

from repro.obs import (
    JsonlSink,
    LoggingSink,
    MemorySink,
    Sink,
    SpanSummary,
    recording,
    span,
    summary,
)
from repro.obs.summary import _percentile


class TestSinkProtocol:
    def test_builtin_sinks_satisfy_protocol(self):
        assert isinstance(MemorySink(), Sink)
        assert isinstance(LoggingSink(), Sink)

    def test_custom_sink_satisfies_protocol(self):
        class Custom:
            def emit(self, record):
                pass

            def close(self):
                pass

        assert isinstance(Custom(), Sink)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with recording(trace_path=path) as rec:
            with span("jsonl.block", rows=2):
                pass
            rec.counter("jsonl.count", 7)
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert {"span", "counter", "counter_total"} <= types
        span_rec = next(r for r in records if r["type"] == "span")
        assert span_rec["name"] == "jsonl.block"
        assert span_rec["meta"]["rows"] == 2

    def test_no_file_created_when_nothing_emitted(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()


class TestLoggingSink:
    def test_spans_logged_at_debug(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with recording(logger=True):
                with span("logged.block"):
                    pass
        assert any("logged.block" in r.getMessage() for r in caplog.records)


class TestPercentile:
    def test_empty_and_single(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.95) == 3.0

    def test_interpolates(self):
        assert _percentile([0.0, 1.0], 0.5) == pytest.approx(0.5)
        assert _percentile([0.0, 1.0, 2.0, 3.0], 0.95) == pytest.approx(2.85)


class TestSummary:
    def test_aggregates_per_name(self):
        with recording() as rec:
            for _ in range(4):
                with span("agg.step"):
                    pass
            rec.counter("agg.count", 2)
        stats = summary(rec)
        row = stats.row("agg.step")
        assert row.count == 4
        assert row.total_s >= row.max_s >= row.p95_s >= row.p50_s >= 0
        assert row.mean_s == pytest.approx(row.total_s / 4)
        assert stats.counters["agg.count"] == 2

    def test_row_missing_name_raises(self):
        stats = SpanSummary(rows=(), counters={})
        with pytest.raises(KeyError):
            stats.row("absent")

    def test_covers_matches_prefix(self):
        with recording() as rec:
            with span("svd.scalar"):
                pass
        stats = rec.summary()
        assert stats.covers("svd")
        assert stats.covers("svd.scalar")
        assert not stats.covers("svd.scal")
        assert not stats.covers("sinkhorn")

    def test_table_and_to_dict(self):
        with recording() as rec:
            with span("tbl.step"):
                pass
            rec.counter("tbl.count", 3)
        stats = rec.summary()
        text = stats.table()
        assert "tbl.step" in text and "counter tbl.count = 3" in text
        doc = stats.to_dict()
        assert doc["spans"][0]["name"] == "tbl.step"
        assert doc["counters"]["tbl.count"] == 3
        json.dumps(doc)  # JSON-safe

    def test_empty_table_placeholder(self):
        assert "no spans" in SpanSummary(rows=(), counters={}).table()
