"""The BENCH payload pipeline: run, persist, compare, CLI gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_CASES,
    BENCH_SCHEMA,
    compare_bench,
    load_bench,
    next_bench_path,
    run_bench,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_payload() -> dict:
    """One shared quick run (the cases are deterministic workloads)."""
    return run_bench(quick=True, repeats=1)


class TestRunBench:
    def test_payload_is_schema_valid(self, quick_payload):
        validate_bench(quick_payload)
        assert quick_payload["schema"] == BENCH_SCHEMA
        assert quick_payload["quick"] is True
        assert set(quick_payload["benchmarks"]) == set(BENCH_CASES)
        for entry in quick_payload["benchmarks"].values():
            assert entry["wall_s"]["best"] > 0
            assert entry["wall_s"]["mean"] >= entry["wall_s"]["best"]
            assert entry["wall_s"]["repeats"] == 1
            assert "best" in entry["cpu_s"] and "mean" in entry["cpu_s"]

    def test_payload_is_json_safe(self, quick_payload):
        json.dumps(quick_payload)

    def test_metrics_snapshot_captures_kernels(self, quick_payload):
        metrics = quick_payload["metrics"]
        assert "repro_sinkhorn_runs_total" in metrics
        assert "repro_sinkhorn_iterations" in metrics
        assert "repro_svd_seconds" in metrics
        kernels = {
            s["labels"]["kernel"]
            for s in metrics["repro_sinkhorn_runs_total"]["series"]
        }
        assert {"scalar", "batched"} <= kernels

    def test_git_sha_recorded_in_repo(self, quick_payload):
        sha = quick_payload["git_sha"]
        assert sha is None or (len(sha) == 40 and set(sha) <= set(
            "0123456789abcdef"
        ))

    def test_benchmark_subset_and_unknown_name(self):
        payload = run_bench(
            quick=True, repeats=1, benchmarks=["schedule_min_min"]
        )
        assert set(payload["benchmarks"]) == {"schedule_min_min"}
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_bench(quick=True, benchmarks=["nope"])

    def test_results_snapshots_folded(self, tmp_path):
        (tmp_path / "alpha.json").write_text('{"x": 1}', encoding="utf-8")
        (tmp_path / "broken.json").write_text("{nope", encoding="utf-8")
        payload = run_bench(
            quick=True,
            repeats=1,
            benchmarks=["schedule_min_min"],
            results_dir=tmp_path,
        )
        assert payload["results_snapshots"] == {"alpha": {"x": 1}}

    def test_collection_gate_restored(self):
        from repro.obs import metrics_enabled

        assert not metrics_enabled()


class TestPersistence:
    def test_bench_numbering_increments(self, tmp_path, quick_payload):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        first = write_bench(quick_payload, directory=tmp_path)
        assert first.name == "BENCH_1.json"
        second = write_bench(quick_payload, directory=tmp_path)
        assert second.name == "BENCH_2.json"
        # Non-numeric suffixes don't confuse the counter.
        (tmp_path / "BENCH_ci.json").write_text("{}", encoding="utf-8")
        assert next_bench_path(tmp_path).name == "BENCH_3.json"

    def test_write_load_roundtrip(self, tmp_path, quick_payload):
        path = write_bench(quick_payload, path=tmp_path / "BENCH_x.json")
        assert load_bench(path) == quick_payload

    def test_load_rejects_invalid(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_bench(bad)
        bad.write_text('{"schema": "other/1"}', encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported BENCH schema"):
            load_bench(bad)

    def test_validate_rejects_malformed(self, quick_payload):
        broken = copy.deepcopy(quick_payload)
        del broken["benchmarks"]["sinkhorn_scalar"]["wall_s"]
        with pytest.raises(ValueError, match="malformed"):
            validate_bench(broken)
        negative = copy.deepcopy(quick_payload)
        negative["benchmarks"]["sinkhorn_scalar"]["wall_s"]["best"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            validate_bench(negative)


def _doctored(payload: dict, factor: float) -> dict:
    """A copy whose baseline best wall times are scaled by ``factor``."""
    doctored = copy.deepcopy(payload)
    for entry in doctored["benchmarks"].values():
        entry["wall_s"]["best"] *= factor
    return doctored


class TestCompareBench:
    def test_self_compare_is_ok(self, quick_payload):
        comparison = compare_bench(quick_payload, quick_payload)
        assert comparison.ok
        assert not comparison.regressions
        assert "OK" in comparison.table()

    def test_2x_slowdown_fails_gate(self, quick_payload):
        # Doctored baseline at half the time == current is 2x slower.
        baseline = _doctored(quick_payload, 0.5)
        comparison = compare_bench(quick_payload, baseline)
        assert not comparison.ok
        assert len(comparison.regressions) == len(BENCH_CASES)
        table = comparison.table()
        assert "** REGRESSION" in table
        assert "FAIL" in table

    def test_threshold_is_inclusive_of_allowed_slack(self, quick_payload):
        # Exactly 10% slower passes a 15% gate and fails a 5% gate.
        baseline = _doctored(quick_payload, 1 / 1.10)
        assert compare_bench(
            quick_payload, baseline, max_regression=0.15
        ).ok
        assert not compare_bench(
            quick_payload, baseline, max_regression=0.05
        ).ok

    def test_one_sided_benchmarks_reported_not_failed(self, quick_payload):
        baseline = copy.deepcopy(quick_payload)
        del baseline["benchmarks"]["characterize"]
        baseline["benchmarks"]["legacy_case"] = {
            "wall_s": {"best": 1.0, "mean": 1.0, "repeats": 1},
            "cpu_s": {"best": 1.0, "mean": 1.0},
        }
        comparison = compare_bench(quick_payload, baseline)
        assert comparison.ok
        assert comparison.only_current == ("characterize",)
        assert comparison.only_baseline == ("legacy_case",)
        table = comparison.table()
        assert "new case, no baseline: characterize" in table
        assert "in baseline only: legacy_case" in table

    def test_rejects_negative_threshold(self, quick_payload):
        with pytest.raises(ValueError, match="max_regression"):
            compare_bench(quick_payload, quick_payload, max_regression=-0.1)


class TestBenchCli:
    def test_quick_run_writes_next_bench_json(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick",
                     "--benchmarks", "schedule_min_min"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        payload = load_bench(tmp_path / "BENCH_1.json")
        assert payload["quick"] is True

    def test_replay_self_compare_exits_zero(
        self, tmp_path, quick_payload, capsys
    ):
        path = write_bench(quick_payload, path=tmp_path / "BENCH_ci.json")
        assert main([
            "bench", "--replay", str(path), "--compare", str(path),
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_against_doctored_baseline_exits_nonzero(
        self, tmp_path, quick_payload, capsys
    ):
        current = write_bench(quick_payload, path=tmp_path / "BENCH_1.json")
        baseline = write_bench(
            _doctored(quick_payload, 0.5), path=tmp_path / "BENCH_base.json"
        )
        code = main([
            "bench", "--replay", str(current), "--compare", str(baseline),
            "--max-regression", "0.15",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_against_baseline_missing_new_case_exits_zero(
        self, tmp_path, quick_payload, capsys
    ):
        # A baseline written before warm_start existed must not fail
        # the gate on the new case — it is reported, not compared.
        current = write_bench(quick_payload, path=tmp_path / "BENCH_1.json")
        old = copy.deepcopy(quick_payload)
        del old["benchmarks"]["warm_start"]
        baseline = write_bench(old, path=tmp_path / "BENCH_old.json")
        code = main([
            "bench", "--replay", str(current), "--compare", str(baseline),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "new case, no baseline: warm_start" in out
        assert "OK" in out

    def test_warm_start_case_records_iteration_speedup(self, quick_payload):
        extra = quick_payload["benchmarks"]["warm_start"]["extra"]
        assert extra["warm_iterations"] < extra["cold_iterations"]
        assert extra["iteration_speedup"] >= 3.0

    def test_unknown_case_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick", "--benchmarks", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_baseline_exits_2(self, tmp_path, quick_payload, capsys):
        current = write_bench(quick_payload, path=tmp_path / "BENCH_1.json")
        missing = tmp_path / "missing.json"
        assert main([
            "bench", "--replay", str(current), "--compare", str(missing),
        ]) == 2
        assert "error:" in capsys.readouterr().err
