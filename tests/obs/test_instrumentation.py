"""The hot paths actually emit spans (end-to-end wiring)."""

import numpy as np
import pytest

from repro import characterize, recording, standardize
from repro.analysis.independence import independence_study
from repro.analysis.sensitivity import sensitivity_study
from repro.batch import characterize_ensemble, sinkhorn_knopp_batched
from repro.normalize import sinkhorn_knopp
from repro.scheduling import run_heuristic, simulate_online

ENV = [[1.0, 2.0, 3.0], [2.0, 1.0, 2.0], [3.0, 2.0, 1.0]]


class TestSinkhornSpans:
    def test_scalar_sinkhorn_span(self):
        with recording() as rec:
            result = sinkhorn_knopp(ENV, row_target=1.0)
        (event,) = rec.spans("sinkhorn.scalar")
        assert event.meta["rows"] == 3 and event.meta["cols"] == 3
        assert event.meta["iterations"] == result.iterations
        assert event.meta["converged"] is True
        # residual samples mirror the result's history
        assert event.samples["residual"] == pytest.approx(
            result.residual_history
        )

    def test_batched_sinkhorn_span(self):
        stack = np.stack([np.array(ENV), np.array(ENV) * 2.0])
        with recording() as rec:
            result = sinkhorn_knopp_batched(stack, row_target=1.0)
        (event,) = rec.spans("sinkhorn.batched")
        assert event.meta["slices"] == 2
        assert event.meta["converged_slices"] == 2
        # one occupancy sample per iteration, all values in [1, N]
        occupancy = event.samples["active_slices"]
        assert len(occupancy) == int(np.max(result.iterations))
        assert all(1 <= v <= 2 for v in occupancy)


class TestMeasureSpans:
    def test_characterize_emits_pipeline_spans(self):
        with recording() as rec:
            characterize(ENV)
        stats = rec.summary()
        assert stats.covers("measures.characterize")
        assert stats.covers("sinkhorn")
        assert stats.covers("svd")

    def test_standardize_nested_under_characterize(self):
        with recording() as rec:
            characterize(ENV)
        outer = rec.spans("measures.characterize")[0]
        inner = rec.spans("sinkhorn.scalar")[0]
        assert inner.depth == outer.depth + 1

    def test_standardize_alone_emits_sinkhorn_only(self):
        with recording() as rec:
            standardize(ENV)
        assert rec.spans("sinkhorn.scalar")
        assert not rec.spans("measures.characterize")

    def test_ensemble_spans_and_counters(self):
        stack = np.stack([np.array(ENV), np.eye(3) + 0.5])
        with recording() as rec:
            characterize_ensemble(stack)
        assert rec.spans("batch.characterize_ensemble")
        assert rec.spans("svd.batched")
        assert rec.counters["ensemble.slices"] == 2
        assert rec.counters["ensemble.batched_slices"] == 2
        assert rec.counters["ensemble.fallback_slices"] == 0


class TestSchedulingSpans:
    def test_run_heuristic_span_and_counter(self):
        with recording() as rec:
            mapping = run_heuristic("min_min", ENV)
        (event,) = rec.spans("scheduling.min_min")
        assert event.meta["tasks"] == 3
        assert event.meta["makespan"] == mapping.makespan
        assert rec.counters["scheduling.decisions"] == 3

    def test_online_simulation_span(self):
        with recording() as rec:
            res = simulate_online(ENV, [0.0, 0.0, 0.0], policy="mct")
        (event,) = rec.spans("scheduling.online")
        assert event.meta["policy"] == "mct"
        assert event.meta["makespan"] == res.makespan


class TestAnalysisSpans:
    def test_sensitivity_trial_fanout(self):
        with recording() as rec:
            sensitivity_study(
                ENV, noise_levels=(0.05, 0.1), trials=3, seed=0
            )
        assert len(rec.spans("analysis.sensitivity_level")) == 2
        assert rec.counters["sensitivity.trials"] == 6

    def test_independence_fanout(self):
        with recording() as rec:
            independence_study("tma", targets=(0.1, 0.3), seed=0)
        (event,) = rec.spans("analysis.independence")
        assert event.meta["swept"] == "tma"
        assert rec.counters["independence.trials"] == 2


class TestDisabledIsInert:
    def test_functions_identical_without_recorder(self):
        baseline = characterize(ENV)
        with recording():
            traced_profile = characterize(ENV)
        assert baseline.mph == traced_profile.mph
        assert baseline.tdh == traced_profile.tdh
        assert baseline.tma == traced_profile.tma
