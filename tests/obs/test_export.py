"""Prometheus exposition, the scrape endpoint and Chrome trace export."""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    chrome_trace,
    recording,
    render_prometheus,
    span,
    start_metrics_server,
)

SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{.*?\})? (?P<value>\S+)'
    r'(?P<exemplar> # \{.*\} \S+( \S+)?)?$'
)


def _parse_exposition(text: str) -> dict:
    """Parse the text format into {metric: {"type", "help", "samples"}}.

    A deliberately independent mini-parser: it checks the invariants a
    real scraper relies on (HELP/TYPE precede samples, every sample
    line matches the grammar) rather than mirroring the renderer.
    """
    families: dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = families.setdefault(
                name, {"help": help_text, "type": None, "samples": []}
            )
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name in families, f"TYPE before HELP for {name}"
            families[name]["type"] = kind
        else:
            match = SAMPLE_LINE.match(line)
            assert match, f"malformed sample line: {line!r}"
            base = match.group("name")
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in families:
                    base = base[: -len(suffix)]
                    break
            assert base in families, f"sample for undeclared metric: {line!r}"
            assert current is not None
            families[base]["samples"].append(
                (match.group("name"), match.group("labels") or "",
                 match.group("value"))
            )
            if match.group("exemplar"):
                families[base].setdefault("exemplars", []).append(
                    match.group("exemplar").strip()
                )
    return families


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    runs = registry.counter(
        "demo_runs_total", "Demo runs.", labelnames=("kind",)
    )
    runs.inc(kind="fast")
    runs.inc(2, kind="slow")
    registry.gauge("demo_level", "Demo level.").set(0.5)
    hist = registry.histogram(
        "demo_seconds", "Demo durations.", labelnames=("stage",),
        buckets=(0.1, 1.0),
    )
    for value in (0.05, 0.5, 5.0):
        hist.observe(value, stage="run")
    return registry


class TestPrometheusFormat:
    def test_every_family_has_help_and_type(self, registry):
        families = _parse_exposition(render_prometheus(registry))
        assert set(families) == {
            "demo_runs_total", "demo_level", "demo_seconds",
        }
        assert families["demo_runs_total"]["type"] == "counter"
        assert families["demo_level"]["type"] == "gauge"
        assert families["demo_seconds"]["type"] == "histogram"
        for family in families.values():
            assert family["help"]

    def test_counter_and_gauge_samples(self, registry):
        text = render_prometheus(registry)
        assert 'demo_runs_total{kind="fast"} 1' in text.splitlines()
        assert 'demo_runs_total{kind="slow"} 2' in text.splitlines()
        assert "demo_level 0.5" in text.splitlines()

    def test_histogram_bucket_invariants(self, registry):
        text = render_prometheus(registry)
        buckets = re.findall(
            r'demo_seconds_bucket\{stage="run",le="([^"]+)"\} (\d+)', text
        )
        assert [b[0] for b in buckets] == ["0.1", "1", "+Inf"]
        counts = [int(b[1]) for b in buckets]
        # Cumulative and non-decreasing; +Inf equals _count.
        assert counts == sorted(counts) == [1, 2, 3]
        assert 'demo_seconds_count{stage="run"} 3' in text.splitlines()
        assert 'demo_seconds_sum{stage="run"} 5.55' in text.splitlines()

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "esc_total", "Escapes.", labelnames=("path",)
        )
        counter.inc(path='with"quote')
        counter.inc(path="with\\slash")
        counter.inc(path="with\nnewline")
        text = render_prometheus(registry)
        assert 'esc_total{path="with\\"quote"} 1' in text.splitlines()
        assert 'esc_total{path="with\\\\slash"} 1' in text.splitlines()
        assert 'esc_total{path="with\\nnewline"} 1' in text.splitlines()
        # The document itself stays one sample per physical line.
        _parse_exposition(text)

    def test_help_newline_escaping(self):
        registry = MetricsRegistry()
        registry.counter("multi_total", "line one\nline two").inc()
        text = render_prometheus(registry)
        assert "# HELP multi_total line one\\nline two" in text.splitlines()

    def test_empty_family_renders_headers_only(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "Never incremented.")
        families = _parse_exposition(render_prometheus(registry))
        assert families["quiet_total"]["samples"] == []

    def test_hot_path_output_parses(self):
        from repro import characterize
        from repro.obs import collecting_metrics

        with collecting_metrics(MetricsRegistry()) as reg:
            characterize([[1.0, 2.0], [2.0, 1.0]])
        families = _parse_exposition(render_prometheus(reg))
        assert "repro_sinkhorn_iterations" in families
        assert families["repro_sinkhorn_iterations"]["type"] == "histogram"


class TestExemplars:
    def _registry_with_exemplar(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        hist = registry.histogram(
            "ex_seconds", "Exemplar demo.", labelnames=("stage",),
            buckets=(0.1, 1.0),
        )
        hist.observe(0.5, exemplar={"trace_id": "abc123"}, stage="run")
        return registry

    def test_exemplar_renders_on_the_observed_bucket(self):
        text = render_prometheus(self._registry_with_exemplar())
        line = next(
            l for l in text.splitlines()
            if l.startswith("ex_seconds_bucket") and 'le="1"' in l
        )
        assert ' # {trace_id="abc123"} 0.5 ' in line

    def test_exemplar_bearing_exposition_parses(self):
        families = _parse_exposition(
            render_prometheus(self._registry_with_exemplar())
        )
        assert families["ex_seconds"]["exemplars"]

    def test_last_exemplar_per_bucket_wins(self):
        registry = self._registry_with_exemplar()
        hist = registry.histogram(
            "ex_seconds", "Exemplar demo.", labelnames=("stage",),
            buckets=(0.1, 1.0),
        )
        hist.observe(0.4, exemplar={"trace_id": "later99"}, stage="run")
        text = render_prometheus(registry)
        assert "later99" in text and "abc123" not in text

    def test_snapshot_strips_exemplars(self):
        # The bench pipeline diffs snapshots; exemplars are scrape-time
        # decoration and must not leak into the stable payload shape.
        registry = self._registry_with_exemplar()
        snapshot = registry.snapshot()
        for series in snapshot["ex_seconds"]["series"]:
            assert "exemplars" not in series

    def test_unobserved_buckets_carry_no_exemplar(self):
        text = render_prometheus(self._registry_with_exemplar())
        first = next(
            l for l in text.splitlines()
            if l.startswith("ex_seconds_bucket") and 'le="0.1"' in l
        )
        assert "#" not in first


class TestMetricsServer:
    def test_scrape_roundtrip_on_ephemeral_port(self, registry):
        server = start_metrics_server(port=0, registry=registry)
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert (
                    response.headers["Content-Type"]
                    == PROMETHEUS_CONTENT_TYPE
                )
                body = response.read().decode("utf-8")
            assert body == render_prometheus(registry)
            _parse_exposition(body)
        finally:
            server.shutdown()
            server.server_close()

    def test_unknown_path_is_404(self, registry):
        server = start_metrics_server(port=0, registry=registry)
        try:
            host, port = server.server_address[:2]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestServeMetricsCli:
    def test_print_dumps_exposition_and_exits_zero(self, capsys):
        from repro.cli import main
        from repro.obs import disable_metrics, set_registry

        fresh = MetricsRegistry()
        fresh.counter("cli_demo_total", "From the CLI test.").inc()
        previous = set_registry(fresh)
        try:
            assert main(["serve-metrics", "--print"]) == 0
        finally:
            disable_metrics()
            set_registry(previous)
        out = capsys.readouterr().out
        assert "# TYPE cli_demo_total counter" in out
        _parse_exposition(out)


class TestChromeTrace:
    def test_recorder_conversion_shape(self):
        with recording() as rec:
            with span("demo.outer"):
                with span("demo.inner", size=3) as sp:
                    sp.sample("residual", [0.5, 0.1])
            rec.counter("demo.count", 2)
            rec.gauge("demo.gauge", 1.5)
        doc = chrome_trace(rec)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # Perfetto needs plain JSON
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in spans} == {"demo.outer", "demo.inner"}
        assert {e["name"] for e in counters} == {"demo.count", "demo.gauge"}
        inner = next(e for e in spans if e["name"] == "demo.inner")
        assert inner["args"]["size"] == 3
        assert list(inner["args"]["samples.residual"]) == [0.5, 0.1]
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1

    def test_error_spans_carry_error_arg(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with span("demo.err"):
                    raise ValueError("boom")
        doc = chrome_trace(rec)
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["args"]["error"] == "ValueError"

    def test_unknown_record_types_are_skipped(self):
        records = [
            {"type": "span", "name": "s", "start": 0.0, "wall_s": 0.1,
             "cpu_s": 0.1, "depth": 0, "meta": {}, "samples": {}},
            {"type": "future-thing", "payload": 1},
        ]
        doc = chrome_trace(records)
        assert [
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        ] == ["s"]

    def test_process_metadata_events_name_the_lanes(self):
        with recording() as rec:
            with span("demo.step"):
                pass
        events = chrome_trace(rec)["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {
            "process_name", "thread_name",
        }
        process_meta = next(
            e for e in metadata if e["name"] == "process_name"
        )
        # Metadata precedes the events it names, and the lane's pid is
        # the one the span events carry.
        assert events.index(process_meta) < events.index(
            next(e for e in events if e["ph"] == "X")
        )
        span_event = next(e for e in events if e["ph"] == "X")
        assert process_meta["pid"] == span_event["pid"]
        assert process_meta["args"]["name"] == "repro"

    def test_multi_process_records_get_stable_distinct_lanes(self):
        def record(pid, process, name):
            return {
                "type": "span", "name": name, "start": 0.0,
                "wall_s": 0.1, "cpu_s": 0.1, "depth": 0, "meta": {},
                "samples": {}, "pid": pid, "process": process,
            }

        records = [
            record(4001, "repro-serve", "serve.request"),
            record(5002, "shard-worker-5002", "shard.worker"),
            record(4001, "repro-serve", "serve.kernel"),
        ]
        events = chrome_trace(records)["traceEvents"]
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        # Raw pids map to sequential trace pids in first-seen order,
        # and records from one process share a lane.
        assert spans["serve.request"]["pid"] == 1
        assert spans["serve.kernel"]["pid"] == 1
        assert spans["shard.worker"]["pid"] == 2
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {1: "repro-serve", 2: "shard-worker-5002"}
