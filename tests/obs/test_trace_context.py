"""TraceContext propagation primitives: ids, headers, spans, stages."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TIMING_STAGES,
    MemorySink,
    RequestTrace,
    TraceContext,
    Tracer,
    current_trace,
    current_tracer,
    recording,
    span,
    trace_scope,
    tracing,
)


class TestTraceContext:
    def test_new_mints_well_formed_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16), int(ctx.span_id, 16)
        assert ctx.parent_id is None

    def test_ids_are_unique(self):
        contexts = [TraceContext.new() for _ in range(64)]
        assert len({c.trace_id for c in contexts}) == 64
        assert len({c.span_id for c in contexts}) == 64

    def test_child_shares_trace_and_links_parent(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_traceparent_roundtrip(self):
        ctx = TraceContext.new()
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-beef-01",
            "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
            "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
        ],
        ids=[
            "none", "empty", "garbage", "short", "zero-trace",
            "zero-span", "version-ff", "non-hex",
        ],
    )
    def test_malformed_traceparent_yields_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_traceparent_case_insensitive(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None and parsed.trace_id == "ab" * 16

    def test_payload_roundtrip_is_pickle_safe(self):
        child = TraceContext.new().child()
        payload = child.to_payload()
        json.dumps(payload)  # plain-dict, JSON/pickle friendly
        back = TraceContext.from_payload(payload)
        assert back == child

    def test_from_payload_tolerates_garbage(self):
        assert TraceContext.from_payload(None) is None
        assert TraceContext.from_payload({}) is None
        assert TraceContext.from_payload({"trace_id": "x"}) is None


class TestRequestTrace:
    def test_begin_without_header_mints_root(self):
        rtrace = RequestTrace.begin()
        assert rtrace.context.parent_id is None
        assert rtrace.remote_parent is False

    def test_begin_adopts_remote_parent(self):
        remote = TraceContext.new()
        rtrace = RequestTrace.begin(remote.to_traceparent())
        assert rtrace.remote_parent is True
        assert rtrace.context.trace_id == remote.trace_id
        assert rtrace.context.parent_id == remote.span_id

    def test_begin_with_bad_header_starts_fresh(self):
        rtrace = RequestTrace.begin("not-a-traceparent")
        assert rtrace.remote_parent is False

    def test_timings_sum_to_total_by_construction(self):
        rtrace = RequestTrace.begin()
        rtrace.add("kernel_s", 0.2)
        rtrace.add("cache_s", 0.05)
        timings = rtrace.timings(0.5)
        assert set(timings) == set(TIMING_STAGES)
        assert sum(timings.values()) == pytest.approx(0.5)
        assert timings["other_s"] == pytest.approx(0.25)

    def test_other_s_never_negative(self):
        rtrace = RequestTrace.begin()
        rtrace.add("kernel_s", 2.0)
        assert rtrace.timings(1.0)["other_s"] == 0.0

    def test_add_accumulates_and_ignores_nonpositive(self):
        rtrace = RequestTrace.begin()
        rtrace.add("cache_s", 0.1)
        rtrace.add("cache_s", 0.2)
        rtrace.add("cache_s", 0.0)
        rtrace.add("cache_s", -1.0)
        assert rtrace.stages["cache_s"] == pytest.approx(0.3)


class TestTracer:
    def test_emit_span_writes_straight_to_sink(self):
        sink = MemorySink()
        tracer = Tracer(sink, process="unit")
        ctx = TraceContext.new()
        tracer.emit_span("demo", ctx, wall_s=0.5, meta={"k": 1})
        assert len(sink.records) == 1
        record = sink.records[0]
        assert record["type"] == "span"
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        assert record["process"] == "unit"
        assert record["meta"] == {"k": 1}
        json.dumps(record)

    def test_span_context_manager_records_errors(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom", TraceContext.new()):
                raise RuntimeError("nope")
        assert sink.records[0]["error"] == "RuntimeError: nope"

    def test_links_survive_to_the_record(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        members = [TraceContext.new() for _ in range(3)]
        tracer.emit_span(
            "fan-in",
            TraceContext.new(),
            wall_s=0.1,
            links=[m.link() for m in members],
        )
        links = sink.records[0]["links"]
        assert [l["span_id"] for l in links] == [m.span_id for m in members]

    def test_index_is_monotonic(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        for _ in range(5):
            tracer.emit_span("s", TraceContext.new(), wall_s=0.0)
        assert [r["index"] for r in sink.records] == list(range(5))


class TestAmbientState:
    def test_trace_scope_binds_and_restores(self):
        assert current_trace() is None
        ctx = TraceContext.new()
        with trace_scope(ctx):
            assert current_trace() is ctx
        assert current_trace() is None

    def test_tracing_installs_process_tracer(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert current_tracer() is None
        with tracing(str(path)) as tracer:
            assert current_tracer() is tracer
            assert tracer.path == str(path)
            tracer.emit_span("demo", TraceContext.new(), wall_s=0.1)
        assert current_tracer() is None
        assert path.exists()

    def test_recorder_spans_pick_up_ambient_trace(self):
        ctx = TraceContext.new()
        with recording() as rec:
            with trace_scope(ctx):
                with span("traced.step"):
                    pass
            with span("untraced.step"):
                pass
        by_name = {e.name: e for e in rec.events}
        traced = by_name["traced.step"]
        assert traced.trace_id == ctx.trace_id
        assert traced.parent_id == ctx.span_id
        record = traced.to_record()
        assert record["trace_id"] == ctx.trace_id
        untraced = by_name["untraced.step"]
        assert untraced.trace_id is None
        assert "trace_id" not in untraced.to_record()
