"""Unit tests for the repro.obs recorder core."""

import threading

import pytest

from repro.obs import (
    MemorySink,
    Recorder,
    current_recorder,
    recording,
    span,
    summary,
    traced,
)
from repro.obs.recorder import _NOOP_SPAN


class TestNoopPath:
    def test_no_ambient_recorder_by_default(self):
        assert current_recorder() is None

    def test_span_returns_shared_noop(self):
        assert span("anything") is _NOOP_SPAN
        assert span("other", key=1) is _NOOP_SPAN

    def test_noop_span_accepts_all_operations(self):
        with span("noop.block") as sp:
            assert not sp.enabled
            sp.note(key="value")
            sp.sample("series", 1.0)
            sp.sample("series", [1.0, 2.0])

    def test_noop_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with span("noop.err"):
                raise RuntimeError("boom")

    def test_traced_calls_through(self):
        @traced
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_summary_without_recorder_is_empty(self):
        stats = summary()
        assert len(stats) == 0
        assert not stats.covers("anything")


class TestRecording:
    def test_recording_installs_and_removes_recorder(self):
        with recording() as rec:
            assert current_recorder() is rec
        assert current_recorder() is None

    def test_span_collects_event(self):
        with recording() as rec:
            with span("unit.block", rows=3) as sp:
                assert sp.enabled
                sp.note(extra="x")
                sp.sample("vals", [1.0, 2.0])
                sp.sample("vals", 3.0)
        (event,) = rec.events
        assert event.name == "unit.block"
        assert event.wall_s >= 0 and event.cpu_s >= 0
        assert event.meta["rows"] == 3 and event.meta["extra"] == "x"
        assert event.samples["vals"] == (1.0, 2.0, 3.0)
        assert event.error is None

    def test_span_records_error_and_reraises(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with span("unit.err"):
                    raise ValueError("nope")
        assert rec.events[0].error == "ValueError"

    def test_nesting_depth(self):
        with recording() as rec:
            with span("outer"):
                with span("inner"):
                    pass
        by_name = {e.name: e for e in rec.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # inner closes first, so it gets the lower index
        assert by_name["inner"].index < by_name["outer"].index

    def test_counters_accumulate(self):
        with recording() as rec:
            rec.counter("unit.count")
            rec.counter("unit.count", 4)
            rec.gauge("unit.gauge", 0.5)
        assert rec.counters["unit.count"] == 5
        assert rec.gauges[-1].name == "unit.gauge"
        assert rec.gauges[-1].value == 0.5

    def test_spans_prefix_filter(self):
        with recording() as rec:
            with span("a.one"):
                pass
            with span("b.two"):
                pass
        assert [e.name for e in rec.spans(prefix="a")] == ["a.one"]
        assert len(rec.spans()) == 2

    def test_traced_decorator_records(self):
        @traced(name="unit.traced_fn")
        def work(x):
            return x * 2

        with recording() as rec:
            assert work(21) == 42
        assert rec.events[0].name == "unit.traced_fn"

    def test_traced_default_name_strips_repro_prefix(self):
        from repro.batch.ensemble import characterize_ensemble

        assert (
            characterize_ensemble.__traced_span__
            == "batch.characterize_ensemble"
        )

    def test_memory_sink_receives_records(self):
        sink = MemorySink()
        with recording(sinks=[sink]) as rec:
            with span("unit.sunk"):
                pass
            rec.counter("unit.c", 2)
        types = [r["type"] for r in sink.records]
        assert "span" in types and "counter_total" in types

    def test_recorder_close_is_idempotent(self):
        rec = Recorder(sinks=[MemorySink()])
        rec.close()
        rec.close()

    def test_recording_isolated_per_thread(self):
        seen = {}

        def worker():
            seen["inner"] = current_recorder()

        with recording():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # a fresh thread starts from the default context: no recorder
        assert seen["inner"] is None
