"""JSONL trace round-trip: profile -o -> trace convert -> Chrome JSON."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.io import save_etc_csv
from repro.core.environment import ETCMatrix
from repro.exceptions import MatrixValueError
from repro.obs import convert_trace_jsonl, recording, span


@pytest.fixture
def etc_csv(tmp_path) -> str:
    etc = ETCMatrix(
        np.array([[4.0, 2.0], [1.0, 3.0], [2.0, 2.0]]),
        task_names=("t0", "t1", "t2"),
        machine_names=("m0", "m1"),
    )
    path = tmp_path / "env.csv"
    save_etc_csv(etc, path)
    return str(path)


class TestProfileToChromeTrace:
    def test_cli_roundtrip(self, tmp_path, etc_csv, capsys):
        jsonl = tmp_path / "trace.jsonl"
        out = tmp_path / "trace.json"
        assert main(["profile", etc_csv, "-o", str(jsonl)]) == 0
        assert main(["trace", "convert", str(jsonl), "-o", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "trace event(s)" in stdout

        doc = json.loads(out.read_text(encoding="utf-8"))
        events = doc["traceEvents"]
        assert events, "profile run produced no trace events"
        for event in events:
            assert event["ph"] in ("X", "C", "M")
            if event["ph"] == "M":
                continue  # process/thread-name metadata has no ts
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0

        # Single-process run: one named lane.
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {
            "process_name", "thread_name",
        }
        # The profile pipeline's spans survive the round trip ...
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert "measures.characterize" in span_names
        assert any(n.startswith("sinkhorn") for n in span_names)
        # ... and so do the counter_total records flushed at close.
        counter_names = {
            e["name"] for e in events if e.get("cat") == "counter_total"
        }
        assert "scheduling.decisions" in counter_names

    def test_convert_reports_malformed_line(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        jsonl.write_text(
            '{"type": "span", "name": "ok", "start": 0.0, "wall_s": 0.1,'
            ' "cpu_s": 0.1, "depth": 0, "meta": {}, "samples": {}}\n'
            "{broken\n",
            encoding="utf-8",
        )
        out = tmp_path / "trace.json"
        assert main(["trace", "convert", str(jsonl), "-o", str(out)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and ":2:" in err

    def test_convert_missing_input_exits_2(self, tmp_path, capsys):
        assert main([
            "trace", "convert", str(tmp_path / "nope.jsonl"),
            "-o", str(tmp_path / "out.json"),
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestExceptionPropagationPath:
    def test_sink_flushed_and_closed_on_error(self, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        with pytest.raises(MatrixValueError):
            with recording(trace_path=jsonl) as rec:
                with span("roundtrip.outer"):
                    rec.counter("roundtrip.count", 2)
                    raise MatrixValueError("injected failure")

        # Every line parses: the JSONL sink was flushed and closed even
        # though the block exited by raising.
        records = [
            json.loads(line)
            for line in jsonl.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        # The error span was recorded with its exception class ...
        outer = next(
            r for r in by_type["span"] if r["name"] == "roundtrip.outer"
        )
        assert outer["error"] == "MatrixValueError"
        # ... and the counter total was still flushed at close.
        totals = {r["name"]: r["value"] for r in by_type["counter_total"]}
        assert totals["roundtrip.count"] == 2

        # The converter accepts the error-path trace unchanged (the two
        # extra events are the lane's process/thread-name metadata).
        out = tmp_path / "trace.json"
        count = convert_trace_jsonl(jsonl, out)
        assert count == len(records) + 2
        doc = json.loads(out.read_text(encoding="utf-8"))
        err_event = next(
            e for e in doc["traceEvents"] if e["name"] == "roundtrip.outer"
        )
        assert err_event["args"]["error"] == "MatrixValueError"
