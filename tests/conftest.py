"""Shared fixtures: the paper's example matrices and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

# ---------------------------------------------------------------------------
# Paper example matrices
# ---------------------------------------------------------------------------


@pytest.fixture
def fig1_ecs() -> np.ndarray:
    """Fig. 1's 4×3 ECS example; machine 1's performance is 17."""
    return np.array(
        [
            [4.0, 8.0, 5.0],
            [5.0, 9.0, 4.0],
            [6.0, 5.0, 2.0],
            [2.0, 1.0, 3.0],
        ]
    )


@pytest.fixture
def fig2_performances() -> dict[str, np.ndarray]:
    """Fig. 2's four machine-performance environments."""
    return {
        "env1": np.array([1.0, 2.0, 4.0, 8.0, 16.0]),
        "env2": np.array([1.0, 1.0, 1.0, 1.0, 16.0]),
        "env3": np.array([1.0, 16.0, 16.0, 16.0, 16.0]),
        "env4": np.array([1.0, 4.0, 4.0, 4.0, 16.0]),
    }


@pytest.fixture
def fig3a_ecs() -> np.ndarray:
    """Fig. 3(a): machine-homogeneous, zero affinity (identical columns)."""
    return np.array(
        [
            [4.0, 4.0, 4.0],
            [5.0, 5.0, 5.0],
            [6.0, 6.0, 6.0],
        ]
    )


@pytest.fixture
def fig3b_ecs() -> np.ndarray:
    """Fig. 3(b): machine-homogeneous but with task-machine affinity."""
    return np.array(
        [
            [10.0, 1.0, 4.0],
            [1.0, 10.0, 4.0],
            [4.0, 4.0, 7.0],
        ]
    )


@pytest.fixture
def fig4_matrices() -> dict[str, np.ndarray]:
    """Reconstructed Fig. 4 extreme 2×2 matrices.

    The source scan lost the entries; these satisfy every property the
    text states: A–D have TMA = 1 (a task runnable on one machine
    only), E–H have TMA = 0 (equal performance ratios); C, D, G, H have
    high MPH; A, C, E, G have high TDH; and A, B, D converge (in the
    eq.-9 limit) to the standard form of C.
    """
    return {
        "A": np.array([[10.0, 0.0], [9.0, 1.0]]),   # low MPH, high TDH
        "B": np.array([[1.0, 0.0], [10.0, 100.0]]),  # low MPH, low TDH
        "C": np.array([[1.0, 0.0], [0.0, 1.0]]),     # high MPH, high TDH
        "D": np.array([[1.0, 0.0], [9.0, 10.0]]),    # high MPH, low TDH
        "E": np.array([[1.0, 10.0], [1.0, 10.0]]),   # low MPH, high TDH
        "F": np.array([[0.1, 1.0], [1.0, 10.0]]),    # low MPH, low TDH
        "G": np.array([[1.0, 1.0], [1.0, 1.0]]),     # high MPH, high TDH
        "H": np.array([[0.1, 0.1], [1.0, 1.0]]),     # high MPH, low TDH
    }


@pytest.fixture
def eq10_matrix() -> np.ndarray:
    """Section VI's eq. 10: decomposable, no standard form exists.

    Reconstructed from the text's description: four nonzero entries,
    the second row and third column sum to 2 while the other lines sum
    to 1, and moving the last column to the front exposes the eq.-11
    block form with a 1×1 A11 and 2×2 A22.
    """
    return np.array(
        [
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [0.0, 1.0, 0.0],
        ]
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Strictly positive, well-conditioned matrix entries.  The range is
#: capped at 1e±2 because Sinkhorn's linear convergence rate is the
#: squared second singular value of the standard form: a 2×2 matrix with
#: cross ratio 1e12 needs millions of iterations to reach 1e-8, which is
#: mathematically fine but pointless to exercise per-example.
positive_entries = st.floats(
    min_value=1e-2, max_value=1e2, allow_nan=False, allow_infinity=False
)


def ecs_matrices(
    min_side: int = 1, max_side: int = 7, positive_only: bool = True
):
    """Strategy producing valid ECS arrays (optionally with zeros)."""
    shapes = st.tuples(
        st.integers(min_side, max_side), st.integers(min_side, max_side)
    )
    if positive_only:
        return shapes.flatmap(
            lambda shape: npst.arrays(
                dtype=np.float64, shape=shape, elements=positive_entries
            )
        )

    def with_zeros(shape):
        return npst.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.one_of(st.just(0.0), positive_entries),
        ).filter(
            lambda arr: (arr > 0).any(axis=1).all()
            and (arr > 0).any(axis=0).all()
        )

    return shapes.flatmap(with_zeros)


#: Strategy for strictly positive 1-D performance vectors.
performance_vectors = st.integers(1, 12).flatmap(
    lambda n: npst.arrays(
        dtype=np.float64, shape=(n,), elements=positive_entries
    )
)
