"""Tests for the optional process-pool helper."""

import time

import numpy as np
import pytest

from repro import MatrixValueError
from repro._parallel import WorkerFailure, parallel_map, resolve_n_jobs


def _square(x):  # module-level: picklable
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x * x


def _sleep_then_square(args):
    x, seconds = args
    time.sleep(seconds)
    return x * x


class TestResolveNJobs:
    def test_defaults(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_invalid(self):
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(0)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(-2)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(2.5)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(True)


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_jobs=2) == parallel_map(
            _square, items
        )

    def test_order_preserved(self):
        items = list(range(30))[::-1]
        assert parallel_map(_square, items, n_jobs=3) == [
            x * x for x in items
        ]

    def test_empty(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], n_jobs=8) == [49]


class TestWorkerFailure:
    def test_repr_is_readable(self):
        failure = WorkerFailure(index=3, error=ValueError("boom"))
        text = repr(failure)
        assert "3" in text and "boom" in text
        assert not failure.timed_out

    def test_exception_propagates_by_default(self):
        with pytest.raises(ValueError, match="boom at 3"):
            parallel_map(_explode_on_three, [1, 2, 3, 4])

    def test_return_failures_serial(self):
        results = parallel_map(
            _explode_on_three, [1, 2, 3, 4], return_failures=True
        )
        assert results[0] == 1 and results[1] == 4 and results[3] == 16
        assert isinstance(results[2], WorkerFailure)
        assert results[2].index == 2
        assert "boom at 3" in str(results[2].error)

    def test_return_failures_pooled(self):
        results = parallel_map(
            _explode_on_three, [1, 2, 3, 4], n_jobs=2, return_failures=True
        )
        healthy = [r for r in results if not isinstance(r, WorkerFailure)]
        failures = [r for r in results if isinstance(r, WorkerFailure)]
        assert healthy == [1, 4, 16]
        assert len(failures) == 1 and failures[0].index == 2


class TestTimeouts:
    def test_timeout_validation(self):
        with pytest.raises(MatrixValueError):
            parallel_map(_square, [1], timeout_s=0.0)
        with pytest.raises(MatrixValueError):
            parallel_map(_square, [1], timeout_s=-1.0)
        with pytest.raises(MatrixValueError):
            # A timeout cannot preempt an in-process worker.
            parallel_map(_square, [1, 2], n_jobs=1, timeout_s=1.0)

    @pytest.mark.slow
    def test_straggler_times_out_others_complete(self):
        items = [(1, 0.0), (2, 5.0), (3, 0.0)]
        start = time.monotonic()
        results = parallel_map(
            _sleep_then_square,
            items,
            n_jobs=2,
            timeout_s=0.75,
            return_failures=True,
        )
        assert time.monotonic() - start < 5.0
        assert results[0] == 1 and results[2] == 9
        assert isinstance(results[1], WorkerFailure)
        assert results[1].timed_out
        assert isinstance(results[1].error, TimeoutError)
        assert "timeout_s=0.75" in str(results[1].error)

    @pytest.mark.slow
    def test_timeout_without_return_failures_raises(self):
        with pytest.raises(TimeoutError):
            parallel_map(
                _sleep_then_square,
                [(1, 5.0), (2, 0.0)],
                n_jobs=2,
                timeout_s=0.5,
            )


class TestStudyParallelism:
    def test_sensitivity_identical_across_jobs(self):
        from repro.analysis import sensitivity_study

        matrix = np.random.default_rng(0).uniform(1, 5, (6, 4))
        serial = sensitivity_study(matrix, trials=4, seed=1)
        pooled = sensitivity_study(matrix, trials=4, seed=1, n_jobs=2)
        np.testing.assert_array_equal(serial.mean_shift, pooled.mean_shift)
        np.testing.assert_array_equal(serial.max_shift, pooled.max_shift)

    def test_correlations_identical_across_jobs(self):
        from repro.analysis import measure_correlations

        serial = measure_correlations(samples=30, seed=2)
        pooled = measure_correlations(samples=30, seed=2, n_jobs=2)
        np.testing.assert_allclose(serial, pooled)
