"""Tests for the optional process-pool helper."""

import numpy as np
import pytest

from repro import MatrixValueError
from repro._parallel import parallel_map, resolve_n_jobs


def _square(x):  # module-level: picklable
    return x * x


class TestResolveNJobs:
    def test_defaults(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_invalid(self):
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(0)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(-2)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(2.5)
        with pytest.raises(MatrixValueError):
            resolve_n_jobs(True)


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_jobs=2) == parallel_map(
            _square, items
        )

    def test_order_preserved(self):
        items = list(range(30))[::-1]
        assert parallel_map(_square, items, n_jobs=3) == [
            x * x for x in items
        ]

    def test_empty(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], n_jobs=8) == [49]


class TestStudyParallelism:
    def test_sensitivity_identical_across_jobs(self):
        from repro.analysis import sensitivity_study

        matrix = np.random.default_rng(0).uniform(1, 5, (6, 4))
        serial = sensitivity_study(matrix, trials=4, seed=1)
        pooled = sensitivity_study(matrix, trials=4, seed=1, n_jobs=2)
        np.testing.assert_array_equal(serial.mean_shift, pooled.mean_shift)
        np.testing.assert_array_equal(serial.max_shift, pooled.max_shift)

    def test_correlations_identical_across_jobs(self):
        from repro.analysis import measure_correlations

        serial = measure_correlations(samples=30, seed=2)
        pooled = measure_correlations(samples=30, seed=2, n_jobs=2)
        np.testing.assert_allclose(serial, pooled)
