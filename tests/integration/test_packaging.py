"""Packaging-level checks: entry points, module execution, exports."""

import subprocess
import sys

import pytest

import repro


class TestModuleExecution:
    def test_python_dash_m(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert repro.__version__ in result.stdout

    def test_dataset_subcommand_end_to_end(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "dataset", "cint2006rate"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "MPH = 0.8200" in result.stdout


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for pkg in (
            "repro.core",
            "repro.measures",
            "repro.normalize",
            "repro.structure",
            "repro.generate",
            "repro.spec",
            "repro.scheduling",
            "repro.analysis",
        ):
            module = importlib.import_module(pkg)
            for name in module.__all__:
                assert hasattr(module, name), f"{pkg}.{name}"

    def test_version_matches_metadata(self):
        import importlib.metadata

        try:
            installed = importlib.metadata.version("repro")
        except importlib.metadata.PackageNotFoundError:
            pytest.skip("package metadata not installed")
        assert installed == repro.__version__

    def test_py_typed_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
