"""Cross-module integration tests: full user workflows."""

import numpy as np
import pytest

from repro import (
    ETCMatrix,
    characterize,
    load_environment_json,
    load_etc_csv,
    save_environment_json,
    save_etc_csv,
)
from repro.analysis import whatif_drop_machines
from repro.generate import from_targets, range_based
from repro.scheduling import compare_heuristics, expand_workload, run_heuristic
from repro.spec import cint2006rate


class TestMeasurePipeline:
    def test_generate_save_load_measure(self, tmp_path):
        """The full round trip: generate -> CSV -> load -> measures."""
        env = from_targets(8, 5, (0.7, 0.85, 0.15), jitter=0.2, seed=0)
        path = tmp_path / "env.csv"
        save_etc_csv(env.to_etc(), path)
        profile = characterize(load_etc_csv(path))
        assert profile.mph == pytest.approx(0.7, abs=1e-9)
        assert profile.tdh == pytest.approx(0.85, abs=1e-9)
        assert profile.tma == pytest.approx(0.15, abs=1e-3)

    def test_json_round_trip_preserves_profile(self, tmp_path):
        env = cint2006rate().with_weights(task_weights=np.arange(1.0, 13.0))
        path = tmp_path / "env.json"
        save_environment_json(env, path)
        reloaded = load_environment_json(path)
        before = characterize(env)
        after = characterize(reloaded)
        assert after.mph == pytest.approx(before.mph)
        assert after.tma == pytest.approx(before.tma, abs=1e-9)

    def test_etc_and_ecs_paths_agree(self):
        etc = range_based(10, 4, seed=1)
        via_etc = characterize(etc)
        via_ecs = characterize(etc.to_ecs())
        assert via_etc.mph == pytest.approx(via_ecs.mph)
        assert via_etc.tdh == pytest.approx(via_ecs.tdh)
        assert via_etc.tma == pytest.approx(via_ecs.tma, abs=1e-9)


class TestWhatIfPipeline:
    def test_whatif_consistent_with_direct_measurement(self):
        env = cint2006rate()
        entry = whatif_drop_machines(env, machines=["m2"])[0]
        direct = characterize(env.drop_machines(["m2"]))
        assert entry.after.mph == pytest.approx(direct.mph)
        assert entry.after.tma == pytest.approx(direct.tma, abs=1e-9)


class TestSchedulingPipeline:
    def test_measure_then_schedule(self):
        """The paper's intro use case: characterize, then pick a mapper."""
        env = from_targets(8, 4, (0.4, 0.7, 0.1), jitter=0.2, seed=2)
        profile = characterize(env)
        assert profile.mph == pytest.approx(0.4, abs=1e-9)
        comparison = compare_heuristics(env.to_etc(), total=40, seed=3)
        # Low affinity + heterogeneous machines: MET must trail the
        # batch heuristics.
        assert comparison.makespans["met"] > comparison.makespans["min_min"]

    def test_workload_weights_drive_mix(self):
        env = ETCMatrix(
            [[1.0, 3.0], [4.0, 2.0]],
            task_weights=[9.0, 1.0],
        )
        workload = expand_workload(env, total=500, seed=4)
        share = (workload.type_of == 0).mean()
        assert share == pytest.approx(0.9, abs=0.05)
        mapping = run_heuristic("min_min", workload)
        assert mapping.makespan > 0

    def test_spec_dataset_schedules(self):
        comparison = compare_heuristics(cint2006rate(), total=60, seed=5)
        assert comparison.best in comparison.makespans
        assert min(comparison.makespans.values()) > 0
