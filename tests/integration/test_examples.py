"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
