"""Tests for generalized margin scaling (scale_to_margins)."""

import numpy as np
import pytest

from repro import ConvergenceError, MatrixValueError
from repro.normalize import scale_to_margins


class TestScaleToMargins:
    def test_prescribed_margins_hit(self):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(0.5, 2.0, size=(3, 4))
        rows = np.array([1.0, 2.0, 3.0])
        cols = np.array([2.0, 1.0, 2.0, 1.0])
        result = scale_to_margins(matrix, rows, cols)
        np.testing.assert_allclose(result.matrix.sum(axis=1), rows, atol=1e-9)
        np.testing.assert_allclose(result.matrix.sum(axis=0), cols, atol=1e-9)

    def test_tma_invariant_under_margin_scaling(self):
        """The property the target-driven generator relies on."""
        from repro.measures import tma

        rng = np.random.default_rng(1)
        matrix = rng.uniform(0.5, 2.0, size=(5, 4))
        before = tma(matrix)
        scaled = scale_to_margins(
            matrix, [1.0, 2.0, 4.0, 8.0, 5.0], [3.0, 7.0, 4.0, 6.0]
        ).matrix
        assert tma(scaled) == pytest.approx(before, abs=1e-7)

    def test_scaling_diagonals_recover(self):
        rng = np.random.default_rng(2)
        matrix = rng.uniform(0.5, 2.0, size=(4, 4))
        result = scale_to_margins(matrix, np.arange(1.0, 5.0), np.arange(1.0, 5.0))
        rebuilt = result.row_scale[:, None] * matrix * result.col_scale[None, :]
        np.testing.assert_allclose(rebuilt, result.matrix, rtol=1e-12)

    def test_inconsistent_totals_rejected(self):
        with pytest.raises(MatrixValueError):
            scale_to_margins(np.ones((2, 2)), [1.0, 1.0], [1.0, 2.0])

    def test_wrong_lengths_rejected(self):
        with pytest.raises(MatrixValueError):
            scale_to_margins(np.ones((2, 2)), [1.0], [1.0, 1.0])

    def test_nonpositive_margins_rejected(self):
        with pytest.raises(MatrixValueError):
            scale_to_margins(np.ones((2, 2)), [0.0, 2.0], [1.0, 1.0])

    def test_blocked_pattern_raises_convergence(self):
        """A zero pattern that cannot meet wildly uneven margins."""
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        # Diagonal pattern forces row sums == col sums exactly, so
        # asking for different splits cannot converge.
        with pytest.raises(ConvergenceError):
            scale_to_margins(
                matrix, [3.0, 1.0], [1.0, 3.0], max_iterations=100
            )

    def test_uniform_margins_match_sinkhorn(self):
        from repro.normalize import sinkhorn_knopp

        rng = np.random.default_rng(3)
        matrix = rng.uniform(0.5, 2.0, size=(4, 6))
        a = scale_to_margins(
            matrix, np.full(4, 1.5), np.full(6, 1.0)
        ).matrix
        b = sinkhorn_knopp(matrix, row_target=1.5).matrix
        np.testing.assert_allclose(a, b, atol=1e-7)
