"""Tests for the Sinkhorn convergence diagnostics."""

import math

import numpy as np
import pytest
import scipy.linalg

from repro import MatrixValueError
from repro.normalize import (
    convergence_diagnostics,
    predict_iterations,
    sinkhorn_knopp,
    standardize,
)


class TestConvergenceDiagnostics:
    def test_rate_matches_theory(self):
        """Empirical rate ≈ σ₂² of the standard form (Knight 2008)."""
        matrix = np.array([[9.0, 1.0, 1.0], [1.0, 7.0, 2.0], [2.0, 1.0, 5.0]])
        result = sinkhorn_knopp(matrix, tol=1e-13)
        diag = convergence_diagnostics(result)
        sigma2 = scipy.linalg.svdvals(standardize(matrix).matrix)[1]
        assert diag.rate == pytest.approx(sigma2**2, rel=0.1)

    def test_higher_affinity_slower(self):
        # Both asymmetric (symmetric matrices converge in one pass).
        mild = sinkhorn_knopp(np.array([[3.0, 2.0], [1.0, 3.0]]),
                              tol=1e-13)
        sharp = sinkhorn_knopp(np.array([[50.0, 1.0], [2.0, 50.0]]),
                               tol=1e-13)
        assert convergence_diagnostics(sharp).rate > convergence_diagnostics(
            mild
        ).rate

    def test_instant_convergence_nan_rate(self):
        # Symmetric matrices standardize in one pass: no tail to fit.
        result = sinkhorn_knopp(np.array([[5.0, 1.0], [1.0, 5.0]]))
        diag = convergence_diagnostics(result)
        assert math.isnan(diag.rate)
        assert diag.half_life == math.inf

    def test_residual_endpoints_recorded(self):
        matrix = np.array([[5.0, 1.0], [2.0, 5.0]])
        result = sinkhorn_knopp(matrix, tol=1e-10)
        diag = convergence_diagnostics(result)
        assert diag.initial_residual == result.residual_history[0]
        assert diag.final_residual == result.residual
        assert diag.iterations == result.iterations

    def test_half_life_consistent_with_rate(self):
        result = sinkhorn_knopp(np.array([[5.0, 1.0], [2.0, 5.0]]),
                                tol=1e-12)
        diag = convergence_diagnostics(result)
        assert 0.5**1.0 == pytest.approx(
            diag.rate ** diag.half_life, rel=1e-9
        )


class TestPredictIterations:
    def test_exact_power(self):
        assert predict_iterations(1.0, 0.1, 1e-8) == 8

    def test_already_converged(self):
        assert predict_iterations(1e-9, 0.5, 1e-8) == 0

    def test_matches_observed_count(self):
        """The asymptotic prediction lands near the observed count for
        a tight tolerance (the early transient converges faster than
        the asymptotic rate, so loose tolerances are overpredicted)."""
        matrix = np.array([[9.0, 1.0, 1.0], [1.0, 7.0, 2.0], [2.0, 1.0, 5.0]])
        tight = sinkhorn_knopp(matrix, tol=1e-13)
        diag = convergence_diagnostics(tight)
        predicted = predict_iterations(
            diag.initial_residual, diag.rate, 1e-13
        )
        assert abs(predicted - tight.iterations) <= 0.25 * tight.iterations

    def test_invalid_rate(self):
        with pytest.raises(MatrixValueError):
            predict_iterations(1.0, 1.0, 1e-8)
        with pytest.raises(MatrixValueError):
            predict_iterations(1.0, -0.2, 1e-8)

    def test_invalid_residuals(self):
        with pytest.raises(MatrixValueError):
            predict_iterations(0.0, 0.5, 1e-8)
        with pytest.raises(MatrixValueError):
            predict_iterations(1.0, 0.5, 0.0)
