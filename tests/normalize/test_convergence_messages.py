"""Unified non-convergence messages across scalar and batched kernels.

Every ``require_convergence=True`` failure — scalar Sinkhorn, margin
scaling, batched Sinkhorn — must raise the same message shape with the
same Section-VI continuation hint, so operators always learn about
:func:`repro.structure.is_normalizable` no matter which kernel tripped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import sinkhorn_knopp_batched
from repro.exceptions import ConvergenceError
from repro.normalize import sinkhorn_knopp
from repro.normalize.sinkhorn import (
    CONVERGENCE_HINT,
    convergence_message,
    scale_to_margins,
)

#: Decomposable (eq. 10) pattern: Sinkhorn can never converge exactly.
EQ10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)


class TestConvergenceMessage:
    def test_shape_minimal(self):
        msg = convergence_message("row/column normalization", tol=1e-8,
                                  iterations=50)
        assert msg == (
            "row/column normalization did not reach tol=1e-08 within "
            f"50 iterations; {CONVERGENCE_HINT}"
        )

    def test_shape_with_details(self):
        msg = convergence_message(
            "2 of 4 slices",
            tol=1e-8,
            iterations=100,
            residual=3.25e-4,
            failing=[1, 3],
            deadline_s=0.5,
        )
        assert "residual=3.250e-04" in msg
        assert "first failing slices: [1, 3]" in msg
        assert "deadline_s=0.5 expired" in msg
        assert msg.endswith(CONVERGENCE_HINT)


class TestScalarAndBatchedAgree:
    def test_scalar_sinkhorn_hint(self):
        with pytest.raises(ConvergenceError) as excinfo:
            sinkhorn_knopp(EQ10, max_iterations=50)
        message = str(excinfo.value)
        assert message.startswith(
            "row/column normalization did not reach tol="
        )
        assert "within 50 iterations" in message
        assert CONVERGENCE_HINT in message

    def test_scale_to_margins_hint(self):
        with pytest.raises(ConvergenceError) as excinfo:
            scale_to_margins(EQ10, np.ones(3), np.ones(3), max_iterations=50)
        message = str(excinfo.value)
        assert message.startswith("margin scaling did not reach tol=")
        assert CONVERGENCE_HINT in message

    def test_batched_hint_names_failing_slices(self):
        stack = np.stack([np.ones((3, 3)), EQ10])
        with pytest.raises(ConvergenceError) as excinfo:
            sinkhorn_knopp_batched(stack, max_iterations=50)
        message = str(excinfo.value)
        assert "1 of 2 slices did not reach tol=" in message
        assert "first failing slices: [1]" in message
        assert CONVERGENCE_HINT in message

    def test_all_variants_share_the_continuation(self):
        messages = []
        with pytest.raises(ConvergenceError) as scalar:
            sinkhorn_knopp(EQ10, max_iterations=50)
        messages.append(str(scalar.value))
        with pytest.raises(ConvergenceError) as batched:
            sinkhorn_knopp_batched(EQ10[None], max_iterations=50)
        messages.append(str(batched.value))
        suffixes = {m.rsplit("; ", 1)[-1] for m in messages}
        assert suffixes == {CONVERGENCE_HINT}
