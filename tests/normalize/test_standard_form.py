"""Tests for the standard ECS form (Theorems 1 and 2)."""

import math

import numpy as np
import pytest
import scipy.linalg

from repro import ECSMatrix, ETCMatrix, MatrixValueError, NotNormalizableError
from repro.normalize import (
    column_normalize,
    is_standard,
    standard_targets,
    standardize,
)


class TestTargets:
    @pytest.mark.parametrize(
        "t, m", [(2, 2), (12, 5), (17, 5), (3, 9), (1, 4)]
    )
    def test_theorem2_consistency(self, t, m):
        row, col = standard_targets(t, m)
        assert row == pytest.approx(math.sqrt(m / t))
        assert col == pytest.approx(math.sqrt(t / m))
        # Grand totals agree: T*row == M*col == sqrt(T*M).
        assert t * row == pytest.approx(m * col)
        assert t * row == pytest.approx(math.sqrt(t * m))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            standard_targets(0, 3)


class TestStandardize:
    def test_row_and_column_sums(self):
        rng = np.random.default_rng(0)
        ecs = rng.uniform(0.1, 10.0, size=(12, 5))
        result = standardize(ecs)
        row, col = standard_targets(12, 5)
        np.testing.assert_allclose(result.matrix.sum(axis=1), row, atol=1e-8)
        np.testing.assert_allclose(result.matrix.sum(axis=0), col, atol=1e-8)

    def test_theorem2_sigma1_is_one(self):
        rng = np.random.default_rng(1)
        for shape in [(4, 4), (7, 3), (3, 9)]:
            ecs = rng.uniform(0.1, 10.0, size=shape)
            values = scipy.linalg.svdvals(standardize(ecs).matrix)
            assert values[0] == pytest.approx(1.0, abs=1e-7), shape

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        first = standardize(rng.uniform(0.5, 2.0, size=(5, 4)))
        second = standardize(first.matrix)
        np.testing.assert_allclose(second.matrix, first.matrix, atol=1e-8)
        assert second.iterations == 0

    def test_diagonal_scaling_same_standard_form(self):
        """Theorem 1 uniqueness: D1 A D2 and A standardize identically."""
        rng = np.random.default_rng(3)
        ecs = rng.uniform(0.5, 2.0, size=(6, 4))
        scaled = (
            rng.uniform(0.1, 10, size=(6, 1))
            * ecs
            * rng.uniform(0.1, 10, size=(1, 4))
        )
        np.testing.assert_allclose(
            standardize(scaled).matrix, standardize(ecs).matrix, atol=1e-7
        )

    def test_accepts_wrappers_and_weights(self):
        ecs = ECSMatrix([[1.0, 2.0], [3.0, 4.0]], task_weights=[1.0, 7.0])
        result = standardize(ecs)
        # Weights are a row scaling: same standard form as unweighted.
        np.testing.assert_allclose(
            result.matrix,
            standardize([[1.0, 2.0], [3.0, 4.0]]).matrix,
            atol=1e-8,
        )

    def test_accepts_etc(self):
        etc = ETCMatrix([[1.0, 2.0], [2.0, 1.0]])
        result = standardize(etc)
        assert result.converged

    def test_zero_preservation(self):
        ecs = np.array([[1.0, 0.0, 2.0], [2.0, 1.0, 1.0], [0.0, 3.0, 1.0]])
        result = standardize(ecs)
        assert (result.matrix == 0).sum() == 2
        np.testing.assert_array_equal(result.matrix == 0, ecs == 0)
        assert result.zeroed_entries == ()


class TestZeroHandling:
    def test_strict_raises_for_eq10(self, eq10_matrix):
        with pytest.raises(NotNormalizableError):
            standardize(eq10_matrix, zeros="strict")

    def test_strict_raises_fast(self, eq10_matrix):
        """The Menon pre-check fires without burning 10^4 iterations."""
        import time

        start = time.perf_counter()
        with pytest.raises(NotNormalizableError):
            standardize(eq10_matrix)
        assert time.perf_counter() - start < 1.0

    def test_limit_mode_eq10(self, eq10_matrix):
        result = standardize(eq10_matrix, zeros="limit")
        assert result.zeroed_entries == ((1, 2),)
        row, col = standard_targets(3, 3)
        np.testing.assert_allclose(result.matrix.sum(axis=1), row, atol=1e-8)

    def test_limit_mode_fig4(self, fig4_matrices):
        identity = standardize(fig4_matrices["C"]).matrix
        for key in "ABD":
            result = standardize(fig4_matrices[key], zeros="limit")
            np.testing.assert_allclose(result.matrix, identity, atol=1e-8)
            assert result.zeroed_entries == ((1, 0),)

    def test_limit_mode_noop_when_normalizable(self):
        result = standardize(np.diag([2.0, 3.0]), zeros="limit")
        assert result.zeroed_entries == ()

    def test_infeasible_margins_raise_even_in_limit_mode(self):
        # Identity except one row supported only where another row's
        # entire demand must go -> flow infeasible patterns need a zero
        # row/col, which validation already forbids; instead exercise a
        # pattern with support that cannot meet equal margins *at all*:
        # two rows that only touch one shared column.
        pattern = np.array(
            [
                [1.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [1.0, 1.0, 1.0],
            ]
        )
        with pytest.raises(NotNormalizableError):
            standardize(pattern, zeros="limit")

    def test_invalid_zeros_value(self, fig1_ecs):
        with pytest.raises(MatrixValueError):
            standardize(fig1_ecs, zeros="maybe")


class TestColumnNormalize:
    def test_columns_sum_to_one(self, fig1_ecs):
        normalized = column_normalize(fig1_ecs)
        np.testing.assert_allclose(normalized.sum(axis=0), 1.0)

    def test_mph_of_result_is_one(self, fig1_ecs):
        from repro.measures import mph

        assert mph(column_normalize(fig1_ecs)) == pytest.approx(1.0)

    def test_rows_not_equalized(self, fig1_ecs):
        normalized = column_normalize(fig1_ecs)
        rows = normalized.sum(axis=1)
        assert rows.max() - rows.min() > 0.01


class TestIsStandard:
    def test_true_after_standardize(self, fig3b_ecs):
        assert is_standard(standardize(fig3b_ecs).matrix)

    def test_false_for_raw(self, fig3b_ecs):
        assert not is_standard(fig3b_ecs)
