"""Property-based tests for the normalization kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.normalize import (
    canonical_form,
    sinkhorn_knopp,
    standard_targets,
    standardize,
)
from tests.conftest import ecs_matrices


class TestSinkhornProperties:
    @given(ecs_matrices(min_side=2, max_side=6))
    @settings(max_examples=30, deadline=None)
    def test_positive_matrices_always_converge(self, ecs):
        result = sinkhorn_knopp(ecs)
        assert result.converged
        np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0, atol=1e-7)

    @given(ecs_matrices(min_side=2, max_side=6), st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_row_target_respected(self, ecs, target):
        result = sinkhorn_knopp(ecs, row_target=target)
        np.testing.assert_allclose(
            result.matrix.sum(axis=1), target, atol=1e-6
        )

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=30, deadline=None)
    def test_scaling_diagonals_exact(self, ecs):
        result = sinkhorn_knopp(ecs)
        rebuilt = result.row_scale[:, None] * ecs * result.col_scale[None, :]
        np.testing.assert_allclose(rebuilt, result.matrix, rtol=1e-10)

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=30, deadline=None)
    def test_positive_scales(self, ecs):
        result = sinkhorn_knopp(ecs)
        assert (result.row_scale > 0).all()
        assert (result.col_scale > 0).all()


class TestStandardizeProperties:
    @given(ecs_matrices(min_side=2, max_side=6))
    @settings(max_examples=30, deadline=None)
    def test_margins_and_sigma1(self, ecs):
        import scipy.linalg

        result = standardize(ecs)
        row, col = standard_targets(*ecs.shape)
        np.testing.assert_allclose(result.matrix.sum(axis=1), row, atol=1e-7)
        np.testing.assert_allclose(result.matrix.sum(axis=0), col, atol=1e-7)
        assert scipy.linalg.svdvals(result.matrix)[0] == pytest.approx(
            1.0, abs=1e-6
        )

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=20, deadline=None)
    def test_diagonal_scaling_invariance(self, ecs):
        rng = np.random.default_rng(0)
        scaled = (
            rng.uniform(0.5, 2.0, size=(ecs.shape[0], 1))
            * ecs
            * rng.uniform(0.5, 2.0, size=(1, ecs.shape[1]))
        )
        np.testing.assert_allclose(
            standardize(scaled).matrix, standardize(ecs).matrix, atol=1e-6
        )


class TestCanonicalProperties:
    @given(ecs_matrices(min_side=1, max_side=6, positive_only=False))
    @settings(max_examples=30, deadline=None)
    def test_orders_are_permutations(self, ecs):
        result = canonical_form(ecs)
        assert sorted(result.task_order) == list(range(ecs.shape[0]))
        assert sorted(result.machine_order) == list(range(ecs.shape[1]))

    @given(ecs_matrices(min_side=1, max_side=6, positive_only=False))
    @settings(max_examples=30, deadline=None)
    def test_sorted_vectors(self, ecs):
        result = canonical_form(ecs)
        assert (np.diff(result.machine_performance) >= -1e-12).all()
        assert (np.diff(result.task_difficulty) >= -1e-12).all()
