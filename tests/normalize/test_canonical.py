"""Tests for the canonical (sorted) ECS form."""

import numpy as np
import pytest

from repro import ECSMatrix
from repro.normalize import canonical_form


class TestCanonicalForm:
    def test_sorted_ascending(self, fig1_ecs):
        result = canonical_form(fig1_ecs)
        assert (np.diff(result.machine_performance) >= 0).all()
        assert (np.diff(result.task_difficulty) >= 0).all()

    def test_permutations_reproduce_matrix(self, fig1_ecs):
        result = canonical_form(fig1_ecs)
        np.testing.assert_array_equal(
            result.matrix,
            fig1_ecs[np.ix_(result.task_order, result.machine_order)],
        )

    def test_fig1_machine_order(self, fig1_ecs):
        # Performances 17, 23, 14 -> ascending order m3, m1, m2.
        result = canonical_form(fig1_ecs)
        np.testing.assert_array_equal(result.machine_order, [2, 0, 1])

    def test_measures_invariant_under_canonicalization(self, fig1_ecs):
        from repro.measures import mph, tdh, tma

        result = canonical_form(fig1_ecs)
        assert mph(result.matrix) == pytest.approx(mph(fig1_ecs))
        assert tdh(result.matrix) == pytest.approx(tdh(fig1_ecs))
        assert tma(result.matrix) == pytest.approx(tma(fig1_ecs), abs=1e-9)

    def test_stable_on_ties(self):
        result = canonical_form(np.ones((3, 3)))
        np.testing.assert_array_equal(result.task_order, [0, 1, 2])
        np.testing.assert_array_equal(result.machine_order, [0, 1, 2])

    def test_idempotent(self, fig1_ecs):
        once = canonical_form(fig1_ecs)
        twice = canonical_form(once.matrix)
        np.testing.assert_array_equal(twice.matrix, once.matrix)

    def test_weights_respected(self):
        ecs = ECSMatrix(
            [[1.0, 10.0], [1.0, 1.0]], machine_weights=[100.0, 1.0]
        )
        result = canonical_form(ecs)
        # Weighted performances: m1 = 200, m2 = 11 -> m2 first.
        np.testing.assert_array_equal(result.machine_order, [1, 0])

    def test_explicit_weights_override(self):
        ecs = ECSMatrix([[1.0, 10.0], [1.0, 1.0]])
        result = canonical_form(ecs, machine_weights=[100.0, 1.0])
        np.testing.assert_array_equal(result.machine_order, [1, 0])
