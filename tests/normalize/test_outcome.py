"""The unified ScalingOutcome result protocol and removed aliases."""

import numpy as np
import pytest

from repro import ScalingOutcome, sinkhorn_knopp, standardize
from repro.batch import sinkhorn_knopp_batched, standardize_batched

ENV = np.array([[1.0, 2.0], [2.0, 1.0]])
STACK = np.stack([ENV, ENV * 3.0])


class TestProtocolConformance:
    def test_scalar_results_conform(self):
        assert isinstance(sinkhorn_knopp(ENV, row_target=1.0), ScalingOutcome)
        assert isinstance(standardize(ENV), ScalingOutcome)

    def test_batched_results_conform(self):
        assert isinstance(
            sinkhorn_knopp_batched(STACK, row_target=1.0), ScalingOutcome
        )
        assert isinstance(standardize_batched(STACK), ScalingOutcome)

    def test_unrelated_object_does_not_conform(self):
        assert not isinstance(object(), ScalingOutcome)

    @pytest.mark.parametrize(
        "result",
        [
            sinkhorn_knopp(ENV, row_target=1.0),
            standardize(ENV),
            sinkhorn_knopp_batched(STACK, row_target=1.0),
        ],
        ids=["scalar", "standard_form", "batched"],
    )
    def test_field_types_line_up(self, result):
        assert isinstance(result.matrix, np.ndarray)
        assert np.asarray(result.converged).all()
        assert np.all(np.asarray(result.iterations) >= 0)
        assert np.all(np.asarray(result.residual) >= 0)
        history = result.residual_history
        assert len(history) >= 1

    def test_generic_consumer_works_across_results(self):
        def final_residual(outcome: ScalingOutcome) -> float:
            return float(np.max(np.asarray(outcome.residual)))

        for outcome in (
            sinkhorn_knopp(ENV, row_target=1.0),
            standardize(ENV),
            sinkhorn_knopp_batched(STACK, row_target=1.0),
        ):
            assert final_residual(outcome) <= 1e-8


class TestRemovedAliases:
    """The pre-protocol batch spellings completed their deprecation
    cycle; the tombstone properties must raise AttributeError naming
    the replacement field."""

    def test_matrices_alias_raises_with_replacement(self):
        result = sinkhorn_knopp_batched(STACK, row_target=1.0)
        with pytest.raises(
            AttributeError, match=r"matrices was removed; use \.matrix"
        ):
            _ = result.matrices

    def test_residual_histories_alias_raises_with_replacement(self):
        result = sinkhorn_knopp_batched(STACK, row_target=1.0)
        with pytest.raises(
            AttributeError,
            match=r"residual_histories was removed; use \.residual_history",
        ):
            _ = result.residual_histories

    def test_new_names_still_work(self):
        result = sinkhorn_knopp_batched(STACK, row_target=1.0)
        assert isinstance(result.matrix, np.ndarray)
        assert len(result.residual_history) == len(result)

    def test_standardize_batched_aliases_raise_too(self):
        # Both batched constructors share the result class; the
        # tombstones must raise regardless of which kernel produced
        # the object.
        result = standardize_batched(STACK)
        with pytest.raises(AttributeError, match=r"use \.matrix"):
            _ = result.matrices
        with pytest.raises(AttributeError, match=r"use \.residual_history"):
            _ = result.residual_histories

    def test_error_names_the_result_class(self):
        result = sinkhorn_knopp_batched(STACK, row_target=1.0)
        with pytest.raises(
            AttributeError, match="BatchNormalizationResult"
        ):
            _ = result.matrices
