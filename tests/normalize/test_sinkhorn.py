"""Tests for the alternating-scaling iteration (paper eq. 9)."""

import numpy as np
import pytest

from repro import ConvergenceError, MatrixValueError
from repro.normalize import sinkhorn_knopp, scale_by_diagonals


class TestBasicConvergence:
    def test_doubly_stochastic_square(self):
        rng = np.random.default_rng(0)
        result = sinkhorn_knopp(rng.uniform(0.5, 2.0, size=(5, 5)))
        np.testing.assert_allclose(result.matrix.sum(axis=1), 1.0, atol=1e-8)
        np.testing.assert_allclose(result.matrix.sum(axis=0), 1.0, atol=1e-8)
        assert result.converged

    def test_rectangular_consistent_default(self):
        rng = np.random.default_rng(1)
        result = sinkhorn_knopp(
            rng.uniform(0.5, 2.0, size=(3, 7)), row_target=2.0
        )
        np.testing.assert_allclose(result.matrix.sum(axis=1), 2.0, atol=1e-8)
        np.testing.assert_allclose(
            result.matrix.sum(axis=0), 3 * 2.0 / 7, atol=1e-8
        )

    def test_already_normalized_zero_iterations(self):
        matrix = np.full((2, 2), 0.5)
        result = sinkhorn_knopp(matrix)
        assert result.iterations == 0
        assert result.converged

    def test_result_matrix_is_fresh(self):
        source = np.ones((2, 2))
        result = sinkhorn_knopp(source)
        assert result.matrix is not source
        np.testing.assert_allclose(source, 1.0)  # input untouched

    def test_residual_history_decreases(self):
        rng = np.random.default_rng(2)
        result = sinkhorn_knopp(rng.uniform(0.1, 5.0, size=(6, 4)))
        history = np.array(result.residual_history)
        assert history[-1] <= 1e-8
        # Monotone after the first pass for positive matrices.
        assert (np.diff(history[1:]) <= 1e-12).all()

    def test_max_sum_error_consistent(self):
        result = sinkhorn_knopp(np.random.default_rng(3).uniform(
            1, 2, size=(4, 4)))
        assert result.max_sum_error() == pytest.approx(result.residual,
                                                       abs=1e-12)


class TestScalingRecovery:
    def test_diagonals_reproduce_matrix(self):
        rng = np.random.default_rng(4)
        matrix = rng.uniform(0.5, 2.0, size=(4, 6))
        result = sinkhorn_knopp(matrix, row_target=1.5)
        rebuilt = scale_by_diagonals(matrix, result.row_scale, result.col_scale)
        np.testing.assert_allclose(rebuilt, result.matrix, rtol=1e-12)

    def test_theorem1_uniqueness_up_to_scalar(self):
        """Two different starting scalings of the same matrix converge to
        the same standard matrix (D1, D2 unique up to k, 1/k)."""
        rng = np.random.default_rng(5)
        matrix = rng.uniform(0.5, 2.0, size=(4, 4))
        scaled = np.diag(rng.uniform(0.2, 5, 4)) @ matrix @ np.diag(
            rng.uniform(0.2, 5, 4)
        )
        a = sinkhorn_knopp(matrix).matrix
        b = sinkhorn_knopp(scaled).matrix
        np.testing.assert_allclose(a, b, atol=1e-7)

    def test_scale_by_diagonals_shape_check(self):
        with pytest.raises(MatrixValueError):
            scale_by_diagonals(np.ones((2, 3)), [1.0, 1.0], [1.0, 1.0])


class TestValidation:
    def test_inconsistent_targets_rejected(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp(np.ones((2, 3)), row_target=1.0, col_target=1.0)

    def test_consistent_explicit_targets_accepted(self):
        result = sinkhorn_knopp(
            np.ones((2, 3)), row_target=3.0, col_target=2.0
        )
        np.testing.assert_allclose(result.matrix.sum(axis=1), 3.0)

    def test_negative_entries_rejected(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp([[1.0, -1.0], [1.0, 1.0]])

    def test_inf_entries_rejected(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp([[1.0, np.inf], [1.0, 1.0]])

    def test_zero_row_rejected(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp([[0.0, 0.0], [1.0, 1.0]])

    def test_nonpositive_target_rejected(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp(np.ones((2, 2)), row_target=0.0)


class TestNonConvergence:
    def test_eq10_raises_within_budget(self, eq10_matrix):
        with pytest.raises(ConvergenceError) as excinfo:
            sinkhorn_knopp(eq10_matrix, max_iterations=200)
        assert excinfo.value.iterations == 200
        assert excinfo.value.residual > 0

    def test_eq10_best_effort_mode(self, eq10_matrix):
        result = sinkhorn_knopp(
            eq10_matrix, max_iterations=50, require_convergence=False
        )
        assert not result.converged
        assert result.iterations == 50
        # The blocked entry (row 2, col 3 in paper indexing) decays
        # toward zero but never reaches it.
        assert 0 < result.matrix[1, 2] < eq10_matrix[1, 2]

    def test_zeros_but_normalizable_converges(self):
        """The paper's diagonal-matrix exception: decomposable pattern,
        yet normalization succeeds."""
        result = sinkhorn_knopp(np.diag([2.0, 5.0, 11.0]))
        np.testing.assert_allclose(result.matrix, np.eye(3), atol=1e-8)
