"""Chaos suite: the parametrized fault-injection matrix.

The central contract under test: with faults injected into k of N
members, ``characterize_ensemble(policy="quarantine")`` returns the
other N−k members with results **bit-identical** to a fault-free run,
and a quarantine report naming exactly the injected members with the
categories the plan predicted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import characterize_ensemble
from repro.exceptions import (
    GenerationError,
    MatrixValueError,
    ReproError,
)
from repro.robust import FAULT_KINDS, KIND_CATEGORY, Budget, FaultPlan, FaultSpec

from .conftest import healthy_indices

#: Data-fault kinds (stall manifests in the worker, tested separately).
DATA_KINDS = ("nan", "zero-row", "zero-col", "decomposable", "non-convergent")

#: Iteration cap for the suite: healthy members converge in tens of
#: iterations; injected non-convergent members (severity 1e14) need
#: ~1e7, so this cap keeps the fault cheap while keeping it a fault.
MAX_ITER = 2_000


def _assert_healthy_bit_identical(result, baseline, healthy) -> None:
    idx = np.asarray(healthy)
    for field in ("mph", "tdh", "tma", "iterations", "converged", "batched"):
        np.testing.assert_array_equal(
            getattr(result, field)[idx],
            getattr(baseline, field)[idx],
            err_msg=f"healthy members not bit-identical in {field}",
        )


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(10, faults="nan=2,zero-row=1", seed=5)
        b = FaultPlan.random(10, faults="nan=2,zero-row=1", seed=5)
        assert a == b
        assert len(a.faults) == 3
        assert len(set(a.members)) == 3

    def test_spec_string_and_dict_agree(self):
        a = FaultPlan.random(10, faults="nan=2,stall=1", seed=0)
        b = FaultPlan.random(10, faults={"nan": 2, "stall": 1}, seed=0)
        assert a == b

    def test_rejects_bad_specs(self):
        with pytest.raises(MatrixValueError):
            FaultPlan.random(8, faults="meteor=1", seed=0)
        with pytest.raises(MatrixValueError):
            FaultPlan.random(8, faults="nan=zero", seed=0)
        with pytest.raises(MatrixValueError):
            FaultPlan.random(8, faults="", seed=0)
        with pytest.raises(MatrixValueError):
            FaultPlan.random(2, faults="nan=3", seed=0)

    def test_rejects_duplicate_members(self):
        with pytest.raises(MatrixValueError):
            FaultPlan(
                faults=(
                    FaultSpec(kind="nan", member=1),
                    FaultSpec(kind="zero-row", member=1),
                )
            )

    def test_every_kind_maps_to_a_category(self):
        assert set(KIND_CATEGORY) == set(FAULT_KINDS)

    def test_apply_only_touches_targets(self, base_stack):
        plan = FaultPlan.random(8, faults="nan=1,zero-col=1", seed=3)
        corrupted = plan.apply(base_stack)
        for i in healthy_indices(8, plan):
            np.testing.assert_array_equal(corrupted[i], base_stack[i])
        for i in plan.members:
            assert not np.array_equal(corrupted[i], base_stack[i])

    def test_decomposable_requires_square(self):
        plan = FaultPlan(faults=(FaultSpec(kind="decomposable", member=0),))
        with pytest.raises(GenerationError):
            plan.apply(np.ones((2, 3, 4)))

    def test_out_of_range_member(self, base_stack):
        plan = FaultPlan(faults=(FaultSpec(kind="nan", member=99),))
        with pytest.raises(MatrixValueError):
            plan.apply(base_stack)


class TestQuarantineMatrix:
    """One test per data-fault kind, two injected members each."""

    @pytest.mark.parametrize("kind", DATA_KINDS)
    def test_healthy_members_bit_identical(self, base_stack, kind):
        baseline = characterize_ensemble(
            base_stack, tma_fallback="raise", max_iterations=MAX_ITER
        )
        plan = FaultPlan.random(8, faults={kind: 2}, seed=7)
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            tma_fallback="raise",
            max_iterations=MAX_ITER,
        )
        _assert_healthy_bit_identical(
            result, baseline, healthy_indices(8, plan)
        )
        assert set(result.report.quarantined) == set(plan.members)
        assert result.report.categories() == plan.expected_categories()
        for i in plan.members:
            assert np.isnan(result.mph[i])
            assert np.isnan(result.tdh[i])
            assert np.isnan(result.tma[i])
            assert not result.converged[i]
            assert result.iterations[i] == -1

    def test_mixed_fault_cocktail(self, base_stack):
        baseline = characterize_ensemble(
            base_stack, tma_fallback="raise", max_iterations=MAX_ITER
        )
        plan = FaultPlan.random(
            8,
            faults="nan=1,zero-row=1,decomposable=1,non-convergent=1",
            seed=13,
        )
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            tma_fallback="raise",
            max_iterations=MAX_ITER,
        )
        assert len(result.report) == 4
        assert result.report.categories() == plan.expected_categories()
        _assert_healthy_bit_identical(
            result, baseline, healthy_indices(8, plan)
        )
        assert sorted(result.report.by_category()) == sorted(
            set(plan.expected_categories().values())
        )

    def test_raise_policy_crashes_on_injected_fault(self, base_stack):
        plan = FaultPlan.random(8, faults="nan=1", seed=1)
        with pytest.raises(ReproError):
            characterize_ensemble(
                base_stack, policy="raise", fault_plan=plan
            )

    def test_quarantine_under_limit_fallback_keeps_decomposable(
        self, base_stack
    ):
        # Under tma_fallback="limit" a decomposable member is healthy
        # (eq. 9 limit semantics), so nothing is quarantined.
        plan = FaultPlan.random(8, faults="decomposable=1", seed=2)
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            tma_fallback="limit",
            max_iterations=MAX_ITER,
        )
        assert not result.report
        assert bool(result.converged[plan.members[0]])

    def test_scalar_path_quarantines_too(self, base_stack):
        plan = FaultPlan.random(8, faults="nan=1,zero-row=1", seed=9)
        batched = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            max_iterations=MAX_ITER,
        )
        scalar = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            batched=False,
            max_iterations=MAX_ITER,
        )
        assert scalar.report.categories() == batched.report.categories()
        healthy = healthy_indices(8, plan)
        np.testing.assert_allclose(
            scalar.mph[healthy], batched.mph[healthy], atol=1e-10, rtol=0
        )
        np.testing.assert_allclose(
            scalar.tma[healthy], batched.tma[healthy], atol=1e-10, rtol=0
        )

    def test_corrupt_stack_without_plan(self, base_stack):
        corrupt = base_stack.copy()
        corrupt[3, 0, 0] = np.nan
        corrupt[5, :, 1] = 0.0
        result = characterize_ensemble(corrupt, policy="quarantine")
        assert result.report.categories() == {3: "nan", 5: "empty-line"}

    def test_ragged_ensemble_quarantine(self):
        members = [
            np.ones((2, 2)),
            np.ones((3, 4)),
            np.array([[1.0, np.inf], [1.0, 1.0]]),
        ]
        result = characterize_ensemble(members, policy="quarantine")
        assert result.report.categories() == {2: "non-finite"}
        assert result.n_tasks is None
        assert np.isfinite(result.mph[:2]).all()

    def test_non_array_member_quarantined(self):
        # numpy can't even coerce a string; it must quarantine as
        # invalid-shape instead of crashing the whole ensemble.
        members = [np.ones((2, 2)), np.ones((3, 4)), "garbage"]
        result = characterize_ensemble(members, policy="quarantine")
        assert result.report.categories() == {2: "invalid-shape"}
        assert np.isfinite(result.mph[:2]).all()


class TestWorkerFaults:
    @pytest.mark.slow
    def test_stall_times_out_and_is_quarantined(self, base_stack):
        import time

        plan = FaultPlan.random(8, faults="stall=1", seed=4, stall_s=5.0)
        baseline = characterize_ensemble(base_stack, max_iterations=MAX_ITER)
        start = time.monotonic()
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            budget=Budget(member_timeout_s=0.75),
            n_jobs=2,
            max_iterations=MAX_ITER,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, "stalled worker must not block the pipeline"
        assert result.report.categories() == plan.expected_categories()
        assert result.report.categories()[plan.stalled[0]] == "timeout"
        _assert_healthy_bit_identical(
            result, baseline, healthy_indices(8, plan)
        )

    @pytest.mark.slow
    def test_stall_without_timeout_completes(self, base_stack):
        # No timeout budget: the straggler is simply slow, not faulty.
        plan = FaultPlan.random(8, faults="stall=1", seed=4, stall_s=0.5)
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            n_jobs=2,
            max_iterations=MAX_ITER,
        )
        assert not result.report
        assert result.converged.all()
