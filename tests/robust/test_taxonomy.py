"""Unit tests for the fault taxonomy and quarantine report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConvergenceError,
    EmptyRowColumnError,
    MatrixShapeError,
    MatrixValueError,
    NotNormalizableError,
)
from repro.robust import (
    FAULT_CATEGORIES,
    UNREPAIRABLE_CATEGORIES,
    MemberFault,
    QuarantineReport,
    classify_exception,
    classify_matrix,
)


class TestClassifyException:
    @pytest.mark.parametrize(
        ("exc", "category"),
        [
            (ConvergenceError("x"), "non-convergent"),
            (NotNormalizableError("x"), "decomposable"),
            (EmptyRowColumnError("x"), "empty-line"),
            (MatrixShapeError("x"), "invalid-shape"),
            (TimeoutError("x"), "timeout"),
            (MatrixValueError("x"), "worker-error"),
            (RuntimeError("x"), "worker-error"),
        ],
    )
    def test_mapping(self, exc, category):
        assert classify_exception(exc) == category

    def test_futures_timeout_counts_as_timeout(self):
        from concurrent.futures import TimeoutError as FuturesTimeout

        # Under Python >= 3.8 this aliases/subclasses builtin TimeoutError
        # on 3.11+; on 3.10 it does not, and the pipeline normalizes to
        # the builtin before classifying.  Either way the builtin maps:
        assert classify_exception(TimeoutError()) == "timeout"
        assert FuturesTimeout is not None


class TestClassifyMatrix:
    def test_healthy(self):
        assert classify_matrix(np.ones((3, 3))) is None

    @pytest.mark.parametrize(
        ("matrix", "category"),
        [
            ([[1.0, float("nan")], [1.0, 1.0]], "nan"),
            ([[1.0, float("inf")], [1.0, 1.0]], "non-finite"),
            ([[1.0, -2.0], [1.0, 1.0]], "negative"),
            ([[0.0, 0.0], [1.0, 1.0]], "empty-line"),
            ([[1.0, 0.0], [1.0, 1.0]], None),  # zeros alone are fine
            ("not a matrix", "invalid-shape"),
            ([1.0, 2.0], "invalid-shape"),
            ([[]], "invalid-shape"),
        ],
    )
    def test_categories(self, matrix, category):
        verdict = classify_matrix(matrix)
        if category is None:
            assert verdict is None
        else:
            assert verdict[0] == category

    def test_screen_order_nan_beats_structure(self):
        # NaN and an all-zero column at once: nan wins (most fundamental).
        m = np.array([[np.nan, 0.0], [1.0, 0.0]])
        assert classify_matrix(m)[0] == "nan"

    def test_decomposable_only_under_raise(self):
        # eq. 10: feasible pattern, but decomposable.
        eq10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)
        assert classify_matrix(eq10) is None
        assert classify_matrix(eq10, tma_fallback="limit") is None
        verdict = classify_matrix(eq10, tma_fallback="raise")
        assert verdict[0] == "decomposable"

    def test_infeasible_under_raise(self):
        # Two tasks runnable only on machine 0: margins are infeasible
        # once any other machine needs positive column mass it can't get
        # from rows 0/1 — construct the classic infeasible pattern.
        m = np.array(
            [[1.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 1.0, 1.0]]
        )
        verdict = classify_matrix(m, tma_fallback="raise")
        assert verdict is not None
        assert verdict[0] in ("infeasible", "decomposable")


class TestMemberFault:
    def test_rejects_unknown_category(self):
        with pytest.raises(MatrixValueError):
            MemberFault(index=0, category="gremlin", detail="?")

    def test_summary_states(self):
        q = MemberFault(index=3, category="nan", detail="x")
        assert "quarantined" in q.summary()
        r = MemberFault(
            index=3,
            category="non-convergent",
            detail="x",
            repaired=True,
            attempts=2,
            repair="tol-backoff:1e-06",
        )
        assert "repaired" in r.summary()
        assert "tol-backoff:1e-06" in r.summary()

    def test_unrepairable_is_subset(self):
        assert UNREPAIRABLE_CATEGORIES < set(FAULT_CATEGORIES)


class TestQuarantineReport:
    def _report(self):
        return QuarantineReport(
            policy="repair",
            faults=(
                MemberFault(index=1, category="nan", detail="a"),
                MemberFault(index=4, category="non-convergent", detail="b"),
                MemberFault(index=6, category="nan", detail="c"),
            ),
        )

    def test_len_bool(self):
        assert len(self._report()) == 3
        assert self._report()
        assert not QuarantineReport(policy="quarantine")

    def test_indices_and_groups(self):
        rep = self._report()
        assert rep.quarantined == (1, 4, 6)
        assert rep.repaired == ()
        assert rep.categories() == {
            1: "nan",
            4: "non-convergent",
            6: "nan",
        }
        assert rep.by_category() == {
            "nan": (1, 6),
            "non-convergent": (4,),
        }

    def test_fault_lookup(self):
        rep = self._report()
        assert rep.fault(4).category == "non-convergent"
        with pytest.raises(KeyError):
            rep.fault(2)

    def test_mark_repaired_is_pure(self):
        rep = self._report()
        marked = rep.mark_repaired(4, attempts=2, repair="tol-backoff:1e-06")
        assert rep.fault(4).repaired is False
        assert marked.fault(4).repaired is True
        assert marked.quarantined == (1, 6)
        assert marked.repaired == (4,)
        assert marked.attempts == 2

    def test_summary(self):
        rep = self._report()
        text = rep.summary()
        assert "policy=repair" in text
        assert "3 quarantined" in text
        assert text.count("member") == 3
        assert (
            QuarantineReport(policy="quarantine").summary()
            == "quarantine report: all members healthy"
        )
