"""The policy knob on the batched standard-form kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import standardize_batched
from repro.exceptions import MatrixValueError
from repro.normalize import standard_targets
from repro.robust import Budget, FaultPlan
from repro.robust.ensemble import (
    RobustBatchNormalizationResult,
    standardize_batched_robust,
)

from .conftest import healthy_indices


class TestPolicyKnob:
    def test_invalid_policy_rejected(self, base_stack):
        with pytest.raises(MatrixValueError):
            standardize_batched(base_stack, policy="shrug")

    def test_budget_requires_non_raise_policy(self, base_stack):
        with pytest.raises(MatrixValueError):
            standardize_batched(
                base_stack, policy="raise", budget=Budget(deadline_s=1.0)
            )

    def test_quarantine_delegates_to_robust(self, base_stack):
        corrupt = base_stack.copy()
        corrupt[2, 1, 1] = np.nan
        result = standardize_batched(corrupt, policy="quarantine")
        assert isinstance(result, RobustBatchNormalizationResult)
        assert result.report.categories() == {2: "nan"}

    def test_direct_entry_point_matches_knob(self, base_stack):
        corrupt = base_stack.copy()
        corrupt[2, 1, 1] = np.nan
        via_knob = standardize_batched(corrupt, policy="quarantine")
        direct = standardize_batched_robust(corrupt, policy="quarantine")
        np.testing.assert_array_equal(via_knob.matrix, direct.matrix)
        assert via_knob.report == direct.report


class TestQuarantineStandardize:
    def test_healthy_slices_bit_identical(self, base_stack):
        baseline = standardize_batched(base_stack)
        plan = FaultPlan.random(8, faults="nan=1,zero-col=1", seed=8)
        result = standardize_batched(
            base_stack, policy="quarantine", fault_plan=plan
        )
        healthy = healthy_indices(8, plan)
        for field in ("matrix", "row_scale", "col_scale", "iterations"):
            np.testing.assert_array_equal(
                getattr(result, field)[healthy],
                getattr(baseline, field)[healthy],
                err_msg=f"healthy slices differ in {field}",
            )
        for i in plan.members:
            assert np.isnan(result.matrix[i]).all()
            assert not result.converged[i]
        assert result.report.categories() == plan.expected_categories()

    def test_decomposable_is_a_fault_here(self, base_stack):
        # Unlike characterization (where the limit fallback applies),
        # the standard form *requires* normalizability, so decomposable
        # patterns always screen out.
        plan = FaultPlan.random(8, faults="decomposable=1", seed=5)
        result = standardize_batched(
            base_stack, policy="quarantine", fault_plan=plan
        )
        assert result.report.categories() == {plan.members[0]: "decomposable"}

    def test_non_convergent_keeps_partial_iterate(self, base_stack):
        plan = FaultPlan.random(8, faults="non-convergent=1", seed=6)
        result = standardize_batched(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            max_iterations=500,
        )
        (bad,) = plan.members
        fault = result.report.fault(bad)
        assert fault.category == "non-convergent"
        assert not fault.repaired
        # Graceful degradation: the best partial iterate survives.
        assert np.isfinite(result.matrix[bad]).all()
        assert not result.converged[bad]
        assert result.iterations[bad] == 500

    def test_all_slices_faulty(self):
        stack = np.full((2, 2, 2), np.nan)
        result = standardize_batched(stack, policy="quarantine")
        assert len(result.report) == 2
        assert not result.converged.any()
        row, col = standard_targets(2, 2)
        assert result.row_target == row
        assert result.col_target == col


class TestRepairStandardize:
    def test_pattern_repair(self, base_stack):
        plan = FaultPlan.random(8, faults="decomposable=1", seed=5)
        result = standardize_batched(
            base_stack, policy="repair", fault_plan=plan
        )
        (bad,) = plan.members
        fault = result.report.fault(bad)
        assert fault.repaired
        assert fault.repair.startswith("pattern:")
        assert result.converged[bad]
        row, col = standard_targets(4, 4)
        np.testing.assert_allclose(
            result.matrix[bad].sum(axis=1), row, atol=1e-6
        )
        np.testing.assert_allclose(
            result.matrix[bad].sum(axis=0), col, atol=1e-6
        )

    def test_tol_backoff_repair(self, base_stack):
        plan = FaultPlan.random(
            8, faults="non-convergent=1", seed=6, severity=1e6
        )
        result = standardize_batched(
            base_stack,
            policy="repair",
            fault_plan=plan,
            max_iterations=2_000,
        )
        (bad,) = plan.members
        fault = result.report.fault(bad)
        assert fault.repaired
        assert fault.repair.startswith("tol-backoff:")
        assert result.converged[bad]

    def test_nan_slice_stays_quarantined_under_repair(self, base_stack):
        plan = FaultPlan.random(8, faults="nan=1", seed=7)
        result = standardize_batched(
            base_stack, policy="repair", fault_plan=plan
        )
        fault = result.report.fault(plan.members[0])
        assert not fault.repaired
        assert fault.attempts == 0
