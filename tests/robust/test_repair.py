"""Repair-ladder tests, including the Theorem-2 round-trip property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.normalize import standard_targets, standardize
from repro.robust import Budget, repair_member, repaired_matrix
from repro.robust.repair import MemberRecovery
from repro.robust.budget import Deadline
from repro.structure import is_normalizable
from tests.conftest import ecs_matrices

#: Sinkhorn rate for the [[1, 1], [1, B]] corner is (1 - 2/sqrt(B))^2
#: per sweep, so B = 1e6 needs ~4e3 sweeps to reach 1e-7 — out of reach
#: at the base budget below, in reach after one backoff attempt.
SLOW_CORNER = np.array([[1.0, 1.0], [1.0, 1.0e6]])


class TestRepairedMatrix:
    def test_eq10_drop(self):
        eq10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)
        fixed = repaired_matrix(eq10)
        assert is_normalizable(fixed)
        # drop strategy removes the single blocking entry.
        assert np.count_nonzero(fixed) == np.count_nonzero(eq10) - 1

    def test_zero_row_falls_back_to_add(self):
        m = np.array([[0.0, 0.0], [3.0, 5.0]])
        fixed = repaired_matrix(m)
        assert is_normalizable(fixed)
        assert (fixed > 0).any(axis=1).all()
        # Added entries use the median positive speed by default.
        added = fixed[(m == 0) & (fixed > 0)]
        assert added.size
        np.testing.assert_allclose(added, np.median([3.0, 5.0]))

    def test_explicit_fill(self):
        m = np.array([[0.0, 0.0], [3.0, 5.0]])
        fixed = repaired_matrix(m, fill=7.0)
        assert set(np.unique(fixed[(m == 0) & (fixed > 0)])) == {7.0}

    def test_healthy_matrix_is_a_no_op(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(repaired_matrix(m), m)

    @given(ecs_matrices(min_side=2, max_side=5, positive_only=False))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_satisfies_theorem_2(self, ecs):
        """Every repairable matrix round-trips to Theorem-2 margins.

        ``ecs_matrices(positive_only=False)`` guarantees row/column
        support, so every draw is structurally repairable; after
        :func:`repaired_matrix` the standard form must hit the exact
        ``sqrt(M/T)`` / ``sqrt(T/M)`` margins to 1e-10.
        """
        fixed = repaired_matrix(ecs)
        assert is_normalizable(fixed)
        result = standardize(fixed, tol=1e-11, max_iterations=200_000)
        assert result.converged
        row, col = standard_targets(*fixed.shape)
        np.testing.assert_allclose(
            result.matrix.sum(axis=1), row, atol=1e-10, rtol=0
        )
        np.testing.assert_allclose(
            result.matrix.sum(axis=0), col, atol=1e-10, rtol=0
        )


class TestRepairMember:
    def _budget(self, **kw):
        return Budget(**kw)

    @pytest.mark.parametrize(
        "category",
        ["nan", "non-finite", "negative", "invalid-shape", "worker-error"],
    )
    def test_unrepairable_categories(self, category):
        recovery, attempts = repair_member(
            np.ones((2, 2)),
            category,
            tol=1e-8,
            max_iterations=1000,
            budget=self._budget(),
        )
        assert recovery is None
        assert attempts == 0

    def test_timeout_local_retry(self):
        recovery, attempts = repair_member(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            "timeout",
            tol=1e-8,
            max_iterations=10_000,
            budget=self._budget(),
        )
        assert isinstance(recovery, MemberRecovery)
        assert recovery.repair == "local-retry"
        assert attempts == 1
        mph, tdh, tma, iterations, converged = recovery.columns
        assert converged and iterations > 0
        assert 0.0 <= tma <= 1.0

    def test_decomposable_drop(self):
        eq10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)
        recovery, attempts = repair_member(
            eq10,
            "decomposable",
            tol=1e-8,
            max_iterations=10_000,
            budget=self._budget(),
        )
        assert recovery.repair == "drop:1"
        assert attempts == 1

    def test_empty_line_add(self):
        m = np.array([[0.0, 0.0], [3.0, 5.0]])
        recovery, _ = repair_member(
            m,
            "empty-line",
            tol=1e-8,
            max_iterations=10_000,
            budget=self._budget(),
        )
        assert recovery is not None
        assert recovery.repair.startswith("add:")

    def test_non_convergent_backoff_recovers(self):
        recovery, attempts = repair_member(
            SLOW_CORNER,
            "non-convergent",
            tol=1e-8,
            max_iterations=2_000,
            budget=self._budget(),
        )
        assert recovery is not None
        assert recovery.repair.startswith("tol-backoff:")
        assert attempts == recovery.attempts >= 1
        assert recovery.columns[4] is True

    def test_non_convergent_exhausts_attempts(self):
        hopeless = np.array([[1.0, 1.0], [1.0, 1.0e14]])
        budget = self._budget(max_attempts=2)
        recovery, attempts = repair_member(
            hopeless,
            "non-convergent",
            tol=1e-10,
            max_iterations=50,
            budget=budget,
        )
        assert recovery is None
        assert attempts == budget.max_attempts

    def test_expired_deadline_skips_work(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        for category in ("timeout", "decomposable", "non-convergent"):
            recovery, attempts = repair_member(
                np.ones((2, 2)),
                category,
                tol=1e-8,
                max_iterations=1000,
                budget=self._budget(),
                deadline=deadline,
            )
            assert recovery is None
            assert attempts == 0
