"""Shared fixtures for the fault-tolerance (chaos) suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def base_stack() -> np.ndarray:
    """A healthy, strictly positive (8, 4, 4) ensemble.

    Square slices so every fault kind (including ``decomposable``) can
    be injected; moderate dynamic range so every slice converges in a
    handful of Sinkhorn iterations.
    """
    rng = np.random.default_rng(42)
    return rng.uniform(0.5, 2.0, size=(8, 4, 4))


def healthy_indices(n: int, plan) -> list[int]:
    """Members of an ``n``-ensemble the plan does not touch."""
    return [i for i in range(n) if i not in set(plan.members)]
