"""Metamorphic scale-invariance tests.

MPH, TDH and TMA are scale-invariant by construction (paper
Section II): multiplying an entire ETC/ECS matrix by any positive
constant must leave all three measures unchanged.  These tests assert
the relation to 1e-12 on the scalar path, the batched path (each slice
scaled by its own constant) and straight through quarantine/repair.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ETCMatrix, characterize
from repro.batch import characterize_ensemble
from repro.robust import FaultPlan
from tests.conftest import ecs_matrices

from .conftest import healthy_indices

ATOL = 1e-12
scale_constants = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _profiles_match(a, b) -> None:
    assert a.mph == pytest.approx(b.mph, abs=ATOL)
    assert a.tdh == pytest.approx(b.tdh, abs=ATOL)
    assert a.tma == pytest.approx(b.tma, abs=ATOL)


class TestScalarScaleInvariance:
    @given(ecs_matrices(min_side=2, max_side=5), scale_constants)
    @settings(max_examples=40, deadline=None)
    def test_ecs_scaling(self, ecs, c):
        _profiles_match(characterize(ecs), characterize(c * ecs))

    @given(ecs_matrices(min_side=2, max_side=5), scale_constants)
    @settings(max_examples=25, deadline=None)
    def test_etc_scaling(self, ecs, c):
        etc = 1.0 / ecs
        _profiles_match(
            characterize(ETCMatrix(etc)), characterize(ETCMatrix(c * etc))
        )

    @given(ecs_matrices(min_side=2, max_side=5, positive_only=False))
    @settings(max_examples=25, deadline=None)
    def test_scaling_with_zero_pattern(self, ecs):
        # Zeros stay zeros under scaling; the limit-TMA path must be
        # just as invariant as the exact path.
        _profiles_match(characterize(ecs), characterize(512.0 * ecs))


class TestBatchedScaleInvariance:
    def _per_slice_scaled(self, stack, seed=0):
        rng = np.random.default_rng(seed)
        constants = rng.uniform(1e-2, 1e2, size=stack.shape[0])
        return stack * constants[:, None, None], constants

    def test_per_slice_constants(self, base_stack):
        scaled, _ = self._per_slice_scaled(base_stack)
        a = characterize_ensemble(base_stack)
        b = characterize_ensemble(scaled)
        np.testing.assert_allclose(a.mph, b.mph, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tdh, b.tdh, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tma, b.tma, atol=ATOL, rtol=0)

    def test_scalar_path_matches(self, base_stack):
        scaled, _ = self._per_slice_scaled(base_stack, seed=1)
        a = characterize_ensemble(base_stack, batched=False)
        b = characterize_ensemble(scaled, batched=False)
        np.testing.assert_allclose(a.mph, b.mph, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tdh, b.tdh, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tma, b.tma, atol=ATOL, rtol=0)


class TestScaleInvarianceThroughQuarantine:
    def test_quarantine_policy(self, base_stack):
        plan = FaultPlan.random(8, faults="nan=1,zero-row=1", seed=11)
        rng = np.random.default_rng(2)
        constants = rng.uniform(1e-2, 1e2, size=8)
        scaled = base_stack * constants[:, None, None]
        a = characterize_ensemble(
            base_stack, policy="quarantine", fault_plan=plan
        )
        b = characterize_ensemble(
            scaled, policy="quarantine", fault_plan=plan
        )
        assert a.report.categories() == b.report.categories()
        healthy = healthy_indices(8, plan)
        np.testing.assert_allclose(
            a.mph[healthy], b.mph[healthy], atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            a.tdh[healthy], b.tdh[healthy], atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            a.tma[healthy], b.tma[healthy], atol=ATOL, rtol=0
        )

    def test_repair_policy(self, base_stack):
        # Repairable structural fault; the repaired member's measures
        # must be scale-invariant too (repair fills with the median
        # positive entry, which scales along with the member).
        plan = FaultPlan.random(8, faults="zero-row=1", seed=17)
        rng = np.random.default_rng(3)
        constants = rng.uniform(1e-2, 1e2, size=8)
        scaled = base_stack * constants[:, None, None]
        a = characterize_ensemble(
            base_stack, policy="repair", fault_plan=plan
        )
        b = characterize_ensemble(scaled, policy="repair", fault_plan=plan)
        assert a.report.repaired == b.report.repaired == plan.members
        np.testing.assert_allclose(a.mph, b.mph, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tdh, b.tdh, atol=ATOL, rtol=0)
        np.testing.assert_allclose(a.tma, b.tma, atol=ATOL, rtol=0)
