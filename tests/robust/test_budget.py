"""Budget/Deadline semantics and no-hang guarantees."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.batch import characterize_ensemble, sinkhorn_knopp_batched
from repro.exceptions import MatrixValueError
from repro.normalize import sinkhorn_knopp, standardize
from repro.robust import Budget, FaultPlan
from repro.robust.budget import DEFAULT_BUDGET, Deadline

#: A corner so slow (rate (1 - 2/sqrt(1e14))^2 per sweep) that any
#: realistic iteration budget is effectively infinite — only a
#: wall-clock deadline can stop it early.
GLACIAL = np.array([[1.0, 1.0], [1.0, 1.0e14]])


class TestDeadline:
    def test_unbounded(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining() is None
        assert d.clamp(5.0) == 5.0
        assert d.clamp(None) is None

    def test_zero_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_clamp_takes_the_tighter_bound(self):
        d = Deadline(60.0)
        assert d.clamp(None) <= 60.0
        assert d.clamp(1.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(MatrixValueError):
            Deadline(-1.0)


class TestBudget:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": -1.0},
            {"member_timeout_s": -0.5},
            {"max_attempts": 0},
            {"max_attempts": 1.5},
            {"tol_backoff": 0.5},
            {"iteration_growth": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(MatrixValueError):
            Budget(**kwargs)

    def test_default_is_unbounded(self):
        assert DEFAULT_BUDGET.deadline_s is None
        assert DEFAULT_BUDGET.member_timeout_s is None
        assert not DEFAULT_BUDGET.start().expired()

    def test_attempt_ladders(self):
        b = Budget(max_attempts=3, tol_backoff=10.0, iteration_growth=4.0)
        assert b.attempt_tolerances(1e-8) == [1e-7, 1e-6, 1e-5]
        assert b.attempt_iterations(100) == [400, 1600, 6400]


class TestDeadlineNoHang:
    """deadline_s must win against an effectively infinite iteration cap."""

    def test_scalar_sinkhorn_deadline(self):
        start = time.monotonic()
        result = sinkhorn_knopp(
            GLACIAL,
            max_iterations=10**9,
            require_convergence=False,
            deadline_s=0.3,
        )
        assert time.monotonic() - start < 5.0
        assert not result.converged

    def test_standardize_deadline(self):
        start = time.monotonic()
        result = standardize(
            GLACIAL,
            max_iterations=10**9,
            require_convergence=False,
            deadline_s=0.3,
        )
        assert time.monotonic() - start < 5.0
        assert not result.converged

    def test_batched_sinkhorn_deadline_partial_outcome(self):
        stack = np.stack([np.ones((2, 2)), GLACIAL])
        start = time.monotonic()
        result = sinkhorn_knopp_batched(
            stack,
            max_iterations=10**9,
            require_convergence=False,
            deadline_s=0.3,
        )
        assert time.monotonic() - start < 5.0
        # Partial outcome: the healthy slice converged, the glacial one
        # is flagged rather than hung.
        assert bool(result.converged[0])
        assert not result.converged[1]

    def test_ensemble_budget_deadline(self, base_stack):
        plan = FaultPlan.random(8, faults="non-convergent=1", seed=6)
        start = time.monotonic()
        result = characterize_ensemble(
            base_stack,
            policy="quarantine",
            fault_plan=plan,
            budget=Budget(deadline_s=1.0),
            max_iterations=10**9,
        )
        assert time.monotonic() - start < 10.0
        assert result.report.categories()[plan.members[0]] == "non-convergent"

    def test_budget_requires_non_raise_policy(self, base_stack):
        with pytest.raises(MatrixValueError):
            characterize_ensemble(
                base_stack, policy="raise", budget=Budget(deadline_s=1.0)
            )
