"""Tests for the COV-based ETC generator."""

import numpy as np
import pytest

from repro import ETCMatrix, GenerationError, MatrixValueError
from repro.generate import cvb


class TestCvb:
    def test_shape_and_positivity(self):
        etc = cvb(15, 6, seed=0)
        assert isinstance(etc, ETCMatrix)
        assert etc.shape == (15, 6)
        assert (etc.values > 0).all()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            cvb(5, 3, seed=9).values, cvb(5, 3, seed=9).values
        )

    def test_mean_tracks_mean_task(self):
        etc = cvb(400, 10, task_cov=0.3, machine_cov=0.2,
                  mean_task=1000.0, seed=1)
        assert etc.values.mean() == pytest.approx(1000.0, rel=0.15)

    def test_task_cov_controls_row_spread(self):
        def empirical_task_cov(v):
            rows = cvb(300, 8, task_cov=v, machine_cov=0.1, seed=2)
            means = rows.values.mean(axis=1)
            return means.std() / means.mean()

        assert empirical_task_cov(0.9) > empirical_task_cov(0.2)

    def test_machine_cov_controls_within_row_spread(self):
        def empirical_machine_cov(v):
            etc = cvb(200, 10, task_cov=0.1, machine_cov=v, seed=3).values
            return float(np.mean(etc.std(axis=1) / etc.mean(axis=1)))

        assert empirical_machine_cov(0.6) > empirical_machine_cov(0.1)

    def test_consistent_variant_sorted(self):
        etc = cvb(10, 5, consistency="consistent", seed=4)
        assert (np.diff(etc.values, axis=1) >= 0).all()

    def test_partially_variant_runs(self):
        etc = cvb(10, 5, consistency="partially", consistent_fraction=0.4,
                  seed=5)
        assert etc.shape == (10, 5)

    def test_invalid_consistency(self):
        with pytest.raises(GenerationError):
            cvb(4, 4, consistency="nope")

    def test_invalid_cov(self):
        with pytest.raises(MatrixValueError):
            cvb(4, 4, task_cov=0.0)
        with pytest.raises(MatrixValueError):
            cvb(4, 4, machine_cov=-1.0)

    def test_extreme_cov_still_valid(self):
        """Very high COV can underflow gamma draws; the generator must
        still return a strictly positive ETC matrix."""
        etc = cvb(50, 5, task_cov=3.0, machine_cov=2.5, seed=6)
        assert (etc.values > 0).all()
        assert np.isfinite(etc.values).all()
