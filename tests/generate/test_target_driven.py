"""Tests for the measure-driven generator (exact MPH/TDH/TMA targets)."""

import numpy as np
import pytest

from repro import ECSMatrix, GenerationError
from repro.generate import (
    TargetSpec,
    affinity_core,
    from_targets,
    margins_for_homogeneity,
)
from repro.measures import mph, tdh, tma


class TestMargins:
    def test_exact_adjacent_ratio(self):
        margins = margins_for_homogeneity(6, 0.65)
        ratios = margins[:-1] / margins[1:]
        np.testing.assert_allclose(ratios, 0.65)

    def test_total_respected(self):
        margins = margins_for_homogeneity(5, 0.4, total=20.0)
        assert margins.sum() == pytest.approx(20.0)

    def test_ascending(self):
        assert (np.diff(margins_for_homogeneity(7, 0.3)) > 0).all()

    def test_homogeneity_one_flat(self):
        np.testing.assert_allclose(
            margins_for_homogeneity(4, 1.0, total=4.0), 1.0
        )

    def test_single_count(self):
        np.testing.assert_allclose(margins_for_homogeneity(1, 0.5), [1.0])

    def test_invalid_homogeneity(self):
        with pytest.raises(GenerationError):
            margins_for_homogeneity(4, 0.0)
        with pytest.raises(GenerationError):
            margins_for_homogeneity(4, 1.5)


class TestAffinityCore:
    def test_theta_zero_flat(self):
        core = affinity_core(4, 3, 0.0)
        np.testing.assert_allclose(core, core[0, 0])

    def test_theta_monotone_in_tma(self):
        values = [tma(affinity_core(6, 4, t)) for t in np.linspace(0, 0.95, 8)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_jitter_deterministic(self):
        a = affinity_core(5, 4, 0.3, jitter=0.5, seed=11)
        b = affinity_core(5, 4, 0.3, jitter=0.5, seed=11)
        np.testing.assert_array_equal(a, b)


class TestFromTargets:
    @pytest.mark.parametrize(
        "shape, targets",
        [
            ((6, 4), (0.7, 0.9, 0.3)),
            ((4, 4), (0.5, 0.5, 0.5)),
            ((12, 5), (0.82, 0.90, 0.07)),
            ((3, 8), (0.95, 0.2, 0.1)),
            ((5, 5), (0.3, 0.3, 0.0)),
        ],
    )
    def test_exact_targets(self, shape, targets):
        env = from_targets(*shape, targets)
        assert isinstance(env, ECSMatrix)
        assert mph(env) == pytest.approx(targets[0], abs=1e-9)
        assert tdh(env) == pytest.approx(targets[1], abs=1e-9)
        assert tma(env) == pytest.approx(targets[2], abs=1e-4)

    def test_jittered_targets_still_exact(self):
        env = from_targets(8, 5, (0.6, 0.8, 0.25), jitter=0.4, seed=7)
        assert mph(env) == pytest.approx(0.6, abs=1e-9)
        assert tdh(env) == pytest.approx(0.8, abs=1e-9)
        assert tma(env) == pytest.approx(0.25, abs=1e-4)

    def test_jitter_changes_matrix_not_measures(self):
        a = from_targets(6, 4, (0.7, 0.7, 0.2), jitter=0.3, seed=1)
        b = from_targets(6, 4, (0.7, 0.7, 0.2), jitter=0.3, seed=2)
        assert not np.allclose(a.values, b.values)
        assert mph(a) == pytest.approx(mph(b))
        assert tma(a) == pytest.approx(tma(b), abs=2e-4)

    def test_tuple_and_spec_equivalent(self):
        a = from_targets(4, 4, (0.5, 0.6, 0.1))
        b = from_targets(4, 4, TargetSpec(0.5, 0.6, 0.1))
        np.testing.assert_allclose(a.values, b.values)

    def test_invalid_targets(self):
        with pytest.raises(GenerationError):
            from_targets(4, 4, (0.0, 0.5, 0.1))
        with pytest.raises(GenerationError):
            from_targets(4, 4, (0.5, 1.2, 0.1))
        with pytest.raises(GenerationError):
            from_targets(4, 4, (0.5, 0.5, 1.0))

    def test_unreachable_tma_rejected(self):
        # A 2x7 environment cannot reach TMA near 1.
        with pytest.raises(GenerationError):
            from_targets(2, 7, (0.9, 0.9, 0.97))

    def test_single_machine_tma_zero_only(self):
        env = from_targets(5, 1, (1.0, 0.5, 0.0))
        assert env.shape == (5, 1)
        with pytest.raises(GenerationError):
            from_targets(5, 1, (1.0, 0.5, 0.3))

    def test_strict_positivity(self):
        env = from_targets(7, 5, (0.6, 0.6, 0.6), seed=0)
        assert (env.values > 0).all()


class TestZeroPattern:
    def test_targets_hit_with_pattern(self):
        mask = np.zeros((6, 4), dtype=bool)
        mask[0, 1] = mask[3, 2] = mask[5, 0] = True
        env = from_targets(
            6, 4, (0.6, 0.8, 0.3), jitter=0.2, seed=1, zero_pattern=mask
        )
        assert mph(env) == pytest.approx(0.6, abs=1e-8)
        assert tdh(env) == pytest.approx(0.8, abs=1e-8)
        assert tma(env) == pytest.approx(0.3, abs=1e-3)

    def test_zeros_preserved(self):
        mask = np.zeros((5, 4), dtype=bool)
        mask[1, 2] = mask[4, 0] = True
        env = from_targets(5, 4, (0.7, 0.7, 0.2), seed=2, jitter=0.1,
                           zero_pattern=mask)
        assert (env.values[mask] == 0).all()
        assert (env.values[~mask] > 0).all()

    def test_all_false_pattern_equals_no_pattern(self):
        mask = np.zeros((4, 4), dtype=bool)
        a = from_targets(4, 4, (0.5, 0.5, 0.2), seed=3, zero_pattern=mask)
        b = from_targets(4, 4, (0.5, 0.5, 0.2), seed=3)
        np.testing.assert_allclose(a.values, b.values)

    def test_unreachable_low_tma_raises(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 1:] = True
        mask[1:, 0] = True
        with pytest.raises(GenerationError):
            from_targets(4, 4, (0.6, 0.8, 0.0), zero_pattern=mask)

    def test_non_normalizable_pattern_rejected(self):
        bad = np.zeros((3, 3), dtype=bool)
        bad[0, :2] = True
        bad[1, :2] = True
        with pytest.raises(GenerationError):
            from_targets(3, 3, (0.6, 0.8, 0.1), zero_pattern=bad)

    def test_wrong_shape_rejected(self):
        with pytest.raises(GenerationError):
            from_targets(
                3, 3, (0.5, 0.5, 0.1),
                zero_pattern=np.zeros((2, 3), dtype=bool),
            )
