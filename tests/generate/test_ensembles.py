"""Tests for ensemble generation utilities."""

import numpy as np
import pytest

from repro import ECSMatrix, GenerationError
from repro.generate import heterogeneity_grid, perturb, random_ecs
from repro.measures import mph, tdh, tma


class TestHeterogeneityGrid:
    def test_grid_size_and_order(self):
        members = list(
            heterogeneity_grid(
                4,
                3,
                mph_values=(0.4, 0.8),
                tdh_values=(0.5,),
                tma_values=(0.0, 0.3),
                seed=0,
            )
        )
        assert len(members) == 4
        specs = [(m.spec.mph, m.spec.tdh, m.spec.tma) for m in members]
        assert specs == [
            (0.4, 0.5, 0.0),
            (0.4, 0.5, 0.3),
            (0.8, 0.5, 0.0),
            (0.8, 0.5, 0.3),
        ]

    def test_members_hit_their_specs(self):
        for member in heterogeneity_grid(
            5,
            4,
            mph_values=(0.5,),
            tdh_values=(0.7, 0.9),
            tma_values=(0.2,),
            seed=1,
        ):
            assert mph(member.ecs) == pytest.approx(member.spec.mph, abs=1e-8)
            assert tdh(member.ecs) == pytest.approx(member.spec.tdh, abs=1e-8)
            assert tma(member.ecs) == pytest.approx(member.spec.tma, abs=1e-4)

    def test_lazy(self):
        iterator = heterogeneity_grid(4, 3, seed=2)
        first = next(iterator)
        assert isinstance(first.ecs, ECSMatrix)


class TestRandomEcs:
    def test_shape_and_validity(self):
        env = random_ecs(6, 5, seed=0)
        assert env.shape == (6, 5)
        assert (env.values > 0).all()

    def test_zero_fraction_applied(self):
        env = random_ecs(30, 20, zero_fraction=0.4, seed=1)
        frac = (env.values == 0).mean()
        assert 0.25 < frac < 0.5

    def test_no_empty_lines_even_at_high_zero_fraction(self):
        env = random_ecs(10, 10, zero_fraction=0.95, seed=2)
        assert (env.values > 0).any(axis=1).all()
        assert (env.values > 0).any(axis=0).all()

    def test_spread_controls_range(self):
        tight = random_ecs(40, 10, spread=1.5, seed=3).values
        wide = random_ecs(40, 10, spread=100.0, seed=3).values
        assert wide.max() / wide.min() > tight.max() / tight.min()

    def test_spread_must_exceed_one(self):
        with pytest.raises(GenerationError):
            random_ecs(3, 3, spread=1.0)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_ecs(4, 4, seed=5).values, random_ecs(4, 4, seed=5).values
        )


class TestPerturb:
    def test_zero_noise_identity(self):
        matrix = np.array([[1.0, 2.0], [0.0, 3.0]])
        np.testing.assert_array_equal(perturb(matrix, 0.0), matrix)

    def test_zeros_stay_zero(self):
        matrix = np.array([[1.0, 0.0], [2.0, 3.0]])
        out = perturb(matrix, 0.5, seed=0)
        assert out[0, 1] == 0.0
        assert (out[matrix > 0] > 0).all()

    def test_small_noise_small_measure_shift(self, fig3b_ecs):
        out = perturb(fig3b_ecs, 0.01, seed=1)
        assert mph(out) == pytest.approx(mph(fig3b_ecs), abs=0.05)
        assert tma(out) == pytest.approx(tma(fig3b_ecs), abs=0.05)

    def test_input_not_mutated(self):
        matrix = np.array([[1.0, 2.0], [2.0, 3.0]])
        perturb(matrix, 0.3, seed=2)
        np.testing.assert_array_equal(matrix, [[1.0, 2.0], [2.0, 3.0]])
