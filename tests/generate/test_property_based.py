"""Property-based tests for the generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generate import (
    from_targets,
    margins_for_homogeneity,
    perturb,
    random_ecs,
    range_based,
)
from repro.measures import average_adjacent_ratio, mph, tdh, tma

homogeneity_targets = st.floats(0.1, 1.0, allow_nan=False)
affinity_targets = st.floats(0.0, 0.6, allow_nan=False)
small_dims = st.integers(2, 7)


class TestMarginsProperties:
    @given(st.integers(2, 15), homogeneity_targets)
    def test_adjacent_ratio_exact(self, count, target):
        # count == 1 has no adjacent pairs: the ratio is defined as 1.
        margins = margins_for_homogeneity(count, target)
        assert average_adjacent_ratio(margins) == pytest.approx(
            target, abs=1e-12
        )

    @given(st.integers(1, 15), homogeneity_targets, st.floats(0.1, 100.0))
    def test_total_exact(self, count, target, total):
        margins = margins_for_homogeneity(count, target, total=total)
        assert margins.sum() == pytest.approx(total, rel=1e-12)


class TestFromTargetsProperties:
    @given(small_dims, small_dims, homogeneity_targets, homogeneity_targets,
           affinity_targets)
    @settings(max_examples=20, deadline=None)
    def test_targets_hit(self, n_tasks, n_machines, mph_t, tdh_t, tma_t):
        env = from_targets(n_tasks, n_machines, (mph_t, tdh_t, tma_t))
        assert mph(env) == pytest.approx(mph_t, abs=1e-8)
        assert tdh(env) == pytest.approx(tdh_t, abs=1e-8)
        assert tma(env) == pytest.approx(tma_t, abs=5e-4)

    @given(small_dims, small_dims, homogeneity_targets, homogeneity_targets,
           affinity_targets)
    @settings(max_examples=15, deadline=None)
    def test_output_strictly_positive(self, n_tasks, n_machines, mph_t,
                                      tdh_t, tma_t):
        env = from_targets(n_tasks, n_machines, (mph_t, tdh_t, tma_t))
        assert (env.values > 0).all()
        assert np.isfinite(env.values).all()


class TestRangeBasedProperties:
    @given(small_dims, small_dims, st.floats(2.0, 3000.0),
           st.floats(2.0, 1000.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounds(self, n_tasks, n_machines, task_range, machine_range,
                    seed):
        etc = range_based(
            n_tasks, n_machines,
            task_range=task_range, machine_range=machine_range, seed=seed,
        )
        assert (etc.values >= 1.0).all()
        assert (etc.values <= task_range * machine_range).all()


class TestRandomEcsProperties:
    @given(small_dims, small_dims, st.floats(0.0, 0.9),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_always_valid_ecs(self, n_tasks, n_machines, zero_fraction,
                              seed):
        env = random_ecs(
            n_tasks, n_machines, zero_fraction=zero_fraction, seed=seed
        )
        assert (env.values > 0).any(axis=1).all()
        assert (env.values > 0).any(axis=0).all()
        assert (env.values >= 0).all()


class TestPerturbProperties:
    @given(small_dims, small_dims, st.floats(0.01, 1.0),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pattern_preserved(self, n_tasks, n_machines, sigma, seed):
        env = random_ecs(n_tasks, n_machines, zero_fraction=0.3, seed=seed)
        noisy = perturb(env.values, sigma, seed=seed)
        np.testing.assert_array_equal(noisy == 0, env.values == 0)
        assert (noisy[env.values > 0] > 0).all()
