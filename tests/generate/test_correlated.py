"""Tests for the log-additive correlated ETC generator."""

import numpy as np
import pytest

from repro import ETCMatrix, GenerationError
from repro.generate import correlated
from repro.measures import tma


def _mean_row_correlation(etc: np.ndarray) -> float:
    logs = np.log(etc)
    centered = logs - logs.mean(axis=1, keepdims=True)
    corr = np.corrcoef(centered)
    return float(corr[np.triu_indices(etc.shape[0], 1)].mean())


def _mean_col_correlation(etc: np.ndarray) -> float:
    logs = np.log(etc)
    centered = logs - logs.mean(axis=0, keepdims=True)
    corr = np.corrcoef(centered.T)
    return float(corr[np.triu_indices(etc.shape[1], 1)].mean())


class TestCorrelated:
    def test_shape_and_type(self):
        etc = correlated(10, 5, seed=0)
        assert isinstance(etc, ETCMatrix)
        assert etc.shape == (10, 5)
        assert (etc.values > 0).all()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            correlated(6, 4, seed=7).values, correlated(6, 4, seed=7).values
        )

    def test_geometric_mean(self):
        etc = correlated(200, 30, mean_time=500.0, sigma=0.4, seed=1)
        geo_mean = np.exp(np.log(etc.values).mean())
        assert geo_mean == pytest.approx(500.0, rel=0.1)

    @pytest.mark.parametrize("target", [0.2, 0.5, 0.8])
    def test_row_correlation_hit(self, target):
        etc = correlated(
            250, 40, rho_rows=target, rho_cols=0.4, sigma=0.6, seed=2
        )
        assert _mean_row_correlation(etc.values) == pytest.approx(
            target, abs=0.07
        )

    @pytest.mark.parametrize("target", [0.2, 0.6])
    def test_col_correlation_hit(self, target):
        etc = correlated(
            250, 40, rho_rows=0.5, rho_cols=target, sigma=0.6, seed=3
        )
        assert _mean_col_correlation(etc.values) == pytest.approx(
            target, abs=0.07
        )

    def test_high_row_correlation_low_affinity(self):
        """Consistent machine rankings = no affinity, the distributional
        face of TMA."""
        consistent = np.mean(
            [tma(correlated(12, 6, rho_rows=0.95, seed=s)) for s in range(4)]
        )
        scrambled = np.mean(
            [tma(correlated(12, 6, rho_rows=0.1, seed=s)) for s in range(4)]
        )
        assert consistent < scrambled

    def test_sigma_controls_spread(self):
        tight = correlated(50, 10, sigma=0.1, seed=4).values
        wide = correlated(50, 10, sigma=1.0, seed=4).values
        assert wide.max() / wide.min() > tight.max() / tight.min()

    def test_invalid_rho(self):
        with pytest.raises(GenerationError):
            correlated(4, 4, rho_rows=1.0)
        with pytest.raises(GenerationError):
            correlated(4, 4, rho_cols=-0.1)

    def test_zero_correlations_pure_noise(self):
        etc = correlated(100, 30, rho_rows=0.0, rho_cols=0.0, sigma=0.5,
                         seed=5)
        assert abs(_mean_row_correlation(etc.values)) < 0.08
        assert abs(_mean_col_correlation(etc.values)) < 0.08
