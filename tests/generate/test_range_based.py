"""Tests for the range-based ETC generator (paper reference [4])."""

import numpy as np
import pytest

from repro import ETCMatrix, GenerationError
from repro.generate import make_consistent, make_partially_consistent, range_based
from repro.measures import tma


class TestRangeBased:
    def test_shape_and_type(self):
        etc = range_based(10, 4, seed=0)
        assert isinstance(etc, ETCMatrix)
        assert etc.shape == (10, 4)

    def test_entries_within_model_bounds(self):
        etc = range_based(50, 8, task_range=100, machine_range=10, seed=1)
        assert (etc.values >= 1.0).all()
        assert (etc.values <= 100 * 10).all()

    def test_deterministic_given_seed(self):
        a = range_based(6, 3, seed=42)
        b = range_based(6, 3, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = range_based(6, 3, seed=1)
        b = range_based(6, 3, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_larger_task_range_more_task_heterogeneity(self):
        from repro.measures import tdh

        low = np.mean(
            [tdh(range_based(20, 5, task_range=5, seed=s)) for s in range(5)]
        )
        high = np.mean(
            [tdh(range_based(20, 5, task_range=3000, seed=s)) for s in range(5)]
        )
        assert high < low  # more range -> less homogeneity

    def test_range_must_exceed_one(self):
        with pytest.raises(GenerationError):
            range_based(4, 4, task_range=1.0)
        with pytest.raises(GenerationError):
            range_based(4, 4, machine_range=0.5)

    def test_unknown_consistency_rejected(self):
        with pytest.raises(GenerationError):
            range_based(4, 4, consistency="sideways")


class TestConsistency:
    def test_consistent_rows_sorted(self):
        etc = range_based(12, 6, consistency="consistent", seed=3)
        assert (np.diff(etc.values, axis=1) >= 0).all()

    def test_consistent_lowers_tma(self):
        inconsistent = np.mean(
            [
                tma(range_based(12, 6, seed=s))
                for s in range(4)
            ]
        )
        consistent = np.mean(
            [
                tma(range_based(12, 6, consistency="consistent", seed=s))
                for s in range(4)
            ]
        )
        assert consistent < inconsistent

    def test_make_consistent_preserves_multiset(self):
        rng = np.random.default_rng(4)
        etc = rng.uniform(1, 10, size=(5, 4))
        out = make_consistent(etc)
        np.testing.assert_allclose(np.sort(out, axis=1), np.sort(etc, axis=1))

    def test_make_consistent_does_not_mutate(self):
        etc = np.array([[3.0, 1.0], [2.0, 5.0]])
        make_consistent(etc)
        np.testing.assert_array_equal(etc, [[3.0, 1.0], [2.0, 5.0]])

    def test_partially_consistent_subset_sorted(self):
        rng = np.random.default_rng(5)
        etc = rng.uniform(1, 100, size=(20, 8))
        out = make_partially_consistent(etc, 0.5, seed=6)
        # The matrix must differ from both the raw and the fully
        # consistent versions (exact ordered-column count depends on
        # the draw).
        assert not np.array_equal(out, etc)
        assert not np.array_equal(out, make_consistent(etc))

    def test_partial_fraction_zero_identity(self):
        etc = np.array([[3.0, 1.0], [2.0, 5.0]])
        np.testing.assert_array_equal(
            make_partially_consistent(etc, 0.0, seed=1), etc
        )

    def test_partial_single_column_is_identity(self):
        # One selected column has nothing to sort against: unchanged.
        rng = np.random.default_rng(7)
        etc = rng.uniform(1, 100, size=(10, 6))
        np.testing.assert_array_equal(
            make_partially_consistent(etc, 0.01, seed=8), etc
        )

    def test_partial_two_columns_change(self):
        rng = np.random.default_rng(9)
        etc = rng.uniform(1, 100, size=(10, 6))
        out = make_partially_consistent(etc, 0.34, seed=10)
        assert not np.array_equal(out, etc)
