"""Tests for the Braun et al. twelve-case suite presets."""

import numpy as np
import pytest

from repro import GenerationError
from repro.generate import BRAUN_CASES, braun_case, braun_suite
from repro.measures import mph, tdh


class TestCases:
    def test_twelve_names(self):
        assert len(BRAUN_CASES) == 12
        assert "hihi-c" in BRAUN_CASES and "lolo-i" in BRAUN_CASES

    def test_default_classic_shape(self):
        etc = braun_case("lolo-i", seed=0)
        assert etc.shape == (512, 16)

    def test_consistent_cases_sorted(self):
        etc = braun_case("hihi-c", n_tasks=24, n_machines=6, seed=1)
        assert (np.diff(etc.values, axis=1) >= 0).all()

    def test_inconsistent_not_sorted(self):
        etc = braun_case("hihi-i", n_tasks=24, n_machines=6, seed=1)
        assert not (np.diff(etc.values, axis=1) >= 0).all()

    def test_task_heterogeneity_ordering(self):
        hi = np.mean(
            [
                tdh(braun_case("hilo-i", n_tasks=40, n_machines=8, seed=s))
                for s in range(4)
            ]
        )
        lo = np.mean(
            [
                tdh(braun_case("lolo-i", n_tasks=40, n_machines=8, seed=s))
                for s in range(4)
            ]
        )
        assert hi < lo  # high task range -> less homogeneous tasks

    def test_machine_heterogeneity_ordering(self):
        hi = np.mean(
            [
                mph(braun_case("lohi-i", n_tasks=40, n_machines=8, seed=s))
                for s in range(4)
            ]
        )
        lo = np.mean(
            [
                mph(braun_case("lolo-i", n_tasks=40, n_machines=8, seed=s))
                for s in range(4)
            ]
        )
        assert hi < lo

    def test_case_insensitive(self):
        etc = braun_case("HiLo-C", n_tasks=8, n_machines=4, seed=2)
        assert etc.shape == (8, 4)

    def test_unknown_case(self):
        with pytest.raises(GenerationError):
            braun_case("mid-i")


class TestSuite:
    def test_all_cases_present(self):
        suite = braun_suite(n_tasks=10, n_machines=4, seed=3)
        assert set(suite) == set(BRAUN_CASES)
        assert all(env.shape == (10, 4) for env in suite.values())

    def test_suite_deterministic(self):
        a = braun_suite(n_tasks=6, n_machines=3, seed=4)
        b = braun_suite(n_tasks=6, n_machines=3, seed=4)
        for name in BRAUN_CASES:
            np.testing.assert_array_equal(a[name].values, b[name].values)
