"""The backend registry: registration, lookup, env/kwarg resolution."""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    NumpyBackend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.exceptions import MatrixValueError


class TestLookup:
    def test_numpy_reference_always_registered(self):
        assert "numpy" in list_backends()
        backend = get_backend("numpy")
        assert isinstance(backend, KernelBackend)
        assert backend.name == "numpy"
        assert backend.tolerance == 0.0

    def test_numba_registered_iff_importable(self):
        has_numba = importlib.util.find_spec("numba") is not None
        assert ("numba" in list_backends()) == has_numba

    def test_unknown_name_lists_registered_backends(self):
        with pytest.raises(MatrixValueError, match="backend must be one of"):
            get_backend("fortran")

    def test_list_is_sorted_tuple(self):
        names = list_backends()
        assert isinstance(names, tuple)
        assert list(names) == sorted(names)


class TestRegister:
    def test_duplicate_rejected_unless_replace(self):
        with pytest.raises(MatrixValueError, match="already registered"):
            register_backend("numpy", NumpyBackend())
        register_backend("numpy", NumpyBackend(), replace=True)
        assert get_backend("numpy").name == "numpy"

    def test_rejects_non_backend_objects(self):
        with pytest.raises(MatrixValueError, match="KernelBackend"):
            register_backend("bogus", object())

    def test_rejects_empty_name(self):
        with pytest.raises(MatrixValueError, match="name"):
            register_backend("", NumpyBackend())


class TestResolve:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(MatrixValueError, match="backend must be one of"):
            resolve_backend(None)

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_rejects_other_types(self):
        with pytest.raises(MatrixValueError, match="backend"):
            resolve_backend(42)


class TestKwargSurface:
    """One consistent error everywhere ``backend=`` is accepted."""

    MATCH = "backend must be one of"

    def test_sinkhorn_knopp(self):
        from repro.normalize import sinkhorn_knopp

        with pytest.raises(MatrixValueError, match=self.MATCH):
            sinkhorn_knopp(np.ones((2, 2)), backend="fortran")

    def test_standardize(self):
        from repro.normalize import standardize

        with pytest.raises(MatrixValueError, match=self.MATCH):
            standardize(np.ones((2, 2)), backend="fortran")

    def test_standardize_batched(self):
        from repro.batch import standardize_batched

        with pytest.raises(MatrixValueError, match=self.MATCH):
            standardize_batched(np.ones((1, 2, 2)), backend="fortran")

    def test_characterize(self):
        from repro.measures import characterize

        with pytest.raises(MatrixValueError, match=self.MATCH):
            characterize(np.ones((2, 2)), backend="fortran")

    def test_characterize_ensemble(self):
        from repro.batch import characterize_ensemble

        with pytest.raises(MatrixValueError, match=self.MATCH):
            characterize_ensemble(np.ones((1, 2, 2)), backend="fortran")

    def test_cli_measures_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.io import save_etc_csv
        from repro.generate.range_based import range_based

        path = tmp_path / "env.csv"
        save_etc_csv(range_based(3, 3, seed=0), path)
        assert main(["measures", str(path), "--backend", "fortran"]) == 2
        assert "backend must be one of" in capsys.readouterr().err

    def test_precision_choice_error(self):
        from repro.normalize import sinkhorn_knopp

        with pytest.raises(MatrixValueError, match="precision must be one of"):
            sinkhorn_knopp(np.ones((2, 2)), precision="float16")
