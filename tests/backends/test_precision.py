"""The float32 fast path: float64-verified results or a clean fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import standardize_batched
from repro.exceptions import MatrixValueError
from repro.normalize import sinkhorn_knopp
from repro.obs import collecting_metrics
from repro.obs.metrics import MetricsRegistry


class TestScalarFloat32:
    def test_verified_path_meets_float64_tolerance(self):
        rng = np.random.default_rng(0)
        ecs = rng.uniform(0.5, 5.0, size=(8, 5))
        tol = 1e-8
        result = sinkhorn_knopp(ecs, tol=tol, precision="float32")
        reference = sinkhorn_knopp(ecs, tol=tol)
        assert result.converged
        # The contract: the coarse float32 phase only ever *accelerates*;
        # the returned matrix is float64-verified against the same
        # residual check the pure-float64 path uses.
        assert result.matrix.dtype == np.float64
        assert result.max_sum_error() <= tol
        np.testing.assert_allclose(
            result.matrix, reference.matrix, rtol=0, atol=1e-7
        )

    def test_history_invariant_holds(self):
        rng = np.random.default_rng(1)
        ecs = rng.uniform(0.3, 8.0, size=(6, 6))
        result = sinkhorn_knopp(ecs, precision="float32")
        assert len(result.residual_history) == result.iterations + 1

    def test_verified_outcome_counted(self):
        rng = np.random.default_rng(2)
        ecs = rng.uniform(0.5, 5.0, size=(6, 4))
        with collecting_metrics(MetricsRegistry()) as registry:
            sinkhorn_knopp(ecs, precision="float32")
        counter = registry.get("repro_backend_precision_total")
        assert counter.value(backend="numpy", outcome="verified") == 1.0

    def test_float32_overflow_falls_back_to_float64(self):
        # Entries above float32's ~3.4e38 ceiling overflow the coarse
        # phase to inf, but the matrix is perfectly conditioned in
        # float64 — the fallback must still converge from entry state.
        rng = np.random.default_rng(3)
        huge = rng.uniform(1e39, 5e39, size=(4, 3))
        tol = 1e-8
        with collecting_metrics(MetricsRegistry()) as registry:
            result = sinkhorn_knopp(huge, tol=tol, precision="float32")
        assert result.converged
        assert result.max_sum_error() <= tol
        counter = registry.get("repro_backend_precision_total")
        assert counter.value(backend="numpy", outcome="fallback") == 1.0
        # The fallback is indistinguishable from never having tried
        # float32 at all.
        pure = sinkhorn_knopp(huge, tol=tol)
        assert (result.matrix == pure.matrix).all()
        assert result.iterations == pure.iterations

    def test_default_precision_is_pure_float64(self):
        rng = np.random.default_rng(4)
        ecs = rng.uniform(0.5, 5.0, size=(5, 5))
        a = sinkhorn_knopp(ecs)
        b = sinkhorn_knopp(ecs, precision="float64")
        assert (a.matrix == b.matrix).all()
        assert a.residual_history == b.residual_history

    def test_invalid_precision_rejected(self):
        with pytest.raises(MatrixValueError, match="precision must be one of"):
            sinkhorn_knopp(np.ones((2, 2)), precision="bfloat16")


class TestBatchedFloat32:
    def test_verified_batch_meets_tolerance(self):
        rng = np.random.default_rng(5)
        stack = rng.uniform(0.3, 6.0, size=(5, 6, 4))
        tol = 1e-8
        result = standardize_batched(stack, tol=tol, precision="float32")
        assert result.converged.all()
        assert result.matrix.dtype == np.float64
        row_target = np.sqrt(stack.shape[2] / stack.shape[1])
        residual = np.abs(
            result.matrix.sum(axis=2) - row_target
        ).max()
        assert residual <= tol

    def test_batch_fallback_restores_entry_state(self):
        # One overflowing slice poisons the float32 phase; the batch
        # driver falls back all-or-nothing and the pure-float64 rerun
        # must match a never-tried-float32 run exactly.
        rng = np.random.default_rng(6)
        stack = rng.uniform(0.5, 5.0, size=(4, 5, 3))
        stack[2] *= 1e39
        tol = 1e-8
        with collecting_metrics(MetricsRegistry()) as registry:
            result = standardize_batched(
                stack, tol=tol, precision="float32"
            )
        pure = standardize_batched(stack, tol=tol)
        assert result.converged.all()
        assert (result.matrix == pure.matrix).all()
        np.testing.assert_array_equal(result.iterations, pure.iterations)
        counter = registry.get("repro_backend_precision_total")
        assert counter.value(backend="numpy", outcome="fallback") >= 1.0

    def test_batched_equals_scalar_per_slice(self):
        from repro.normalize import standardize

        rng = np.random.default_rng(7)
        stack = rng.uniform(0.4, 7.0, size=(3, 5, 4))
        batched = standardize_batched(stack, precision="float32")
        for index in range(stack.shape[0]):
            scalar = standardize(stack[index], precision="float32")
            np.testing.assert_allclose(
                batched.matrix[index], scalar.matrix, rtol=0, atol=1e-7
            )
