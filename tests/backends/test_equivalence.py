"""Differential equivalence harness: every backend vs the numpy reference.

Each registered backend must reproduce the numpy reference backend's
results to within ``max(1e-10, backend.tolerance)`` per entry — the
reference itself at tolerance 0.0 (bit-equal by construction, since it
*is* the extracted legacy loop), numba at its documented 1e-10
(sequential summation order differs from numpy's pairwise reductions).

The harness is parametrized over ``list_backends()``, so installing an
optional backend (numba) automatically widens the matrix; when it is
not importable the backend never registers and its leg simply does not
exist — no skip bookkeeping needed beyond the explicit availability
test in ``test_registry.py``.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings

from repro.backends import get_backend, list_backends
from repro.batch import standardize_batched
from repro.measures import characterize
from repro.normalize import sinkhorn_knopp, standardize
from repro.spec import load_dataset
from tests.conftest import ecs_matrices

from ..batch.conftest import ecs_stacks

SPEC_DATASETS = ("cint2006rate", "cfp2006rate")


def tolerance_of(name: str) -> float:
    return max(1e-10, get_backend(name).tolerance)


@pytest.fixture(params=list_backends())
def backend_name(request) -> str:
    return request.param


class TestScalarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(ecs=ecs_matrices(min_side=2, max_side=6))
    def test_sinkhorn_matches_reference(self, ecs):
        for name in list_backends():
            reference = sinkhorn_knopp(ecs, backend="numpy")
            result = sinkhorn_knopp(ecs, backend=name)
            assert result.converged == reference.converged
            np.testing.assert_allclose(
                result.matrix,
                reference.matrix,
                rtol=0,
                atol=tolerance_of(name),
            )
            np.testing.assert_allclose(
                result.row_scale,
                reference.row_scale,
                rtol=tolerance_of(name) + 1e-12,
            )

    def test_numpy_backend_is_bit_identical_to_legacy(self):
        # tolerance 0.0 is a claim, not a slogan: the numpy backend is
        # the extracted legacy loop, so its iterates are bit-equal.
        rng = np.random.default_rng(11)
        ecs = rng.uniform(0.1, 10.0, size=(12, 7))
        a = sinkhorn_knopp(ecs)
        b = sinkhorn_knopp(ecs, backend="numpy")
        assert (a.matrix == b.matrix).all()
        assert a.residual_history == b.residual_history

    def test_spec_golden_measures(self, backend_name):
        for dataset in SPEC_DATASETS:
            env = load_dataset(dataset)
            reference = characterize(env, backend="numpy")
            profile = characterize(env, backend=backend_name)
            tol = tolerance_of(backend_name)
            assert profile.mph == pytest.approx(reference.mph, abs=tol)
            assert profile.tdh == pytest.approx(reference.tdh, abs=tol)
            assert profile.tma == pytest.approx(reference.tma, abs=1e-8)
            assert (
                profile.sinkhorn_iterations == reference.sinkhorn_iterations
            )

    def test_svd_values_match(self, backend_name):
        rng = np.random.default_rng(12)
        matrix = standardize(rng.uniform(0.5, 5.0, size=(9, 6))).matrix
        reference = get_backend("numpy").svd_values(matrix)
        values = get_backend(backend_name).svd_values(matrix)
        np.testing.assert_allclose(values, reference, atol=1e-10)


class TestBatchedEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(stack=ecs_stacks(min_side=2, max_side=5))
    def test_standardize_batched_matches_reference(self, stack):
        for name in list_backends():
            reference = standardize_batched(stack, backend="numpy")
            result = standardize_batched(stack, backend=name)
            np.testing.assert_array_equal(
                result.converged, reference.converged
            )
            np.testing.assert_array_equal(
                result.iterations, reference.iterations
            )
            np.testing.assert_allclose(
                result.matrix,
                reference.matrix,
                rtol=0,
                atol=tolerance_of(name),
            )

    def test_fused_measures_match(self, backend_name):
        rng = np.random.default_rng(13)
        stack = rng.uniform(0.2, 8.0, size=(6, 7, 4))
        reference = get_backend("numpy").fused_standard_measures(
            stack, tol=1e-8, max_iterations=10_000,
            deadline_s=None, warm_start=None, precision=None,
        )
        result = get_backend(backend_name).fused_standard_measures(
            stack, tol=1e-8, max_iterations=10_000,
            deadline_s=None, warm_start=None, precision=None,
        )
        tol = tolerance_of(backend_name)
        for got, want in zip(result[:3], reference[:3]):
            np.testing.assert_allclose(got, want, rtol=0, atol=tol)
        np.testing.assert_array_equal(result[3], reference[3])
        np.testing.assert_array_equal(result[4], reference[4])


@pytest.mark.skipif(
    importlib.util.find_spec("numba") is None,
    reason="numba not installed (optional backend)",
)
class TestNumbaLeg:
    """Exercised only when numba is installed (the CI matrix leg)."""

    def test_numba_backend_registered(self):
        assert "numba" in list_backends()
        assert get_backend("numba").tolerance == 1e-10

    def test_numba_scalar_documented_tolerance(self):
        rng = np.random.default_rng(14)
        ecs = rng.uniform(0.1, 10.0, size=(10, 6))
        reference = sinkhorn_knopp(ecs, backend="numpy")
        result = sinkhorn_knopp(ecs, backend="numba")
        assert result.converged
        np.testing.assert_allclose(
            result.matrix, reference.matrix, rtol=0, atol=1e-10
        )
