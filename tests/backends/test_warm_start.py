"""Warm-started Sinkhorn: exact re-application and iteration savings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch import characterize_ensemble, standardize_batched
from repro.exceptions import MatrixValueError
from repro.generate.ensembles import perturb_stack
from repro.normalize import (
    ScalingOutcome,
    scale_by_diagonals,
    sinkhorn_knopp,
    standardize,
)
from tests.conftest import ecs_matrices

from ..batch.conftest import ecs_stacks


class TestScalarWarmStart:
    @settings(max_examples=25, deadline=None)
    @given(ecs=ecs_matrices(min_side=2, max_side=6))
    def test_warm_from_converged_run_is_exact(self, ecs):
        cold = sinkhorn_knopp(ecs)
        warm = sinkhorn_knopp(ecs, warm_start=cold)
        # Re-applying the converged diagonals lands at (or below) the
        # tolerance immediately: zero new iterations, and the matrix is
        # bit-for-bit the closed-form diagonal re-application.
        assert warm.converged
        assert warm.iterations == 0
        assert (warm.row_scale == cold.row_scale).all()
        assert (warm.col_scale == cold.col_scale).all()
        rebuilt = scale_by_diagonals(ecs, cold.row_scale, cold.col_scale)
        assert (warm.matrix == rebuilt).all()
        np.testing.assert_allclose(
            warm.matrix, cold.matrix, rtol=0, atol=1e-7
        )

    @settings(max_examples=25, deadline=None)
    @given(ecs=ecs_matrices(min_side=2, max_side=6))
    def test_small_perturbations_need_no_more_iterations(self, ecs):
        cold = sinkhorn_knopp(ecs)
        rng = np.random.default_rng(0)
        perturbed = ecs * (1.0 + rng.uniform(-1e-7, 1e-7, size=ecs.shape))
        warm = sinkhorn_knopp(perturbed, warm_start=cold)
        baseline = sinkhorn_knopp(perturbed)
        assert warm.converged
        assert warm.iterations <= baseline.iterations

    def test_tuple_form_accepted(self):
        rng = np.random.default_rng(1)
        ecs = rng.uniform(0.5, 5.0, size=(6, 4))
        cold = sinkhorn_knopp(ecs)
        warm = sinkhorn_knopp(
            ecs, warm_start=(cold.row_scale, cold.col_scale)
        )
        assert warm.iterations == 0

    def test_standard_form_result_is_a_valid_warm_start(self):
        rng = np.random.default_rng(2)
        ecs = rng.uniform(0.5, 5.0, size=(6, 4))
        seeded = standardize(ecs)
        assert isinstance(seeded, ScalingOutcome)
        warm = standardize(ecs, warm_start=seeded)
        assert warm.iterations == 0

    def test_wrong_length_rejected(self):
        rng = np.random.default_rng(3)
        ecs = rng.uniform(0.5, 5.0, size=(6, 4))
        with pytest.raises(MatrixValueError, match="warm_start"):
            sinkhorn_knopp(
                ecs, warm_start=(np.ones(5), np.ones(4))
            )

    def test_non_positive_vectors_rejected(self):
        rng = np.random.default_rng(4)
        ecs = rng.uniform(0.5, 5.0, size=(4, 4))
        with pytest.raises(MatrixValueError, match="positive"):
            sinkhorn_knopp(
                ecs, warm_start=(np.zeros(4), np.ones(4))
            )


class TestBatchedWarmStart:
    @settings(max_examples=15, deadline=None)
    @given(stack=ecs_stacks(min_side=2, max_side=5))
    def test_warm_from_converged_run_is_exact(self, stack):
        cold = standardize_batched(stack)
        warm = standardize_batched(
            stack, warm_start=(cold.row_scale, cold.col_scale)
        )
        assert warm.converged.all()
        assert (warm.iterations == 0).all()
        assert (warm.row_scale == cold.row_scale).all()
        assert (warm.col_scale == cold.col_scale).all()

    def test_shared_pair_broadcasts_over_the_stack(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(0.5, 10.0, size=(12, 6))
        stack = perturb_stack(base, 1e-6, 24, seed=5)
        seeded = standardize(base)
        cold = standardize_batched(stack)
        warm = standardize_batched(
            stack, warm_start=(seeded.row_scale, seeded.col_scale)
        )
        assert warm.converged.all()
        assert (warm.iterations <= cold.iterations).all()
        # The warm_start bench criterion: >= 3x fewer total iterations
        # on a perturb_stack re-characterization.
        assert cold.iterations.sum() >= 3 * warm.iterations.sum()

    def test_ensemble_warm_start_threads_through(self):
        rng = np.random.default_rng(6)
        base = rng.uniform(0.5, 10.0, size=(8, 5))
        stack = perturb_stack(base, 1e-6, 8, seed=6)
        seeded = standardize(base)
        cold = characterize_ensemble(stack)
        warm = characterize_ensemble(
            stack, warm_start=(seeded.row_scale, seeded.col_scale)
        )
        assert warm.converged.all()
        assert warm.iterations.sum() < cold.iterations.sum()
        np.testing.assert_allclose(warm.tma, cold.tma, atol=1e-7)

    def test_robust_policy_rejected(self):
        stack = np.ones((2, 3, 3))
        with pytest.raises(MatrixValueError, match="policy='raise'"):
            standardize_batched(
                stack,
                policy="quarantine",
                warm_start=(np.ones((3,)), np.ones((3,))),
            )

    def test_scalar_fallback_slices_rejected(self):
        stack = np.ones((2, 3, 3))
        stack[0, 0, 0] = 0.0  # zero-patterned slice -> scalar path
        with pytest.raises(MatrixValueError, match="strictly.*positive"):
            characterize_ensemble(
                stack, warm_start=(np.ones(3), np.ones(3))
            )

    def test_ragged_ensemble_rejected(self):
        members = [np.ones((2, 2)), np.ones((3, 3))]
        with pytest.raises(MatrixValueError, match="stacked"):
            characterize_ensemble(
                members, warm_start=(np.ones(2), np.ones(2))
            )
