"""Tests for task difficulty and TDH (paper Section III)."""

import numpy as np
import pytest

from repro import ECSMatrix
from repro.measures import task_difficulty, tdh


class TestTaskDifficulty:
    def test_fig1_row_sums(self, fig1_ecs):
        np.testing.assert_allclose(
            task_difficulty(fig1_ecs), [17.0, 18.0, 13.0, 6.0]
        )

    def test_transpose_duality_with_machine_performance(self, fig1_ecs):
        from repro.measures import machine_performance

        np.testing.assert_allclose(
            task_difficulty(fig1_ecs), machine_performance(fig1_ecs.T)
        )

    def test_machine_weights_enter_rows(self):
        ecs = [[1.0, 2.0], [3.0, 4.0]]
        np.testing.assert_allclose(
            task_difficulty(ecs, machine_weights=[1.0, 10.0]), [21.0, 43.0]
        )

    def test_task_weights_scale_difficulties(self):
        ecs = [[1.0, 2.0], [3.0, 4.0]]
        np.testing.assert_allclose(
            task_difficulty(ecs, task_weights=[2.0, 1.0]), [6.0, 7.0]
        )

    def test_higher_row_sum_means_easier(self):
        td = task_difficulty([[10.0, 10.0], [1.0, 1.0]])
        assert td[0] > td[1]  # task 1 completes faster => less difficult


class TestTdh:
    def test_homogeneous_rows(self):
        assert tdh([[1.0, 2.0], [2.0, 1.0]]) == 1.0

    def test_single_task_is_one(self):
        assert tdh([[1.0, 5.0, 2.0]]) == 1.0

    def test_geometric_rows(self):
        # Row sums 1, 2, 4 -> adjacent ratios 0.5, 0.5.
        ecs = np.array([[0.5, 0.5], [1.0, 1.0], [2.0, 2.0]])
        assert tdh(ecs) == pytest.approx(0.5)

    def test_row_order_invariant(self, fig1_ecs):
        assert tdh(fig1_ecs[::-1]) == pytest.approx(tdh(fig1_ecs))

    def test_in_unit_interval(self, fig1_ecs):
        assert 0.0 < tdh(fig1_ecs) <= 1.0

    def test_scale_invariant(self, fig1_ecs):
        assert tdh(fig1_ecs / 1000.0) == pytest.approx(tdh(fig1_ecs))

    def test_fig4_high_low_split(self, fig4_matrices):
        """A, C, E, G homogeneous task difficulty; B, D, F, H not."""
        high = [tdh(fig4_matrices[k]) for k in "ACEG"]
        low = [tdh(fig4_matrices[k]) for k in "BDFH"]
        assert min(high) > 0.9
        assert max(low) < 0.2

    def test_wrapper_weights_respected(self):
        ecs = ECSMatrix([[1.0, 1.0], [1.0, 1.0]], task_weights=[1.0, 4.0])
        # Weighted difficulties 2 and 8 -> TDH 0.25.
        assert tdh(ecs) == pytest.approx(0.25)
