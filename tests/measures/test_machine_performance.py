"""Tests for machine performance and MPH (paper Section II-C)."""

import numpy as np
import pytest

from repro import ECSMatrix, ETCMatrix
from repro.measures import machine_performance, mph


class TestMachinePerformance:
    def test_fig1_column_sums(self, fig1_ecs):
        np.testing.assert_allclose(
            machine_performance(fig1_ecs), [17.0, 23.0, 14.0]
        )

    def test_accepts_ecs_wrapper(self, fig1_ecs):
        np.testing.assert_allclose(
            machine_performance(ECSMatrix(fig1_ecs)), [17.0, 23.0, 14.0]
        )

    def test_accepts_etc_wrapper(self):
        etc = ETCMatrix([[2.0, 4.0], [2.0, 4.0]])
        np.testing.assert_allclose(machine_performance(etc), [1.0, 0.5])

    def test_machine_weights_scale_columns(self, fig1_ecs):
        mp = machine_performance(fig1_ecs, machine_weights=[1.0, 2.0, 1.0])
        np.testing.assert_allclose(mp, [17.0, 46.0, 14.0])

    def test_task_weights_scale_rows(self):
        ecs = [[1.0, 2.0], [3.0, 4.0]]
        mp = machine_performance(ecs, task_weights=[10.0, 1.0])
        np.testing.assert_allclose(mp, [13.0, 24.0])

    def test_wrapper_weights_used_by_default(self):
        ecs = ECSMatrix([[1.0, 2.0], [3.0, 4.0]], task_weights=[10.0, 1.0])
        np.testing.assert_allclose(machine_performance(ecs), [13.0, 24.0])

    def test_explicit_weights_override_wrapper(self):
        ecs = ECSMatrix([[1.0, 2.0], [3.0, 4.0]], task_weights=[10.0, 1.0])
        np.testing.assert_allclose(
            machine_performance(ecs, task_weights=[1.0, 1.0]), [4.0, 6.0]
        )

    def test_zero_entries_contribute_nothing(self):
        np.testing.assert_allclose(
            machine_performance([[0.0, 1.0], [2.0, 0.0]]), [2.0, 1.0]
        )


class TestMph:
    @pytest.mark.parametrize(
        "performances, expected",
        [
            ([1.0, 2.0, 4.0, 8.0, 16.0], 0.5),
            ([1.0, 1.0, 1.0, 1.0, 16.0], 0.765625),
            ([1.0, 16.0, 16.0, 16.0, 16.0], 0.765625),
            ([1.0, 4.0, 4.0, 4.0, 16.0], 0.625),
        ],
    )
    def test_fig2_values(self, performances, expected):
        # Diagonal ECS matrices realize any prescribed performance vector.
        assert mph(np.diag(performances)) == pytest.approx(expected)

    def test_homogeneous_is_one(self):
        assert mph(np.ones((3, 4))) == pytest.approx(1.0)

    def test_single_machine_is_one(self):
        assert mph([[1.0], [5.0]]) == 1.0

    def test_order_invariant(self, fig1_ecs):
        shuffled = fig1_ecs[:, [2, 0, 1]]
        assert mph(shuffled) == pytest.approx(mph(fig1_ecs))

    def test_in_unit_interval(self, fig1_ecs):
        assert 0.0 < mph(fig1_ecs) <= 1.0

    def test_scale_invariant(self, fig1_ecs):
        assert mph(fig1_ecs * 3600.0) == pytest.approx(mph(fig1_ecs))

    def test_more_spread_lower_mph(self):
        tight = np.diag([8.0, 9.0, 10.0])
        wide = np.diag([1.0, 9.0, 100.0])
        assert mph(wide) < mph(tight)

    def test_fig1_value(self, fig1_ecs):
        # (14/17 + 17/23) / 2
        assert mph(fig1_ecs) == pytest.approx((14 / 17 + 17 / 23) / 2)
