"""Property-based (hypothesis) tests for the measure invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measures import (
    average_adjacent_ratio,
    coefficient_of_variation,
    geometric_mean_ratio,
    machine_performance,
    min_max_ratio,
    mph,
    task_difficulty,
    tdh,
    tma,
)
from tests.conftest import ecs_matrices, performance_vectors


class TestAdjacentRatioProperties:
    @given(performance_vectors)
    def test_in_unit_interval(self, vec):
        value = average_adjacent_ratio(vec)
        assert 0.0 < value <= 1.0

    @given(performance_vectors)
    def test_permutation_invariant(self, vec):
        rng = np.random.default_rng(0)
        assert average_adjacent_ratio(
            rng.permutation(vec)
        ) == pytest.approx(average_adjacent_ratio(vec))

    @given(performance_vectors, st.floats(0.01, 100.0))
    def test_scale_invariant(self, vec, factor):
        assert average_adjacent_ratio(vec * factor) == pytest.approx(
            average_adjacent_ratio(vec), rel=1e-9
        )

    @given(performance_vectors)
    def test_one_iff_all_equal(self, vec):
        value = average_adjacent_ratio(vec)
        if np.isclose(vec, vec[0], rtol=1e-12).all():
            assert value == pytest.approx(1.0)
        else:
            assert value < 1.0 + 1e-12

    @given(performance_vectors)
    def test_dominates_geometric_mean(self, vec):
        """AM-GM: the arithmetic mean of ratios is >= their geometric
        mean, i.e. MPH >= G always."""
        assert average_adjacent_ratio(vec) >= geometric_mean_ratio(vec) - 1e-12

    @given(performance_vectors)
    def test_bounded_below_by_r(self, vec):
        """Every adjacent ratio is >= the overall min/max ratio."""
        assert average_adjacent_ratio(vec) >= min_max_ratio(vec) - 1e-12


class TestMatrixMeasureProperties:
    @given(ecs_matrices(min_side=2, max_side=6))
    @settings(max_examples=40, deadline=None)
    def test_mph_tdh_in_range(self, ecs):
        assert 0.0 < mph(ecs) <= 1.0
        assert 0.0 < tdh(ecs) <= 1.0

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=25, deadline=None)
    def test_tma_in_range(self, ecs):
        assert 0.0 <= tma(ecs) <= 1.0

    @given(ecs_matrices(min_side=2, max_side=5), st.floats(0.01, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_all_measures_scale_invariant(self, ecs, factor):
        assert mph(ecs * factor) == pytest.approx(mph(ecs), rel=1e-8)
        assert tdh(ecs * factor) == pytest.approx(tdh(ecs), rel=1e-8)
        assert tma(ecs * factor) == pytest.approx(tma(ecs), abs=1e-6)

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=25, deadline=None)
    def test_mph_tdh_transpose_duality(self, ecs):
        assert mph(ecs) == pytest.approx(tdh(ecs.T), rel=1e-9)
        assert tdh(ecs) == pytest.approx(mph(ecs.T), rel=1e-9)

    @given(ecs_matrices(min_side=2, max_side=5))
    @settings(max_examples=25, deadline=None)
    def test_performance_difficulty_totals_agree(self, ecs):
        """Both vectors sum to the grand total of the matrix."""
        assert machine_performance(ecs).sum() == pytest.approx(
            task_difficulty(ecs).sum(), rel=1e-9
        )

    @given(ecs_matrices(min_side=1, max_side=4))
    @settings(max_examples=25, deadline=None)
    def test_rank_one_outer_products_have_zero_tma(self, ecs):
        """Any outer product u v^T has identical column directions."""
        u = ecs.sum(axis=1)
        v = ecs.sum(axis=0)
        outer = np.outer(u, v)
        assert tma(outer) == pytest.approx(0.0, abs=1e-6)


class TestCovProperties:
    @given(performance_vectors)
    def test_cov_nonnegative(self, vec):
        assert coefficient_of_variation(vec) >= 0.0

    @given(performance_vectors, st.floats(0.01, 100.0))
    def test_cov_scale_invariant(self, vec, factor):
        assert coefficient_of_variation(vec * factor) == pytest.approx(
            coefficient_of_variation(vec), rel=1e-6, abs=1e-9
        )
