"""Tests for characterize() and HeterogeneityProfile."""

import numpy as np
import pytest

from repro import ECSMatrix, MatrixValueError, NotNormalizableError
from repro.measures import characterize, mph, tdh, tma


class TestCharacterize:
    def test_agrees_with_individual_measures(self, fig3b_ecs):
        profile = characterize(fig3b_ecs)
        assert profile.mph == pytest.approx(mph(fig3b_ecs))
        assert profile.tdh == pytest.approx(tdh(fig3b_ecs))
        assert profile.tma == pytest.approx(tma(fig3b_ecs), abs=1e-9)
        assert profile.tma_method == "standard"

    def test_dimensions_recorded(self, fig1_ecs):
        profile = characterize(fig1_ecs)
        assert (profile.n_tasks, profile.n_machines) == (4, 3)

    def test_vectors_in_original_order(self, fig1_ecs):
        profile = characterize(fig1_ecs)
        np.testing.assert_allclose(
            profile.machine_performance, [17.0, 23.0, 14.0]
        )
        np.testing.assert_allclose(
            profile.task_difficulty, [17.0, 18.0, 13.0, 6.0]
        )

    def test_comparison_statistics(self, fig1_ecs):
        profile = characterize(fig1_ecs)
        assert profile.machine_r == pytest.approx(14.0 / 23.0)
        assert profile.task_r == pytest.approx(6.0 / 18.0)
        assert profile.machine_g == pytest.approx((14.0 / 23.0) ** 0.5)
        assert profile.machine_cov > 0

    def test_sinkhorn_diagnostics_present(self, fig3b_ecs):
        profile = characterize(fig3b_ecs)
        assert profile.sinkhorn_iterations >= 1
        assert profile.sinkhorn_residual <= 1e-8

    def test_limit_fallback_default(self, fig4_matrices):
        profile = characterize(fig4_matrices["B"])
        assert profile.tma_method == "limit"
        assert profile.tma == pytest.approx(1.0, abs=1e-6)

    def test_column_fallback(self, fig4_matrices):
        profile = characterize(fig4_matrices["B"], tma_fallback="column")
        assert profile.tma_method == "column"
        assert 0.0 <= profile.tma <= 1.0

    def test_raise_fallback(self, fig4_matrices):
        with pytest.raises(NotNormalizableError):
            characterize(fig4_matrices["B"], tma_fallback="raise")

    def test_invalid_fallback_rejected(self, fig1_ecs):
        with pytest.raises(MatrixValueError):
            characterize(fig1_ecs, tma_fallback="nope")

    def test_weights_flow_through(self):
        ecs = ECSMatrix([[1.0, 1.0], [1.0, 1.0]], machine_weights=[1.0, 2.0])
        profile = characterize(ecs)
        assert profile.mph == pytest.approx(0.5)

    def test_summary_mentions_all_measures(self, fig1_ecs):
        text = characterize(fig1_ecs).summary()
        for token in ("MPH", "TDH", "TMA", "standard form"):
            assert token in text

    def test_summary_without_iterations(self, fig4_matrices):
        text = characterize(
            fig4_matrices["B"], tma_fallback="column"
        ).summary()
        assert "column" in text


class TestFig4Corners:
    """The full Fig. 4 story: eight matrices at the measure extremes."""

    EXPECT = {
        # key: (mph_high, tdh_high, tma_high)
        "A": (False, True, True),
        "B": (False, False, True),
        "C": (True, True, True),
        "D": (True, False, True),
        "E": (False, True, False),
        "F": (False, False, False),
        "G": (True, True, False),
        "H": (True, False, False),
    }

    @pytest.mark.parametrize("key", list("ABCDEFGH"))
    def test_corner(self, fig4_matrices, key):
        profile = characterize(fig4_matrices[key])
        mph_high, tdh_high, tma_high = self.EXPECT[key]
        assert (profile.mph > 0.5) == mph_high, profile.mph
        assert (profile.tdh > 0.5) == tdh_high, profile.tdh
        assert (profile.tma > 0.5) == tma_high, profile.tma

    def test_abd_share_standard_form_of_c(self, fig4_matrices):
        from repro.normalize import standardize

        target = standardize(fig4_matrices["C"]).matrix
        for key in "ABD":
            limit = standardize(fig4_matrices[key], zeros="limit").matrix
            np.testing.assert_allclose(limit, target, atol=1e-8)


class TestInfeasibleLimitFallback:
    def test_limit_degrades_to_column_when_no_limit_exists(self):
        """A machine compatible with a single task type makes even the
        eq. 9 limit nonexistent (infeasible margins); characterize must
        degrade to the eq. 5 column method instead of raising."""
        import numpy as np

        ecs = np.array(
            [
                [1.0, 1.0, 2.0],
                [1.0, 2.0, 0.0],
                [2.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
            ]
        )
        profile = characterize(ecs)
        assert profile.tma_method == "column"
        assert 0.0 <= profile.tma <= 1.0

    def test_raise_mode_still_raises(self):
        import numpy as np

        ecs = np.array(
            [
                [1.0, 1.0, 2.0],
                [1.0, 2.0, 0.0],
                [2.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(NotNormalizableError):
            characterize(ecs, tma_fallback="raise")
