"""Tests for the Section II-D comparison statistics (R, G, COV)."""

import numpy as np
import pytest

from repro import MatrixShapeError, MatrixValueError
from repro.measures import (
    average_adjacent_ratio,
    coefficient_of_variation,
    geometric_mean_ratio,
    min_max_ratio,
)


class TestAverageAdjacentRatio:
    def test_fig2_env1(self):
        assert average_adjacent_ratio([1, 2, 4, 8, 16]) == 0.5

    def test_sorting_internal(self):
        assert average_adjacent_ratio([16, 4, 1, 8, 2]) == 0.5

    def test_single_value(self):
        assert average_adjacent_ratio([7.0]) == 1.0

    def test_equal_values(self):
        assert average_adjacent_ratio([3.0, 3.0, 3.0]) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(MatrixValueError):
            average_adjacent_ratio([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(MatrixShapeError):
            average_adjacent_ratio([])

    def test_rejects_2d(self):
        with pytest.raises(MatrixShapeError):
            average_adjacent_ratio(np.ones((2, 2)))


class TestFig2Table:
    """The complete Fig. 2 table: only MPH separates the environments."""

    EXPECTED = {
        "env1": {"mph": 0.5, "r": 1 / 16, "g": 0.5, "cov": 0.88},
        "env2": {"mph": 0.77, "r": 1 / 16, "g": 0.5, "cov": 1.5},
        "env3": {"mph": 0.77, "r": 1 / 16, "g": 0.5, "cov": 0.46},
        "env4": {"mph": 0.63, "r": 1 / 16, "g": 0.5, "cov": 0.90},
    }

    @pytest.mark.parametrize("env", ["env1", "env2", "env3", "env4"])
    def test_all_four_measures(self, fig2_performances, env):
        perf = fig2_performances[env]
        expected = self.EXPECTED[env]
        assert average_adjacent_ratio(perf) == pytest.approx(
            expected["mph"], abs=6e-3
        )
        assert min_max_ratio(perf) == pytest.approx(expected["r"], abs=6e-3)
        assert geometric_mean_ratio(perf) == pytest.approx(
            expected["g"], abs=6e-3
        )
        assert coefficient_of_variation(perf) == pytest.approx(
            expected["cov"], abs=6e-3
        )

    def test_only_mph_matches_intuition(self, fig2_performances):
        """Paper's point: env1 most heterogeneous, env2/env3 tie, env4
        in between — an ordering R, G and COV all fail to produce."""
        mph = {
            k: average_adjacent_ratio(v) for k, v in fig2_performances.items()
        }
        assert mph["env1"] < mph["env4"] < mph["env2"]
        assert mph["env2"] == pytest.approx(mph["env3"])
        # R and G cannot tell any of them apart.
        r = {k: min_max_ratio(v) for k, v in fig2_performances.items()}
        g = {k: geometric_mean_ratio(v) for k, v in fig2_performances.items()}
        assert len({round(x, 12) for x in r.values()}) == 1
        assert len({round(x, 12) for x in g.values()}) == 1
        # COV ranks env3 as *less* heterogeneous than env1 while giving
        # env2 and env3 wildly different values — failing the tie.
        cov = {
            k: coefficient_of_variation(v)
            for k, v in fig2_performances.items()
        }
        assert cov["env2"] != pytest.approx(cov["env3"], abs=0.5)


class TestG:
    def test_telescopes_to_root_of_r(self):
        values = np.array([2.0, 5.0, 7.0, 80.0])
        expected = (values.min() / values.max()) ** (1 / 3)
        assert geometric_mean_ratio(values) == pytest.approx(expected)

    def test_single_value(self):
        assert geometric_mean_ratio([4.0]) == 1.0


class TestCov:
    def test_population_std(self):
        # ddof=0: mean 4, std 6 -> 1.5 (the paper's env2 value).
        assert coefficient_of_variation([1, 1, 1, 1, 16]) == 1.5

    def test_homogeneous_zero(self):
        assert coefficient_of_variation([5.0, 5.0]) == 0.0

    def test_scale_invariant(self):
        v = np.array([1.0, 3.0, 9.0])
        assert coefficient_of_variation(v * 1e6) == pytest.approx(
            coefficient_of_variation(v)
        )
