"""Tests for the measure-property verification helpers."""

import numpy as np
import pytest

from repro.measures import (
    mph,
    tdh,
    tma,
    verify_independence_shift,
    verify_range,
    verify_scale_invariance,
)


class TestScaleInvariance:
    @pytest.mark.parametrize("measure", [mph, tdh, tma])
    def test_paper_measures_pass(self, measure, fig3b_ecs):
        assert verify_scale_invariance(measure, fig3b_ecs)

    def test_non_invariant_measure_fails(self, fig3b_ecs):
        def total_speed(ecs):
            return float(np.sum(ecs))

        assert not verify_scale_invariance(total_speed, fig3b_ecs)


class TestRange:
    def test_measures_within_unit_interval(self, fig4_matrices):
        corpus = list(fig4_matrices.values())
        assert verify_range(mph, corpus)
        assert verify_range(tdh, corpus)
        assert verify_range(
            lambda m: tma(m, zeros="limit"), corpus, atol=1e-6
        )

    def test_out_of_range_detected(self, fig1_ecs):
        assert not verify_range(lambda m: 2.0, [fig1_ecs])
        assert not verify_range(lambda m: -0.5, [fig1_ecs])


class TestIndependenceShift:
    def test_tma_fixed_under_column_scaling(self, fig3b_ecs):
        """Scaling columns moves MPH arbitrarily but not TMA."""
        scale = np.array([1.0, 4.0, 16.0])

        def transform(ecs):
            return ecs * scale[None, :]

        assert verify_independence_shift(tma, fig3b_ecs, transform)
        # Sanity: the transform really does move MPH.
        assert not verify_independence_shift(mph, fig3b_ecs, transform)

    def test_tma_fixed_under_row_scaling(self, fig3b_ecs):
        scale = np.array([1.0, 9.0, 81.0])

        def transform(ecs):
            return ecs * scale[:, None]

        assert verify_independence_shift(tma, fig3b_ecs, transform)
        assert not verify_independence_shift(tdh, fig3b_ecs, transform)

    def test_mph_fixed_under_row_scaling_of_uniform(self):
        """Row scaling a rank-1 flat matrix changes TDH, not MPH."""
        base = np.ones((4, 3))

        def transform(ecs):
            return ecs * np.array([1.0, 2.0, 4.0, 8.0])[:, None]

        assert verify_independence_shift(mph, base, transform)
        assert not verify_independence_shift(tdh, base, transform)
