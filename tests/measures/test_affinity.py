"""Tests for TMA (paper Sections II-E, III-D)."""

import numpy as np
import pytest

from repro import ECSMatrix, MatrixValueError, NotNormalizableError
from repro.measures import standard_singular_values, tma


class TestStandardSingularValues:
    def test_leading_value_is_one(self, fig3b_ecs):
        values = standard_singular_values(fig3b_ecs)
        assert values[0] == pytest.approx(1.0, abs=1e-6)

    def test_descending(self, fig3b_ecs):
        values = standard_singular_values(fig3b_ecs)
        assert (np.diff(values) <= 1e-12).all()

    def test_count_is_min_dimension(self):
        values = standard_singular_values(np.random.default_rng(0).uniform(
            1, 2, size=(6, 4)))
        assert values.shape == (4,)

    def test_rank_one_rest_zero(self, fig3a_ecs):
        values = standard_singular_values(fig3a_ecs)
        np.testing.assert_allclose(values[1:], 0.0, atol=1e-8)


class TestTmaStandard:
    def test_fig3_contrast(self, fig3a_ecs, fig3b_ecs):
        assert tma(fig3a_ecs) == pytest.approx(0.0, abs=1e-8)
        assert tma(fig3b_ecs) > 0.2

    def test_identity_full_affinity(self):
        assert tma(np.eye(3)) == pytest.approx(1.0, abs=1e-8)

    def test_fig4_tma_one_matrices(self, fig4_matrices):
        for key in "ABCD":
            assert tma(fig4_matrices[key], zeros="limit") == pytest.approx(
                1.0, abs=1e-6
            ), key

    def test_fig4_tma_zero_matrices(self, fig4_matrices):
        for key in "EFGH":
            assert tma(fig4_matrices[key]) == pytest.approx(
                0.0, abs=1e-6
            ), key

    def test_strict_zeros_raise_without_standard_form(self, fig4_matrices):
        with pytest.raises(NotNormalizableError):
            tma(fig4_matrices["A"], zeros="strict")

    def test_range(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            value = tma(rng.uniform(0.1, 10.0, size=(5, 4)))
            assert 0.0 <= value <= 1.0

    def test_single_column_zero(self):
        assert tma([[1.0], [2.0]]) == 0.0

    def test_single_row_zero(self):
        assert tma([[1.0, 2.0, 5.0]]) == 0.0

    def test_scale_invariant(self, fig3b_ecs):
        assert tma(fig3b_ecs * 7.5) == pytest.approx(tma(fig3b_ecs))

    def test_row_and_column_scaling_invariant(self, fig3b_ecs):
        """Theorem 1: diagonal scalings share a standard form, so TMA
        cannot move — the core independence property."""
        rng = np.random.default_rng(3)
        scaled = (
            rng.uniform(0.1, 10, size=(3, 1))
            * fig3b_ecs
            * rng.uniform(0.1, 10, size=(1, 3))
        )
        assert tma(scaled) == pytest.approx(tma(fig3b_ecs), abs=1e-7)

    def test_permutation_invariant(self, fig3b_ecs):
        perm = fig3b_ecs[[2, 0, 1]][:, [1, 2, 0]]
        assert tma(perm) == pytest.approx(tma(fig3b_ecs), abs=1e-9)

    def test_transpose_invariant(self, fig3b_ecs):
        """Singular values ignore transposition; affinity is symmetric
        in tasks vs machines."""
        assert tma(fig3b_ecs.T) == pytest.approx(tma(fig3b_ecs), abs=1e-7)

    def test_two_by_two_closed_form(self):
        """For 2×2, TMA = |2a-1| where a is the standard form diagonal:
        cross ratio (ad)/(bc) = (a/(1-a))^2."""
        a = 0.8
        matrix = np.array([[a, 1 - a], [1 - a, a]])
        assert tma(matrix) == pytest.approx(2 * a - 1, abs=1e-8)


class TestTmaColumn:
    def test_column_method_matches_standard_on_standard_matrix(self):
        matrix = np.array([[0.7, 0.3], [0.3, 0.7]])
        assert tma(matrix, method="column") == pytest.approx(
            tma(matrix, method="standard"), abs=1e-6
        )

    def test_column_method_defined_for_eq10(self, eq10_matrix):
        value = tma(eq10_matrix, method="column")
        assert 0.0 <= value <= 1.0

    def test_column_not_row_scaling_invariant(self):
        """The precursor eq.-5 TMA is *not* invariant under row scalings
        once TDH varies — the motivation for the standard form."""
        base = np.array([[2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]])
        scaled = np.diag([1.0, 5.0, 25.0]) @ base
        assert tma(scaled, method="column") != pytest.approx(
            tma(base, method="column"), abs=1e-3
        )
        # ...while the standard-form TMA is invariant:
        assert tma(scaled) == pytest.approx(tma(base), abs=1e-7)

    def test_unknown_method_rejected(self, fig3a_ecs):
        with pytest.raises(MatrixValueError):
            tma(fig3a_ecs, method="nope")


class TestTmaWeights:
    def test_wrapper_weights_affect_tma(self, fig3b_ecs):
        plain = tma(ECSMatrix(fig3b_ecs))
        weighted = tma(
            ECSMatrix(fig3b_ecs, task_weights=[1.0, 1.0, 100.0])
        )
        # Weighting is a row scaling -> TMA unchanged (Theorem 1).
        assert weighted == pytest.approx(plain, abs=1e-7)
