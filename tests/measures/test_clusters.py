"""Tests for affinity-structure extraction (spectral co-clustering)."""

import numpy as np
import pytest

from repro import MatrixValueError
from repro.measures import affinity_clusters


def _block_env(sizes_tasks, sizes_machines, *, strong=9.0, weak=0.1,
               seed=0):
    """Block matrix: task group g fast only on machine group g."""
    rng = np.random.default_rng(seed)
    t, m = sum(sizes_tasks), sum(sizes_machines)
    ecs = np.full((t, m), weak)
    r0 = 0
    c_offsets = np.cumsum([0, *sizes_machines])
    for g, rows in enumerate(sizes_tasks):
        ecs[r0 : r0 + rows, c_offsets[g] : c_offsets[g + 1]] = strong
        r0 += rows
    return ecs * rng.uniform(0.95, 1.05, size=ecs.shape)


class TestBlockRecovery:
    def test_two_blocks(self):
        ecs = _block_env([3, 3], [2, 2])
        clusters = affinity_clusters(ecs)
        assert clusters.n_clusters == 2
        # Tasks 0-2 together, 3-5 together, aligned with their machines.
        assert len(set(clusters.task_labels[:3])) == 1
        assert len(set(clusters.task_labels[3:])) == 1
        assert clusters.task_labels[0] != clusters.task_labels[3]
        assert clusters.machine_labels[0] == clusters.task_labels[0]
        assert clusters.machine_labels[2] == clusters.task_labels[3]

    def test_three_blocks_explicit_k(self):
        ecs = _block_env([2, 2, 2], [2, 2, 2])
        clusters = affinity_clusters(ecs, n_clusters=3)
        assert clusters.n_clusters == 3
        for g in range(3):
            rows = clusters.task_labels[2 * g : 2 * g + 2]
            cols = clusters.machine_labels[2 * g : 2 * g + 2]
            assert len(set(rows)) == 1
            assert set(cols) == set(rows)

    def test_unbalanced_blocks(self):
        ecs = _block_env([4, 2], [3, 1])
        clusters = affinity_clusters(ecs, n_clusters=2)
        assert clusters.machine_labels[3] == clusters.task_labels[4]


class TestDegenerateCases:
    def test_rank_one_single_cluster(self):
        ecs = np.outer([1.0, 2.0, 3.0], [1.0, 4.0])
        clusters = affinity_clusters(ecs)
        assert clusters.n_clusters == 1
        assert (clusters.task_labels == 0).all()
        assert (clusters.machine_labels == 0).all()
        assert clusters.strength == pytest.approx(0.0, abs=1e-7)

    def test_strength_equals_tma(self):
        from repro.measures import tma

        rng = np.random.default_rng(1)
        ecs = rng.uniform(0.5, 5.0, size=(6, 4))
        clusters = affinity_clusters(ecs)
        assert clusters.strength == pytest.approx(tma(ecs), abs=1e-9)

    def test_singular_values_descending_leading_one(self):
        ecs = _block_env([3, 3], [2, 2])
        clusters = affinity_clusters(ecs)
        assert clusters.singular_values[0] == pytest.approx(1.0, abs=1e-6)
        assert (np.diff(clusters.singular_values) <= 1e-12).all()

    def test_zero_entries_handled_via_limit(self):
        ecs = np.array([[1.0, 0.0], [0.0, 1.0]])
        clusters = affinity_clusters(ecs)
        assert clusters.n_clusters == 2
        assert clusters.task_labels[0] == clusters.machine_labels[0]

    def test_invalid_cluster_count(self):
        ecs = _block_env([2, 2], [2, 2])
        with pytest.raises(MatrixValueError):
            affinity_clusters(ecs, n_clusters=0)
        with pytest.raises(MatrixValueError):
            affinity_clusters(ecs, n_clusters=9)

    def test_groups_accessors(self):
        ecs = _block_env([2, 2], [2, 2])
        clusters = affinity_clusters(ecs, n_clusters=2)
        task_groups = clusters.task_groups()
        machine_groups = clusters.machine_groups()
        assert sorted(sum(task_groups, [])) == [0, 1, 2, 3]
        assert sorted(sum(machine_groups, [])) == [0, 1, 2, 3]

    def test_deterministic(self):
        ecs = _block_env([3, 3], [3, 3], seed=2)
        a = affinity_clusters(ecs, seed=5)
        b = affinity_clusters(ecs, seed=5)
        np.testing.assert_array_equal(a.task_labels, b.task_labels)


class TestSpecStructure:
    def test_cfp_finds_the_injected_pair(self):
        """The calibrated CFP data carries a soplex↔m4 affinity (the
        Fig. 8(b) injection); the clustering rediscovers it."""
        from repro.spec import cfp2006rate

        clusters = affinity_clusters(cfp2006rate())
        soplex = cfp2006rate().task_index("450.soplex")
        m4 = cfp2006rate().machine_index("m4")
        assert clusters.task_labels[soplex] == clusters.machine_labels[m4]
        # ...and that pair sits apart from the bulk.
        bulk = np.delete(clusters.task_labels, soplex)
        assert (bulk != clusters.task_labels[soplex]).all()
