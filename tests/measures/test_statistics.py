"""Tests for the companion-work heterogeneity statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.measures import (
    gini_coefficient,
    quartile_dispersion,
    skewness,
)
from tests.conftest import performance_vectors


class TestGini:
    def test_homogeneous_zero(self):
        assert gini_coefficient([7.0, 7.0, 7.0]) == 0.0

    def test_single_value_zero(self):
        assert gini_coefficient([3.0]) == 0.0

    def test_fig2_env2(self):
        assert gini_coefficient([1, 1, 1, 1, 16]) == pytest.approx(0.6)

    def test_order_invariant(self):
        assert gini_coefficient([16, 1, 1, 1, 1]) == pytest.approx(
            gini_coefficient([1, 1, 1, 1, 16])
        )

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            vec = rng.uniform(0.1, 100, size=rng.integers(2, 10))
            value = gini_coefficient(vec)
            assert 0.0 <= value < 1.0

    def test_dominant_machine_approaches_one(self):
        assert gini_coefficient([1e-6] * 9 + [1.0]) > 0.85

    @given(performance_vectors, st.floats(0.01, 100.0))
    def test_scale_invariant(self, vec, factor):
        assert gini_coefficient(vec * factor) == pytest.approx(
            gini_coefficient(vec), abs=1e-9
        )


class TestQuartileDispersion:
    def test_homogeneous_zero(self):
        assert quartile_dispersion([4.0, 4.0, 4.0, 4.0]) == 0.0

    def test_fig2_env1(self):
        assert quartile_dispersion([1, 2, 4, 8, 16]) == pytest.approx(0.6)

    def test_robust_to_single_outlier(self):
        """R collapses to 1/1000 with one straggler; the quartile
        measure barely moves — the robustness rationale."""
        from repro.measures import min_max_ratio

        base = np.full(20, 10.0)
        spiked = base.copy()
        spiked[0] = 0.01
        assert min_max_ratio(spiked) == pytest.approx(0.001)
        assert quartile_dispersion(spiked) < 0.05

    @given(performance_vectors, st.floats(0.01, 100.0))
    def test_scale_invariant(self, vec, factor):
        assert quartile_dispersion(vec * factor) == pytest.approx(
            quartile_dispersion(vec), abs=1e-9
        )

    @given(performance_vectors)
    def test_bounded(self, vec):
        assert 0.0 <= quartile_dispersion(vec) < 1.0


class TestSkewness:
    def test_constant_zero(self):
        assert skewness([3.0, 3.0, 3.0]) == 0.0

    def test_single_value_zero(self):
        assert skewness([9.0]) == 0.0

    def test_fast_outlier_positive(self):
        assert skewness([1.0, 1.0, 1.0, 1.0, 16.0]) > 1.0

    def test_slow_outlier_negative(self):
        assert skewness([16.0, 16.0, 16.0, 16.0, 1.0]) < -1.0

    def test_symmetric_near_zero(self):
        assert skewness([1.0, 2.0, 3.0, 4.0, 5.0]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_mirrored_vectors_opposite_sign(self):
        vec = np.array([1.0, 2.0, 3.0, 10.0])
        mirrored = vec.max() + vec.min() - vec
        assert skewness(vec) == pytest.approx(-skewness(mirrored))

    @given(performance_vectors, st.floats(0.01, 100.0))
    def test_scale_invariant(self, vec, factor):
        assert skewness(vec * factor) == pytest.approx(
            skewness(vec), abs=1e-6
        )
