"""Tests for labelled text rendering of environment matrices."""

import numpy as np

from repro import ECSMatrix, ETCMatrix
from repro.spec import cint2006rate


class TestToText:
    def test_header_and_alignment(self):
        text = ETCMatrix(
            [[1.5, 2.0]], task_names=["t"], machine_names=["a", "b"]
        ).to_text()
        lines = text.splitlines()
        assert lines[0].split() == ["task", "a", "b"]
        assert lines[1].split() == ["t", "1.5", "2.0"]

    def test_inf_rendered_as_dash(self):
        text = ETCMatrix([[1.0, np.inf], [2.0, 3.0]]).to_text()
        assert "-" in text
        assert "inf" not in text

    def test_precision(self):
        text = ETCMatrix([[1.23456, 2.0]]).to_text(precision=3)
        assert "1.235" in text

    def test_elision(self):
        env = ECSMatrix(np.ones((40, 2)))
        text = env.to_text(max_rows=10)
        assert "..." in text
        # Header + 10 rows + ellipsis line.
        assert len(text.splitlines()) == 12
        assert "t1 " in text.splitlines()[1]
        assert text.splitlines()[-1].startswith("t40")

    def test_no_elision_when_small(self):
        text = cint2006rate().to_text()
        assert "..." not in text
        assert len(text.splitlines()) == 13

    def test_str_dunder(self):
        env = ETCMatrix([[1.0, 2.0]])
        assert str(env) == env.to_text()

    def test_columns_consistent_width(self):
        text = cint2006rate().to_text()
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
