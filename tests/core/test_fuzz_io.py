"""Failure-injection tests: corrupted input files must fail cleanly.

Every corruption of a CSV/JSON environment file must raise a
:class:`repro.ReproError` (or a plain OSError for filesystem problems)
— never an unhandled ``IndexError``/``KeyError``/crash, and never hang.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ETCMatrix,
    ReproError,
    load_environment_json,
    load_etc_csv,
    save_environment_json,
    save_etc_csv,
)


@pytest.fixture
def valid_csv(tmp_path):
    path = tmp_path / "env.csv"
    save_etc_csv(
        ETCMatrix([[1.0, 2.0], [3.0, 4.0]], task_names=["a", "b"]), path
    )
    return path


CORRUPTIONS = [
    lambda text: "",                                      # empty
    lambda text: text.replace("1.0", "one"),              # non-numeric
    lambda text: text.replace("1.0", "-1.0"),             # negative time
    lambda text: text.replace("1.0", "nan"),              # NaN
    lambda text: text.splitlines()[0],                    # header only
    lambda text: text + "c,5.0\n",                        # ragged row
    lambda text: text.replace("task,m1,m2", "task"),      # no machines
    lambda text: text.replace("a,", "b,"),                # duplicate task
    lambda text: text.replace("m1,m2", "m1,m1"),          # duplicate machine
]


class TestCsvCorruption:
    @pytest.mark.parametrize("corrupt", CORRUPTIONS)
    def test_clean_failure(self, valid_csv, corrupt):
        valid_csv.write_text(corrupt(valid_csv.read_text()))
        with pytest.raises(ReproError):
            load_etc_csv(valid_csv)

    @given(text=st.text(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_text_never_crashes(self, text, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "env.csv"
        path.write_text(text, encoding="utf-8")
        try:
            env = load_etc_csv(path)
        except (ReproError, OSError):
            return
        # If it parsed, it must be a valid environment.
        assert env.n_tasks >= 1 and env.n_machines >= 1
        assert (env.values > 0).all()


class TestJsonCorruption:
    @pytest.fixture
    def valid_json(self, tmp_path):
        path = tmp_path / "env.json"
        save_environment_json(ETCMatrix([[1.0, 2.0]]), path)
        return path

    def test_missing_values(self, valid_json):
        doc = json.loads(valid_json.read_text())
        del doc["values"]
        valid_json.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_environment_json(valid_json)

    def test_bad_kind(self, valid_json):
        doc = json.loads(valid_json.read_text())
        doc["kind"] = "speed"
        valid_json.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_environment_json(valid_json)

    def test_inconsistent_names(self, valid_json):
        doc = json.loads(valid_json.read_text())
        doc["machine_names"] = ["only-one"]
        valid_json.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_environment_json(valid_json)

    def test_bad_weights(self, valid_json):
        doc = json.loads(valid_json.read_text())
        doc["task_weights"] = [0.0]
        valid_json.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_environment_json(valid_json)

    def test_negative_value(self, valid_json):
        doc = json.loads(valid_json.read_text())
        doc["values"] = [[-1.0, 2.0]]
        valid_json.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_environment_json(valid_json)


class TestRoundTripProperty:
    @given(
        n_tasks=st.integers(1, 6),
        n_machines=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_csv_json_round_trips(self, n_tasks, n_machines, seed,
                                  tmp_path_factory):
        rng = np.random.default_rng(seed)
        etc = ETCMatrix(rng.uniform(0.5, 100.0, size=(n_tasks, n_machines)))
        base = tmp_path_factory.mktemp("rt")
        csv_path = base / "env.csv"
        json_path = base / "env.json"
        save_etc_csv(etc, csv_path)
        save_environment_json(etc, json_path)
        np.testing.assert_array_equal(
            load_etc_csv(csv_path).values, etc.values
        )
        np.testing.assert_array_equal(
            load_environment_json(json_path).values, etc.values
        )
