"""CSV/JSON round-trip tests for environment I/O."""

import numpy as np
import pytest

from repro import (
    ECSMatrix,
    ETCMatrix,
    MatrixShapeError,
    MatrixValueError,
    load_environment_json,
    load_etc_csv,
    save_environment_json,
    save_etc_csv,
)


@pytest.fixture
def etc():
    return ETCMatrix(
        [[1.5, np.inf, 3.25], [40.0, 5.5, 6.0]],
        task_names=["alpha", "beta"],
        machine_names=["m1", "m2", "m3"],
        task_weights=[1.0, 2.5],
        machine_weights=[1.0, 1.0, 0.5],
    )


class TestCsv:
    def test_round_trip_values_and_names(self, etc, tmp_path):
        path = tmp_path / "env.csv"
        save_etc_csv(etc, path)
        back = load_etc_csv(path)
        np.testing.assert_allclose(back.values, etc.values)
        assert back.task_names == etc.task_names
        assert back.machine_names == etc.machine_names

    def test_inf_survives(self, etc, tmp_path):
        path = tmp_path / "env.csv"
        save_etc_csv(etc, path)
        assert np.isinf(load_etc_csv(path).values[0, 1])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("task,m1,m2\na,1.0,2.0\n\n,,\nb,3.0,4.0\n")
        env = load_etc_csv(path)
        assert env.shape == (2, 2)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("")
        with pytest.raises(MatrixShapeError):
            load_etc_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("task,m1\n")
        with pytest.raises(MatrixShapeError):
            load_etc_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("task,m1,m2\na,1.0\n")
        with pytest.raises(MatrixShapeError):
            load_etc_csv(path)

    def test_non_numeric_cell_rejected(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("task,m1\na,fast\n")
        with pytest.raises(MatrixValueError):
            load_etc_csv(path)

    def test_no_machine_columns_rejected(self, tmp_path):
        path = tmp_path / "env.csv"
        path.write_text("task\na\n")
        with pytest.raises(MatrixShapeError):
            load_etc_csv(path)

    def test_full_precision_round_trip(self, tmp_path):
        values = np.array([[1.0 / 3.0, np.pi], [np.e, 1e-17 + 2.0]])
        path = tmp_path / "env.csv"
        save_etc_csv(ETCMatrix(values), path)
        np.testing.assert_array_equal(load_etc_csv(path).values, values)


class TestJson:
    def test_etc_round_trip_with_weights(self, etc, tmp_path):
        path = tmp_path / "env.json"
        save_environment_json(etc, path)
        back = load_environment_json(path)
        assert isinstance(back, ETCMatrix)
        np.testing.assert_allclose(back.values, etc.values)
        np.testing.assert_allclose(back.task_weights, etc.task_weights)
        np.testing.assert_allclose(back.machine_weights, etc.machine_weights)

    def test_ecs_round_trip(self, tmp_path):
        ecs = ECSMatrix([[0.5, 0.0], [1.0, 2.0]])
        path = tmp_path / "env.json"
        save_environment_json(ecs, path)
        back = load_environment_json(path)
        assert isinstance(back, ECSMatrix)
        np.testing.assert_allclose(back.values, ecs.values)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "env.json"
        path.write_text('{"kind": "etc"}')
        with pytest.raises(MatrixValueError):
            load_environment_json(path)

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "env.json"
        path.write_text(
            '{"kind": "nope", "values": [[1.0]], '
            '"task_names": ["a"], "machine_names": ["m"]}'
        )
        with pytest.raises(MatrixValueError):
            load_environment_json(path)
