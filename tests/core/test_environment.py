"""Unit tests for the ETC/ECS matrix model."""

import numpy as np
import pytest

from repro import (
    ECSMatrix,
    ETCMatrix,
    EmptyRowColumnError,
    MatrixShapeError,
    MatrixValueError,
    WeightError,
)
from repro.exceptions import DatasetError


class TestConstruction:
    def test_etc_basic(self):
        etc = ETCMatrix([[1.0, 2.0], [4.0, 2.0]])
        assert etc.shape == (2, 2)
        assert etc.n_tasks == 2
        assert etc.n_machines == 2
        assert etc.task_names == ("t1", "t2")
        assert etc.machine_names == ("m1", "m2")

    def test_values_are_readonly(self):
        etc = ETCMatrix([[1.0, 2.0], [4.0, 2.0]])
        with pytest.raises(ValueError):
            etc.values[0, 0] = 9.0

    def test_input_array_not_aliased(self):
        source = np.array([[1.0, 2.0], [4.0, 2.0]])
        etc = ETCMatrix(source)
        source[0, 0] = 99.0
        assert etc.values[0, 0] == 1.0

    def test_custom_names(self):
        etc = ETCMatrix(
            [[1.0, 2.0]], task_names=["bzip2"], machine_names=["x", "y"]
        )
        assert etc.task_names == ("bzip2",)
        assert etc.machine_names == ("x", "y")

    def test_duplicate_names_rejected(self):
        with pytest.raises(MatrixValueError):
            ETCMatrix([[1.0, 2.0]], machine_names=["m", "m"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(MatrixShapeError):
            ETCMatrix([[1.0, 2.0]], machine_names=["only-one"])

    def test_non_2d_rejected(self):
        with pytest.raises(MatrixShapeError):
            ETCMatrix([1.0, 2.0])
        with pytest.raises(MatrixShapeError):
            ETCMatrix(np.ones((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(MatrixShapeError):
            ETCMatrix(np.empty((0, 3)))

    def test_nan_rejected(self):
        with pytest.raises(MatrixValueError):
            ETCMatrix([[1.0, np.nan]])

    def test_etc_nonpositive_rejected(self):
        with pytest.raises(MatrixValueError):
            ETCMatrix([[1.0, 0.0]])
        with pytest.raises(MatrixValueError):
            ETCMatrix([[1.0, -2.0]])

    def test_etc_all_inf_row_rejected(self):
        with pytest.raises(EmptyRowColumnError):
            ETCMatrix([[np.inf, np.inf], [1.0, 2.0]])

    def test_etc_all_inf_column_rejected(self):
        with pytest.raises(EmptyRowColumnError):
            ETCMatrix([[np.inf, 1.0], [np.inf, 2.0]])

    def test_ecs_negative_rejected(self):
        with pytest.raises(MatrixValueError):
            ECSMatrix([[1.0, -0.5]])

    def test_ecs_inf_rejected(self):
        with pytest.raises(MatrixValueError):
            ECSMatrix([[1.0, np.inf]])

    def test_ecs_zero_row_rejected(self):
        with pytest.raises(EmptyRowColumnError):
            ECSMatrix([[0.0, 0.0], [1.0, 2.0]])

    def test_ecs_zero_column_rejected(self):
        with pytest.raises(EmptyRowColumnError):
            ECSMatrix([[0.0, 1.0], [0.0, 2.0]])

    def test_bad_weights_rejected(self):
        with pytest.raises(WeightError):
            ETCMatrix([[1.0, 2.0]], task_weights=[1.0, 2.0])
        with pytest.raises(WeightError):
            ETCMatrix([[1.0, 2.0]], machine_weights=[1.0, 0.0])


class TestConversion:
    def test_etc_to_ecs_reciprocal(self):
        etc = ETCMatrix([[2.0, 4.0], [1.0, 0.5]])
        ecs = etc.to_ecs()
        np.testing.assert_allclose(ecs.values, [[0.5, 0.25], [1.0, 2.0]])

    def test_inf_becomes_zero(self):
        etc = ETCMatrix([[2.0, np.inf], [1.0, 0.5]])
        assert etc.to_ecs().values[0, 1] == 0.0

    def test_round_trip(self):
        etc = ETCMatrix(
            [[2.0, np.inf], [1.0, 0.5]],
            task_names=["a", "b"],
            task_weights=[2.0, 3.0],
        )
        back = etc.to_ecs().to_etc()
        np.testing.assert_allclose(back.values, etc.values)
        assert back.task_names == etc.task_names
        np.testing.assert_allclose(back.task_weights, etc.task_weights)

    def test_compatibility_masks_agree(self):
        etc = ETCMatrix([[2.0, np.inf], [1.0, 0.5]])
        np.testing.assert_array_equal(
            etc.compatibility, etc.to_ecs().compatibility
        )

    def test_weighted_values(self):
        ecs = ECSMatrix(
            [[1.0, 2.0], [3.0, 4.0]],
            task_weights=[2.0, 1.0],
            machine_weights=[1.0, 10.0],
        )
        np.testing.assert_allclose(
            ecs.weighted_values(), [[2.0, 40.0], [3.0, 40.0]]
        )


class TestScaling:
    def test_scaled_multiplies(self):
        etc = ETCMatrix([[1.0, 2.0], [4.0, 2.0]])
        np.testing.assert_allclose(etc.scaled(60.0).values, etc.values * 60)

    def test_scaled_requires_positive(self):
        etc = ETCMatrix([[1.0, 2.0]])
        with pytest.raises(MatrixValueError):
            etc.scaled(0.0)
        with pytest.raises(MatrixValueError):
            etc.scaled(-1.0)

    def test_ecs_scaled(self):
        ecs = ECSMatrix([[1.0, 2.0]])
        np.testing.assert_allclose(ecs.scaled(0.5).values, [[0.5, 1.0]])


class TestEditing:
    @pytest.fixture
    def env(self):
        return ECSMatrix(
            [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]],
            task_names=["a", "b", "c"],
            machine_names=["x", "y", "z"],
            task_weights=[1.0, 2.0, 3.0],
        )

    def test_submatrix_by_name(self, env):
        sub = env.submatrix(tasks=["a", "c"], machines=["z"])
        np.testing.assert_allclose(sub.values, [[3.0], [9.0]])
        assert sub.task_names == ("a", "c")
        assert sub.machine_names == ("z",)
        np.testing.assert_allclose(sub.task_weights, [1.0, 3.0])

    def test_submatrix_by_index_and_mixed(self, env):
        sub = env.submatrix(tasks=[0, "b"], machines=[2, 0])
        np.testing.assert_allclose(sub.values, [[3.0, 1.0], [6.0, 4.0]])

    def test_submatrix_unknown_name(self, env):
        with pytest.raises(DatasetError):
            env.submatrix(tasks=["missing"])

    def test_submatrix_duplicate_rejected(self, env):
        with pytest.raises(MatrixValueError):
            env.submatrix(tasks=["a", "a"])

    def test_submatrix_out_of_range(self, env):
        with pytest.raises(DatasetError):
            env.submatrix(machines=[5])

    def test_drop_tasks(self, env):
        out = env.drop_tasks(["b"])
        assert out.task_names == ("a", "c")
        assert out.shape == (2, 3)

    def test_drop_all_tasks_rejected(self, env):
        with pytest.raises(MatrixShapeError):
            env.drop_tasks(["a", "b", "c"])

    def test_drop_machines(self, env):
        out = env.drop_machines([0, 2])
        assert out.machine_names == ("y",)

    def test_add_task(self, env):
        out = env.add_task("d", [1.0, 1.0, 1.0], weight=5.0)
        assert out.n_tasks == 4
        assert out.task_names[-1] == "d"
        assert out.task_weights[-1] == 5.0
        # original untouched
        assert env.n_tasks == 3

    def test_add_task_wrong_length(self, env):
        with pytest.raises(MatrixShapeError):
            env.add_task("d", [1.0, 1.0])

    def test_add_machine(self, env):
        out = env.add_machine("w", [1.0, 1.0, 1.0])
        assert out.n_machines == 4
        assert out.machine_names[-1] == "w"

    def test_with_weights(self, env):
        out = env.with_weights(machine_weights=[2.0, 2.0, 2.0])
        np.testing.assert_allclose(out.machine_weights, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(out.task_weights, env.task_weights)

    def test_indices(self, env):
        assert env.task_index("c") == 2
        assert env.machine_index(1) == 1
        with pytest.raises(DatasetError):
            env.task_index("nope")


class TestProtocols:
    def test_array_protocol(self):
        etc = ETCMatrix([[1.0, 2.0]])
        np.testing.assert_allclose(np.asarray(etc), [[1.0, 2.0]])
        assert np.asarray(etc, dtype=np.float32).dtype == np.float32

    def test_equality(self):
        a = ETCMatrix([[1.0, 2.0]])
        b = ETCMatrix([[1.0, 2.0]])
        c = ETCMatrix([[1.0, 3.0]])
        assert a == b
        assert a != c
        assert a != ETCMatrix([[1.0, 2.0]], task_names=["other"])

    def test_etc_and_ecs_never_equal(self):
        assert ETCMatrix([[1.0]]) != ECSMatrix([[1.0]])

    def test_repr_mentions_shape(self):
        rep = repr(ETCMatrix(np.ones((4, 5))))
        assert "T=4" in rep and "M=5" in rep
