"""Request tracing through the serving stack.

Every ``/v1`` exchange — success or failure — answers with an
``X-Repro-Trace-Id`` header; with ``trace_path`` set the request also
emits a span tree (request root, cache/kernel children, batch fan-in
links) queryable offline, and ``debug_timings: true`` returns a stage
breakdown that sums to the measured total.  Tracing must never change
the served bytes.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.obs import load_spans
from repro.obs.export import render_prometheus
from repro.serve import CharacterizationServer, ServeConfig

_MATRIX = [[4.0, 2.0], [1.0, 3.0], [2.0, 2.0]]
_BODY = json.dumps({"matrix": _MATRIX}).encode("utf-8")


def _run(coro):
    return asyncio.run(coro)


async def _with_server(config, fn):
    server = CharacterizationServer(config)
    try:
        return await fn(server)
    finally:
        await server.stop()


def _exchange_sync(config, requests):
    """Run ``(method, path, body, headers)`` exchanges on a fresh server."""

    async def _go(server):
        out = []
        for method, path, body, headers in requests:
            out.append(await server.exchange(method, path, body, headers))
        return out

    return _run(_with_server(config, _go))


class TestTraceIdHeader:
    def test_every_v1_response_carries_a_trace_id(self, metrics_registry):
        bad_json = b"{nope"
        responses = _exchange_sync(ServeConfig(linger_s=0.001), [
            ("POST", "/v1/characterize", _BODY, None),        # 200
            ("POST", "/v1/characterize", bad_json, None),     # 400
            ("POST", "/v1/unknown", _BODY, None),             # 404
            ("GET", "/v1/characterize", b"", None),           # 405
        ])
        statuses = [r[0] for r in responses]
        assert statuses == [200, 400, 404, 405]
        for status, _, _, headers in responses:
            trace_id = headers["X-Repro-Trace-Id"]
            assert len(trace_id) == 32
            int(trace_id, 16)

    def test_trace_ids_are_distinct_per_request(self, metrics_registry):
        responses = _exchange_sync(ServeConfig(linger_s=0.001), [
            ("POST", "/v1/characterize", _BODY, None),
            ("POST", "/v1/characterize", _BODY, None),
        ])
        ids = {r[3]["X-Repro-Trace-Id"] for r in responses}
        assert len(ids) == 2

    def test_traceparent_ingress_is_adopted(self, metrics_registry, tmp_path):
        remote_trace = "ab" * 16
        remote_span = "cd" * 8
        header = {"traceparent": f"00-{remote_trace}-{remote_span}-01"}
        config = ServeConfig(
            linger_s=0.001, trace_path=str(tmp_path / "spans.jsonl")
        )
        [(status, _, _, headers)] = _exchange_sync(
            config, [("POST", "/v1/characterize", _BODY, header)]
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == remote_trace
        spans = load_spans(config.trace_path)
        root = next(s for s in spans if s["name"] == "serve.request")
        assert root["trace_id"] == remote_trace
        assert root["parent_id"] == remote_span

    def test_malformed_traceparent_is_tolerated(self, metrics_registry):
        [(status, _, _, headers)] = _exchange_sync(
            ServeConfig(linger_s=0.001),
            [("POST", "/v1/characterize", _BODY, {"traceparent": "junk"})],
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] != "junk"

    def test_scrapes_carry_no_trace_id(self, metrics_registry):
        responses = _exchange_sync(ServeConfig(linger_s=0.001), [
            ("GET", "/healthz", b"", None),
            ("GET", "/metrics", b"", None),
        ])
        for status, _, _, headers in responses:
            assert status == 200
            assert "X-Repro-Trace-Id" not in headers


class TestSpanTree:
    def test_request_emits_root_cache_and_kernel_spans(
        self, metrics_registry, tmp_path
    ):
        config = ServeConfig(
            linger_s=0.001, trace_path=str(tmp_path / "spans.jsonl")
        )
        [(status, _, _, headers)] = _exchange_sync(
            config, [("POST", "/v1/characterize", _BODY, None)]
        )
        assert status == 200
        spans = load_spans(config.trace_path)
        trace_id = headers["X-Repro-Trace-Id"]
        assert all(s["trace_id"] == trace_id for s in spans)
        by_name = {s["name"]: s for s in spans}
        assert {"serve.request", "serve.cache", "serve.kernel"} <= set(by_name)
        root = by_name["serve.request"]
        assert root["parent_id"] is None
        assert root["meta"]["endpoint"] == "characterize"
        assert root["meta"]["status"] == 200
        assert set(root["meta"]["timings"]) >= {"kernel_s", "other_s"}
        # Children hang off the request span.
        assert by_name["serve.cache"]["parent_id"] == root["span_id"]
        assert by_name["serve.cache"]["meta"]["outcome"] == "miss"

    def test_cache_hit_span(self, metrics_registry, tmp_path):
        config = ServeConfig(
            linger_s=0.001, trace_path=str(tmp_path / "spans.jsonl")
        )
        responses = _exchange_sync(config, [
            ("POST", "/v1/characterize", _BODY, None),
            ("POST", "/v1/characterize", _BODY, None),
        ])
        assert [r[0] for r in responses] == [200, 200]
        spans = load_spans(config.trace_path)
        second_id = responses[1][3]["X-Repro-Trace-Id"]
        hit = next(
            s for s in spans
            if s["name"] == "serve.cache" and s["trace_id"] == second_id
        )
        assert hit["meta"]["outcome"].startswith("hit")

    def test_coalesced_batch_links_member_requests(self, metrics_registry):
        """One burst → one ``serve.kernel`` span whose links name every
        member request span it served."""

        async def _go(server):
            # Distinct matrices: no cache/singleflight dedup, so the
            # burst really coalesces three separate computations.
            bodies = [
                json.dumps({
                    "matrix": (np.asarray(_MATRIX) + i).tolist()
                }).encode("utf-8")
                for i in range(3)
            ]
            return await asyncio.gather(*(
                server.exchange("POST", "/v1/characterize", body)
                for body in bodies
            ))

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            config = ServeConfig(
                linger_s=0.1, trace_path=f"{tmp}/spans.jsonl"
            )
            responses = _run(_with_server(config, _go))
            assert all(r[0] == 200 for r in responses)
            spans = load_spans(config.trace_path)

        kernel_spans = [s for s in spans if s["name"] == "serve.kernel"]
        batched = max(kernel_spans, key=lambda s: len(s.get("links", [])))
        assert batched["meta"]["batch_size"] == 3
        linked_traces = {l["trace_id"] for l in batched["links"]}
        member_traces = {r[3]["X-Repro-Trace-Id"] for r in responses}
        assert linked_traces == member_traces

    def test_untraced_server_emits_nothing(self, metrics_registry, tmp_path):
        _exchange_sync(
            ServeConfig(linger_s=0.001),
            [("POST", "/v1/characterize", _BODY, None)],
        )
        assert list(tmp_path.iterdir()) == []


class TestDebugTimings:
    def _payload(self, debug=True):
        return json.dumps(
            {"matrix": _MATRIX, "debug_timings": debug}
        ).encode("utf-8")

    def test_breakdown_sums_to_total(self, metrics_registry):
        [(status, _, body, headers)] = _exchange_sync(
            ServeConfig(linger_s=0.001),
            [("POST", "/v1/characterize", self._payload(), None)],
        )
        assert status == 200
        debug = json.loads(body)["debug"]
        assert debug["trace_id"] == headers["X-Repro-Trace-Id"]
        total = debug["total_s"]
        attributed = sum(debug["timings"].values())
        assert attributed == pytest.approx(total, rel=0.05)
        assert debug["timings"]["kernel_s"] > 0

    def test_debug_flag_is_not_part_of_cache_identity(
        self, metrics_registry
    ):
        """debug and no-debug answers share one cached computation and
        identical result bytes — the debug section is injected after
        the cache, so cached bytes stay bit-identical."""
        responses = _exchange_sync(ServeConfig(linger_s=0.001), [
            ("POST", "/v1/characterize", self._payload(False), None),
            ("POST", "/v1/characterize", self._payload(True), None),
            ("POST", "/v1/characterize", self._payload(False), None),
        ])
        assert [r[0] for r in responses] == [200, 200, 200]
        plain_1 = json.loads(responses[0][2])
        debugged = json.loads(responses[1][2])
        plain_2 = json.loads(responses[2][2])
        assert "debug" not in plain_1
        assert "debug" in debugged
        assert plain_1["result"] == debugged["result"] == plain_2["result"]
        # The cached bytes were untouched by the debug answer in between.
        assert responses[0][2] == responses[2][2]

    def test_tracing_never_changes_served_bytes(self, metrics_registry):
        """Bit-identity: the same request answers with identical body
        bytes whether span emission is on or off."""
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            [traced] = _exchange_sync(
                ServeConfig(linger_s=0.001, trace_path=f"{tmp}/s.jsonl"),
                [("POST", "/v1/characterize", _BODY, None)],
            )
        [untraced] = _exchange_sync(
            ServeConfig(linger_s=0.001),
            [("POST", "/v1/characterize", _BODY, None)],
        )
        assert traced[0] == untraced[0] == 200
        assert traced[2] == untraced[2]


class TestSlowLogAndExemplars:
    def test_slow_request_is_logged_with_breakdown(
        self, metrics_registry, tmp_path
    ):
        config = ServeConfig(
            linger_s=0.001,
            slow_log_path=str(tmp_path / "slow.jsonl"),
            slow_threshold_ms=0.0,  # everything is "slow"
        )
        [(status, _, _, headers)] = _exchange_sync(
            config, [("POST", "/v1/characterize", _BODY, None)]
        )
        assert status == 200
        [record] = [
            json.loads(line)
            for line in (tmp_path / "slow.jsonl").read_text().splitlines()
        ]
        assert record["type"] == "slow_request"
        assert record["trace_id"] == headers["X-Repro-Trace-Id"]
        assert record["endpoint"] == "characterize"
        assert record["status"] == 200
        assert record["total_s"] > 0
        assert sum(record["timings"].values()) == pytest.approx(
            record["total_s"], rel=0.05
        )

    def test_fast_requests_stay_out_of_the_slow_log(
        self, metrics_registry, tmp_path
    ):
        config = ServeConfig(
            linger_s=0.001,
            slow_log_path=str(tmp_path / "slow.jsonl"),
            slow_threshold_ms=60_000.0,
        )
        [(status, *_)] = _exchange_sync(
            config, [("POST", "/v1/characterize", _BODY, None)]
        )
        assert status == 200
        # Lazily-opened sink: nothing logged means nothing created.
        assert not (tmp_path / "slow.jsonl").exists()

    def test_latency_histogram_carries_trace_exemplar(
        self, metrics_registry
    ):
        [(status, _, _, headers)] = _exchange_sync(
            ServeConfig(linger_s=0.001),
            [("POST", "/v1/characterize", _BODY, None)],
        )
        assert status == 200
        text = render_prometheus(metrics_registry)
        trace_id = headers["X-Repro-Trace-Id"]
        exemplar_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_serve_request_seconds_bucket")
            and f'# {{trace_id="{trace_id}"}}' in line
        ]
        assert len(exemplar_lines) == 1

    def test_scrapes_get_their_own_families(self, metrics_registry):
        responses = _exchange_sync(ServeConfig(linger_s=0.001), [
            ("GET", "/metrics", b"", None),
            ("GET", "/healthz", b"", None),
            ("GET", "/metrics", b"", None),
        ])
        assert [r[0] for r in responses] == [200, 200, 200]
        text = responses[-1][2].decode("utf-8")
        assert 'repro_serve_scrapes_total{kind="metrics"' in text
        assert 'repro_serve_scrapes_total{kind="healthz"' in text
        # Scrape traffic never lands in the serving latency histogram
        # the adaptive admission estimator reads.
        assert 'repro_serve_request_seconds' not in text or (
            'endpoint="metrics"' not in text
            and 'endpoint="healthz"' not in text
        )

    def test_stop_closes_the_sinks(self, metrics_registry, tmp_path):
        config = ServeConfig(
            linger_s=0.001,
            trace_path=str(tmp_path / "spans.jsonl"),
            slow_log_path=str(tmp_path / "slow.jsonl"),
        )

        async def _go(server):
            await server.exchange("POST", "/v1/characterize", _BODY)
            return server

        server = _run(_with_server(config, _go))
        assert server.tracer.sink._handle is None
        assert server.slow_log._handle is None
