"""Open-loop overload chaos drill: shed cleanly, never crash or corrupt.

The server under test is deliberately tiny (admission limit 2, queue
depth 4, fixed — no AIMD) so a Poisson arrival stream at several times
its capacity reliably forces shedding.  The properties:

* every request gets an answer (no crash, no hang, no dropped socket);
* every rejection is a *well-formed* 503 — structured category,
  ``Retry-After`` header, ``retry_after_s`` body hint;
* accepted requests keep a bounded latency (the bounded queue is the
  bound — nothing waits behind an unbounded backlog);
* accepted responses are **bit-identical** to an unloaded replay of
  the same trace — load changes who gets served, never what they get;
* the server stays healthy (``/healthz`` ok) after the storm.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ServeConfig, ServerThread
from repro.serve.loadgen import (
    generate_trace,
    http_exchange,
    overload_drill,
    replay_trace,
)

pytestmark = pytest.mark.slow


@pytest.fixture
def tiny_server(metrics_registry):
    """A server with almost no headroom: overload is easy to provoke."""
    handle = ServerThread(
        ServeConfig(
            port=0,
            linger_s=0.001,
            max_inflight=2,
            queue_depth=4,
            adaptive=False,
            cache_entries=256,
        )
    )
    host, port = handle.start()
    yield host, port
    handle.stop()


@pytest.fixture
def roomy_server(metrics_registry):
    """A generously provisioned server: the unloaded reference."""
    handle = ServerThread(
        ServeConfig(port=0, linger_s=0.001, cache_entries=256)
    )
    host, port = handle.start()
    yield host, port
    handle.stop()


class TestOverloadDrill:
    def test_storm_sheds_cleanly(self, tiny_server):
        host, port = tiny_server
        drill = overload_drill(
            host,
            port,
            multiplier=10.0,
            requests=64,
            seed=3,
            capacity_hz=500.0,  # forced: the drill offers 5000 req/s
            deadline_ms=5000.0,
        )
        report = drill["report"]
        # No crash, no hang: every request came back with a status.
        assert len(report.outcomes) == 64
        statuses = {o.status for o in report.outcomes}
        assert statuses <= {200, 503}  # zero 5xx-other-than-503
        # The storm actually overloaded the server, and it shed.
        assert len(report.shed) > 0
        assert len(report.ok) > 0
        # Every rejection is well-formed: category + header + body hint.
        assert len(report.malformed) == 0
        for outcome in report.shed:
            assert outcome.category in (
                "queue-full", "deadline-exceeded", "draining"
            )
            assert outcome.retry_after_s is not None
            assert outcome.retry_after_s >= 1.0
        # Accepted requests kept a bounded latency: the worst case is
        # the bounded queue ahead of them, far under the 30s timeout.
        accepted = report.accepted_percentiles()
        assert accepted["accepted_p99_ms"] is not None
        assert accepted["accepted_p99_ms"] < 10_000

    def test_server_healthy_after_the_storm(self, tiny_server):
        host, port = tiny_server
        overload_drill(
            host,
            port,
            multiplier=8.0,
            requests=32,
            seed=5,
            capacity_hz=500.0,
        )

        async def _probe():
            return await http_exchange(host, port, "GET", "/healthz", b"")

        status, _, body = asyncio.run(_probe())
        assert status == 200
        result = json.loads(body)["result"]
        assert result["status"] == "ok"  # fixed limit: never "degraded"
        assert result["ready"] is True
        admission = result["admission"]["characterize"]
        assert admission["shed"] + admission["admitted"] > 0
        assert admission["inflight"] == 0  # nothing leaked a slot

    def test_accepted_results_bit_identical_under_load(
        self, tiny_server, roomy_server
    ):
        # No deadlines here: a deadline can legitimately freeze a
        # result as a partial outcome, which would break byte equality.
        trace = generate_trace(
            requests=48,
            seed=17,
            duplicate_fraction=0.0,
            perturb_fraction=0.3,
            rate_hz=5000.0,
        )
        loaded = replay_trace(
            trace, *tiny_server, time_scale=1.0, timeout_s=60.0
        )
        unloaded = replay_trace(
            trace, *roomy_server, time_scale=0.0, timeout_s=60.0
        )
        assert all(o.status == 200 for o in unloaded.outcomes)
        reference = {o.index: o.digest for o in unloaded.outcomes}
        compared = 0
        for outcome in loaded.ok:
            assert outcome.digest == reference[outcome.index]
            compared += 1
        assert compared > 0


class TestDeadlineOverTheWire:
    def test_doomed_deadline_is_shed_with_headers(self, tiny_server):
        host, port = tiny_server
        body = json.dumps(
            {"matrix": [[1.0, 2.0], [3.0, 4.0]], "deadline_ms": 0.001}
        ).encode("utf-8")

        async def _post():
            return await http_exchange(
                host, port, "POST", "/v1/characterize", body
            )

        status, headers, answer = asyncio.run(_post())
        assert status == 503
        assert int(headers["retry-after"]) >= 1
        error = json.loads(answer)["error"]
        assert error["category"] == "deadline-exceeded"
        assert error["retry_after_s"] > 0
