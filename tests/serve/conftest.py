"""Shared serving-test fixtures: a live server plus an isolated registry.

Every fixture collects metrics into a *fresh* :class:`MetricsRegistry`
(swapped in as the process default for the test's duration), so the
serving assertions — "exactly one kernel invocation", "zero kernel work
on a cache hit" — read real counters without cross-test bleed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

import pytest

from repro.obs.metrics import MetricsRegistry, collecting_metrics
from repro.serve import ServeConfig, ServerThread
from repro.serve.loadgen import http_request


@pytest.fixture
def metrics_registry():
    registry = MetricsRegistry()
    with collecting_metrics(registry):
        yield registry


def kernel_invocations(registry, endpoint: str = "characterize") -> float:
    return registry.counter(
        "repro_serve_kernel_invocations_total", labelnames=("endpoint",)
    ).value(endpoint=endpoint)


def cache_events(registry, event: str) -> float:
    return registry.counter(
        "repro_serve_cache_events_total", labelnames=("event",)
    ).value(event=event)


def quarantined_total(registry, endpoint: str, category: str) -> float:
    return registry.counter(
        "repro_serve_quarantined_total",
        labelnames=("endpoint", "category"),
    ).value(endpoint=endpoint, category=category)


def batch_size_snapshot(registry, endpoint: str = "characterize") -> dict:
    from repro.obs.metrics import BATCH_SIZE_BUCKETS

    return registry.histogram(
        "repro_serve_coalesce_batch_size",
        labelnames=("endpoint",),
        buckets=BATCH_SIZE_BUCKETS,
    ).snapshot(endpoint=endpoint)


@dataclass
class LiveServer:
    """A running service plus the registry its metrics land in."""

    host: str
    port: int
    registry: MetricsRegistry
    handle: ServerThread

    def request(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, bytes]:
        return asyncio.run(
            http_request(self.host, self.port, method, path, body)
        )

    def post_json(self, endpoint: str, payload) -> tuple[int, bytes]:
        body = json.dumps(payload, allow_nan=True).encode("utf-8")
        return self.request("POST", f"/v1/{endpoint}", body)

    def post_many(self, requests) -> list[tuple[int, bytes]]:
        """Issue ``(endpoint, payload)`` pairs concurrently (one burst)."""

        async def _run():
            async def _one(endpoint, payload):
                body = json.dumps(payload, allow_nan=True).encode("utf-8")
                return await http_request(
                    self.host, self.port, "POST", f"/v1/{endpoint}", body
                )

            return await asyncio.gather(
                *(_one(endpoint, payload) for endpoint, payload in requests)
            )

        return asyncio.run(_run())


@pytest.fixture
def live_server(metrics_registry):
    # A generous linger so a test's concurrent burst reliably lands in
    # one coalescing window even on a loaded CI box.
    handle = ServerThread(
        ServeConfig(port=0, linger_s=0.05, cache_entries=64)
    )
    host, port = handle.start()
    yield LiveServer(
        host=host, port=port, registry=metrics_registry, handle=handle
    )
    handle.stop()
