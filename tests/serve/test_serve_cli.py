"""CLI surface of the service: serve/loadgen subcommands and the
port-in-use regression (satellite 4): a taken port must produce a
one-line actionable error and a non-zero exit, never a raw OSError
traceback or the generic ``error: [Errno 98] ...`` dump.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.cli import main


@pytest.fixture
def taken_port():
    """A listening socket the CLI under test will collide with."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    yield sock.getsockname()[1]
    sock.close()


class TestPortInUse:
    def test_serve_on_taken_port_is_actionable(self, taken_port, capsys):
        rc = main(["serve", "--host", "127.0.0.1", "--port", str(taken_port)])
        captured = capsys.readouterr()
        assert rc == 2
        message = captured.err.strip()
        assert message.count("\n") == 0  # one line, no traceback
        assert f"127.0.0.1:{taken_port}" in message
        assert "already in use" in message
        assert "--port" in message  # tells the operator what to do

    def test_serve_metrics_on_taken_port_is_actionable(
        self, taken_port, capsys
    ):
        rc = main(
            ["serve-metrics", "--host", "127.0.0.1", "--port", str(taken_port)]
        )
        captured = capsys.readouterr()
        assert rc == 2
        message = captured.err.strip()
        assert message.count("\n") == 0
        assert f"127.0.0.1:{taken_port}" in message
        assert "already in use" in message
        assert "--port" in message

    def test_raw_errno_dump_is_gone(self, taken_port, capsys):
        main(["serve", "--host", "127.0.0.1", "--port", str(taken_port)])
        captured = capsys.readouterr()
        assert "Errno" not in captured.err


class TestLoadgenCli:
    def test_generate_writes_a_valid_trace(self, tmp_path, capsys):
        from repro.serve import load_trace

        out = tmp_path / "trace.jsonl"
        rc = main(
            [
                "loadgen",
                "generate",
                "-o",
                str(out),
                "--requests",
                "12",
                "--seed",
                "3",
                "--tasks",
                "4",
                "--machines",
                "5",
            ]
        )
        assert rc == 0
        assert "wrote 12 request(s)" in capsys.readouterr().out
        trace = load_trace(out)
        assert len(trace) == 12

    def test_generate_rejects_bad_fractions(self, tmp_path, capsys):
        rc = main(
            [
                "loadgen",
                "generate",
                "-o",
                str(tmp_path / "t.jsonl"),
                "--duplicate-fraction",
                "0.9",
                "--perturb-fraction",
                "0.9",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_against_live_server(self, tmp_path, capsys, live_server):
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "loadgen",
                    "generate",
                    "-o",
                    str(out),
                    "--requests",
                    "8",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(
            [
                "loadgen",
                "replay",
                str(out),
                "--host",
                live_server.host,
                "--port",
                str(live_server.port),
                "--time-scale",
                "0",
                "--json",
            ]
        )
        assert rc == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["requests"] == 8
        assert digest["ok"] == 8
        assert digest["p99_ms"] >= digest["p50_ms"]

    def test_replay_connection_refused_is_actionable(
        self, tmp_path, capsys
    ):
        out = tmp_path / "trace.jsonl"
        main(["loadgen", "generate", "-o", str(out), "--requests", "2"])
        capsys.readouterr()
        # An ephemeral port nobody is listening on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        rc = main(
            [
                "loadgen",
                "replay",
                str(out),
                "--port",
                str(free_port),
                "--time-scale",
                "0",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "nothing is listening" in captured.err
        assert "repro-hc serve" in captured.err

    def test_replay_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        rc = main(["loadgen", "replay", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestServeHelp:
    def test_serve_appears_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        text = capsys.readouterr().out
        assert "serve" in text
        assert "loadgen" in text
