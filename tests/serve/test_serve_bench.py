"""The ``serve_latency`` bench case and its BENCH payload record."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    BENCH_CASES,
    compare_bench,
    run_bench,
    validate_bench,
    write_bench,
)


class TestServeLatencyCase:
    def test_case_is_registered(self):
        assert "serve_latency" in BENCH_CASES

    @pytest.fixture(scope="class")
    def payload(self):
        return run_bench(
            quick=True, benchmarks=["serve_latency"], repeats=1
        )

    def test_payload_validates(self, payload):
        validate_bench(payload)

    def test_extra_records_the_three_path_percentiles(self, payload):
        extra = payload["benchmarks"]["serve_latency"]["extra"]
        assert set(extra) == {"cold", "coalesced", "cache_hit"}
        for stats in extra.values():
            assert stats["n"] >= 1
            assert 0 < stats["p50_ms"] <= stats["p99_ms"]

    def test_serve_metrics_land_in_the_snapshot(self, payload):
        families = set(payload["metrics"])
        assert "repro_serve_requests_total" in families
        assert "repro_serve_kernel_invocations_total" in families
        assert "repro_serve_coalesce_batch_size" in families

    def test_payload_roundtrips_through_write(self, payload, tmp_path):
        path = write_bench(payload, path=tmp_path / "BENCH_X.json")
        reloaded = json.loads(path.read_text())
        assert (
            reloaded["benchmarks"]["serve_latency"]["extra"]
            == payload["benchmarks"]["serve_latency"]["extra"]
        )

    def test_compare_gates_on_wall_time(self, payload):
        comparison = compare_bench(
            payload, payload, max_regression=0.15
        )
        assert comparison.ok
        slowed = json.loads(json.dumps(payload))
        slowed["benchmarks"]["serve_latency"]["wall_s"]["best"] *= 10
        assert not compare_bench(slowed, payload).ok


class TestRunBenchExtraPlumbing:
    def test_non_dict_returns_are_ignored(self):
        payload = run_bench(
            quick=True, benchmarks=["sinkhorn_scalar"], repeats=1
        )
        assert "extra" not in payload["benchmarks"]["sinkhorn_scalar"]
