"""Property tests of the content-addressed cache key (satellite spec).

Three families of guarantees:

* **representation invariance** — the key is a function of the matrix
  *values*: dtype (float32 vs float64), memory order (C vs Fortran) and
  options-dict insertion order never change it;
* **perturbation sensitivity** — changing any single element (by any
  amount that survives the float64 round-trip) changes the key;
* **process stability** — the digest never goes through Python
  ``hash()``, so it is identical across interpreter processes and
  ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.serve import canonical_matrix_bytes, matrix_cache_key

# Finite float32-representable values: exact under the float32 ->
# float64 round-trip, so the dtype-invariance property is well-defined.
_f32_values = st.floats(
    min_value=0.0009765625,  # 2**-10, exactly representable in float32
    max_value=1048576.0,  # 2**20
    allow_nan=False,
    allow_infinity=False,
    width=32,
)

_shapes = st.tuples(
    st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6)
)


def _matrices(dtype=np.float64, elements=_f32_values):
    return _shapes.flatmap(
        lambda shape: npst.arrays(dtype=dtype, shape=shape, elements=elements)
    )


class TestRepresentationInvariance:
    @given(matrix=_matrices(dtype=np.float32))
    def test_dtype_never_changes_the_key(self, matrix):
        as64 = matrix.astype(np.float64)
        assert matrix_cache_key(matrix) == matrix_cache_key(as64)

    @given(matrix=_matrices())
    def test_memory_order_never_changes_the_key(self, matrix):
        fortran = np.asfortranarray(matrix)
        assert matrix_cache_key(matrix) == matrix_cache_key(fortran)

    @given(matrix=_matrices())
    def test_strided_view_never_changes_the_key(self, matrix):
        doubled = np.repeat(matrix, 2, axis=0)[::2]
        assert matrix_cache_key(matrix) == matrix_cache_key(doubled)

    @given(
        matrix=_matrices(),
        tol=st.sampled_from([1e-8, 1e-6, 0.25]),
        policy=st.sampled_from(["quarantine", "repair"]),
    )
    def test_option_insertion_order_never_changes_the_key(
        self, matrix, tol, policy
    ):
        forward = {"tol": tol, "policy": policy}
        backward = {"policy": policy, "tol": tol}
        assert matrix_cache_key(
            matrix, options=forward
        ) == matrix_cache_key(matrix, options=backward)

    @given(matrix=_matrices())
    def test_list_input_matches_array_input(self, matrix):
        assert matrix_cache_key(matrix.tolist()) == matrix_cache_key(matrix)


class TestPerturbationSensitivity:
    @given(
        matrix=_matrices(),
        data=st.data(),
    )
    def test_any_single_element_perturbation_changes_the_key(
        self, matrix, data
    ):
        row = data.draw(
            st.integers(min_value=0, max_value=matrix.shape[0] - 1)
        )
        col = data.draw(
            st.integers(min_value=0, max_value=matrix.shape[1] - 1)
        )
        scale = data.draw(
            st.sampled_from([1 + 2**-40, 1 - 2**-40, 2.0, 0.5])
        )
        perturbed = matrix.copy()
        perturbed[row, col] = matrix[row, col] * scale
        assume(perturbed[row, col] != matrix[row, col])
        assert matrix_cache_key(perturbed) != matrix_cache_key(matrix)

    @given(matrix=_matrices())
    def test_negated_signed_zero_is_a_different_key(self, matrix):
        # -0.0 and 0.0 compare equal but have distinct bit patterns;
        # content addressing is over bits, so they hash apart.  This
        # pins the (documented) bytes-level semantics.
        a = matrix.copy()
        b = matrix.copy()
        a[0, 0] = 0.0
        b[0, 0] = -0.0
        assert matrix_cache_key(a) != matrix_cache_key(b)

    @given(matrix=_matrices())
    def test_shape_is_part_of_the_identity(self, matrix):
        flat = matrix.reshape(1, -1)
        assume(flat.shape != matrix.shape)
        assert matrix_cache_key(flat) != matrix_cache_key(matrix)


class TestProcessStability:
    # Computed once and hard-coded: a changed digest here means every
    # disk-spilled cache entry in the wild silently invalidates, which
    # must be a deliberate CACHE_KEY_VERSION bump, never an accident.
    REFERENCE_KEY = (
        "d41b643dbb48b1eef266e798071cd0958f5d2c39f68040597b1fc76616ff5c63"
    )

    @staticmethod
    def _reference_key_in_subprocess(hash_seed: str) -> str:
        import os

        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        script = (
            "import numpy as np\n"
            "from repro.serve import matrix_cache_key\n"
            "m = np.arange(1.0, 7.0).reshape(2, 3)\n"
            "print(matrix_cache_key(m, endpoint='characterize',"
            " options={'tol': 1e-08}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert out.returncode == 0, out.stderr
        return out.stdout.strip()

    def test_key_matches_reference_in_this_process(self):
        matrix = np.arange(1.0, 7.0).reshape(2, 3)
        assert (
            matrix_cache_key(
                matrix, endpoint="characterize", options={"tol": 1e-08}
            )
            == self.REFERENCE_KEY
        )

    @pytest.mark.parametrize("hash_seed", ["0", "1", "12345"])
    def test_key_is_stable_across_hash_randomization(self, hash_seed):
        assert (
            self._reference_key_in_subprocess(hash_seed)
            == self.REFERENCE_KEY
        )

    def test_canonical_bytes_carry_shape_header(self):
        blob = canonical_matrix_bytes(np.ones((2, 3)))
        assert blob.startswith(b"2x3;")
        assert len(blob) == len(b"2x3;") + 6 * 8

    @given(options=st.dictionaries(
        st.sampled_from(["tol", "policy", "max_iterations", "tma_fallback"]),
        st.one_of(st.floats(allow_nan=False), st.text(max_size=8),
                  st.integers()),
        max_size=4,
    ))
    @settings(max_examples=25)
    def test_options_canonicalization_is_json_stable(self, options):
        from repro.serve import canonical_options

        rendered = canonical_options(options)
        assert rendered == canonical_options(
            dict(reversed(list(options.items())))
        )
        assert json.loads(rendered) == json.loads(
            json.dumps(options)
        )
