"""Chaos-in-the-loop serving tests (satellite 3).

A faulty matrix inside a coalesced batch must come back as a structured
quarantine error (a stable ``repro.robust`` taxonomy category) to *its*
caller only, while every healthy request sharing the batch succeeds —
and a loadgen trace with injected faults replays cleanly end to end.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.robust.taxonomy import FAULT_CATEGORIES
from repro.serve import CharacterizationServer, ServeConfig
from repro.serve.loadgen import generate_trace, replay_trace

from .conftest import kernel_invocations, quarantined_total


def _nan_matrix(shape=(4, 4)):
    matrix = np.ones(shape)
    matrix[0, 0] = np.nan
    return matrix


class TestFaultInCoalescedBatch:
    def _burst(self, server, matrices):
        async def main():
            return await asyncio.gather(
                *(
                    server.dispatch(
                        "POST",
                        "/v1/characterize",
                        json.dumps(
                            {"matrix": m}, allow_nan=True
                        ).encode(),
                    )
                    for m in matrices
                )
            )

        return asyncio.run(main())

    def test_faulty_member_gets_422_healthy_members_succeed(
        self, metrics_registry
    ):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.05, enable_metrics=False)
        )
        rng = np.random.default_rng(41)
        healthy = [rng.uniform(0.5, 10.0, (4, 4)).tolist() for _ in range(4)]
        faulty = _nan_matrix().tolist()
        responses = self._burst(server, healthy + [faulty])

        statuses = [status for status, _, _ in responses]
        assert statuses[:4] == [200, 200, 200, 200]
        assert statuses[4] == 422
        error = json.loads(responses[4][2])["error"]
        assert error["category"] == "nan"
        assert "NaN" in error["message"]
        # The whole burst (healthy + faulty) shared ONE kernel batch:
        # quarantine cost zero extra invocations.
        assert kernel_invocations(metrics_registry, "characterize") == 1
        assert (
            quarantined_total(metrics_registry, "characterize", "nan") == 1
        )

    def test_empty_line_fault_category(self, metrics_registry):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.01, enable_metrics=False)
        )
        matrix = np.ones((4, 4))
        matrix[2, :] = 0.0
        (response,) = self._burst(server, [matrix.tolist()])
        status, _, body = response
        assert status == 422
        assert json.loads(body)["error"]["category"] == "empty-line"

    def test_faults_are_never_cached(self, metrics_registry):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.01, enable_metrics=False)
        )
        faulty = _nan_matrix().tolist()
        first = self._burst(server, [faulty])
        second = self._burst(server, [faulty])
        assert first[0][0] == second[0][0] == 422
        # The retry recomputed (2 kernel invocations), because a fixed
        # upstream would otherwise keep hitting a stale error.
        assert kernel_invocations(metrics_registry, "characterize") == 2

    def test_standardize_quarantines_too(self, metrics_registry):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.01, enable_metrics=False)
        )

        async def main():
            return await server.dispatch(
                "POST",
                "/v1/standardize",
                json.dumps(
                    {"matrix": _nan_matrix().tolist()}, allow_nan=True
                ).encode(),
            )

        status, _, body = asyncio.run(main())
        assert status == 422
        assert json.loads(body)["error"]["category"] == "nan"


class TestChaosTraceReplay:
    def test_faulty_trace_replays_with_structured_errors(self, live_server):
        trace = generate_trace(
            requests=24,
            seed=5,
            shape=(5, 5),
            faults="nan=3,zero-row=2",
            fault_seed=7,
            endpoint_mix={"characterize": 1.0},
        )
        report = replay_trace(
            trace, live_server.host, live_server.port, time_scale=0.0
        )
        assert len(report.outcomes) == 24
        # Every injected fault came back as a structured quarantine
        # error with a taxonomy category; everything else succeeded.
        assert len(report.errors) == 5
        assert len(report.ok) == 19
        for outcome in report.errors:
            assert outcome.status == 422
            assert outcome.category in FAULT_CATEGORIES
        categories = report.by_category()
        assert categories.get("nan") == 3
        assert categories.get("empty-line") == 2

    def test_healthy_trace_is_fault_free(self, live_server):
        trace = generate_trace(
            requests=16, seed=6, shape=(4, 4), rate_hz=500.0
        )
        report = replay_trace(
            trace, live_server.host, live_server.port, time_scale=0.0
        )
        assert len(report.errors) == 0
        digest = report.to_payload()
        assert digest["ok"] == 16
        assert digest["p99_ms"] >= digest["p50_ms"] > 0
