"""Request validation and the deterministic wire encoding."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.serve import (
    ENDPOINTS,
    SCHEMA,
    ProtocolError,
    decode_json,
    encode_json,
    error_body,
    json_safe,
    parse_request,
    result_body,
)


def _payload(matrix=None, **options):
    payload = {"matrix": matrix if matrix is not None else [[1.0, 2.0], [3.0, 4.0]]}
    payload.update(options)
    return payload


class TestParseRequest:
    def test_accepts_every_documented_endpoint(self):
        for endpoint in ENDPOINTS:
            request = parse_request(endpoint, _payload())
            assert request.endpoint == endpoint
            assert request.shape == (2, 2)

    def test_matrix_is_float64_c_contiguous(self):
        request = parse_request("characterize", _payload())
        assert request.matrix.dtype == np.float64
        assert request.matrix.flags["C_CONTIGUOUS"]

    def test_unknown_endpoint_is_404(self):
        with pytest.raises(ProtocolError) as err:
            parse_request("summarize", _payload())
        assert err.value.status == 404

    def test_non_dict_document_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request("characterize", [1, 2, 3])

    def test_missing_matrix_rejected(self):
        with pytest.raises(ProtocolError, match="matrix"):
            parse_request("characterize", {"tol": 1e-8})

    @pytest.mark.parametrize(
        "matrix",
        [
            [],
            [[]],
            [1.0, 2.0],
            [[[1.0]]],
            [[1.0, "x"], [2.0, 3.0]],
            "matrix",
        ],
    )
    def test_malformed_matrices_rejected(self, matrix):
        with pytest.raises(ProtocolError):
            parse_request("characterize", _payload(matrix=matrix))

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(
                "characterize", _payload(matrix=[[1.0, 2.0], [3.0]])
            )

    def test_nan_matrix_is_accepted_by_the_protocol(self):
        # NaN is a *fault taxonomy* concern (the robust pipeline turns
        # it into a structured `nan` quarantine error), not a protocol
        # violation — the request must parse.
        request = parse_request(
            "characterize",
            _payload(matrix=[[1.0, float("nan")], [1.0, 1.0]]),
        )
        assert math.isnan(request.matrix[0, 1])

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError, match="unknown option"):
            parse_request("characterize", _payload(linger=3))

    def test_options_are_per_endpoint(self):
        parse_request("standardize", _payload(max_iterations=10))
        with pytest.raises(ProtocolError, match="unknown option"):
            parse_request("characterize", _payload(max_iterations=10))

    @pytest.mark.parametrize("tol", [0.0, -1e-8, 1.5, "tight", float("nan")])
    def test_bad_tol_rejected(self, tol):
        with pytest.raises(ProtocolError):
            parse_request("characterize", _payload(tol=tol))

    @pytest.mark.parametrize("policy", ["raise", "drop", 3])
    def test_bad_policy_rejected(self, policy):
        with pytest.raises(ProtocolError):
            parse_request("characterize", _payload(policy=policy))

    @pytest.mark.parametrize("policy", ["quarantine", "repair"])
    def test_good_policy_accepted(self, policy):
        request = parse_request("characterize", _payload(policy=policy))
        assert request.options["policy"] == policy

    def test_bad_tma_fallback_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request("characterize", _payload(tma_fallback="guess"))

    @pytest.mark.parametrize("value", [0, -3, 2.5, "many"])
    def test_bad_max_iterations_rejected(self, value):
        with pytest.raises(ProtocolError):
            parse_request("standardize", _payload(max_iterations=value))


class TestEncoding:
    def test_encode_is_deterministic_and_sorted(self):
        a = encode_json({"b": 1, "a": 2})
        b = encode_json({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}\n'

    def test_encode_scrubs_nan_to_null(self):
        # Strict-JSON clients never see a bare NaN token.
        assert encode_json({"x": float("nan")}) == b'{"x":null}\n'

    def test_json_safe_scrubs_non_finite_and_numpy(self):
        cleaned = json_safe(
            {
                "nan": float("nan"),
                "inf": np.float64("inf"),
                "x": np.float64(1.5),
                "n": np.int64(3),
                "flag": np.bool_(True),
                "nested": [np.float64("-inf"), {"y": np.float64(2.0)}],
            }
        )
        assert cleaned == {
            "nan": None,
            "inf": None,
            "x": 1.5,
            "n": 3,
            "flag": True,
            "nested": [None, {"y": 2.0}],
        }

    def test_decode_json_bad_bytes(self):
        with pytest.raises(ProtocolError):
            decode_json(b"{not json")

    def test_result_body_roundtrip(self):
        body = result_body("characterize", {"mph": 0.5})
        document = json.loads(body)
        assert document == {
            "schema": SCHEMA,
            "endpoint": "characterize",
            "result": {"mph": 0.5},
        }

    def test_error_body_shape(self):
        document = json.loads(error_body("standardize", "nan", "bad data"))
        assert document["schema"] == SCHEMA
        assert document["error"] == {"category": "nan", "message": "bad data"}
