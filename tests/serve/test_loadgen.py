"""Trace generation, persistence, determinism and the replay client."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.serve import (
    TRACE_SCHEMA,
    TraceRequest,
    generate_trace,
    latency_study,
    load_trace,
    percentile,
    save_trace,
)


class TestGenerate:
    def test_same_seed_same_trace(self):
        a = generate_trace(requests=32, seed=9)
        b = generate_trace(requests=32, seed=9)
        assert [r.to_record() for r in a] == [r.to_record() for r in b]

    def test_different_seed_different_trace(self):
        a = generate_trace(requests=16, seed=1)
        b = generate_trace(requests=16, seed=2)
        assert [r.to_record() for r in a] != [r.to_record() for r in b]

    def test_offsets_are_monotonic(self):
        trace = generate_trace(requests=32, seed=3, rate_hz=100.0)
        offsets = [r.offset_s for r in trace]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0

    def test_shape_and_endpoints(self):
        trace = generate_trace(requests=40, seed=4, shape=(3, 7))
        endpoints = {r.endpoint for r in trace}
        assert endpoints <= {
            "characterize",
            "standardize",
            "recommend-heuristic",
        }
        for request in trace:
            matrix = np.asarray(request.payload["matrix"])
            assert matrix.shape == (3, 7)

    def test_duplicates_exist_for_cache_pressure(self):
        trace = generate_trace(
            requests=64, seed=5, duplicate_fraction=0.5, perturb_fraction=0.0
        )
        rendered = [json.dumps(r.payload["matrix"]) for r in trace]
        assert len(set(rendered)) < len(rendered)

    def test_endpoint_mix_is_respected(self):
        trace = generate_trace(
            requests=20, seed=6, endpoint_mix={"standardize": 1.0}
        )
        assert {r.endpoint for r in trace} == {"standardize"}

    def test_fault_injection_corrupts_a_seeded_subset(self):
        trace = generate_trace(
            requests=16, seed=7, faults="nan=2", fault_seed=3
        )
        nan_requests = [
            r
            for r in trace
            if np.isnan(np.asarray(r.payload["matrix"])).any()
        ]
        assert len(nan_requests) == 2
        again = generate_trace(
            requests=16, seed=7, faults="nan=2", fault_seed=3
        )
        # NaN != NaN, so compare the serialized text (NaN renders as a
        # stable token) rather than the raw records.
        assert [json.dumps(r.to_record()) for r in trace] == [
            json.dumps(r.to_record()) for r in again
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"duplicate_fraction": 0.7, "perturb_fraction": 0.7},
            {"endpoint_mix": {"characterize": -1.0}},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            generate_trace(seed=0, **kwargs)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(requests=12, seed=8)
        path = save_trace(trace, tmp_path / "t.jsonl")
        loaded = load_trace(path)
        assert [r.to_record() for r in loaded] == [
            r.to_record() for r in trace
        ]

    def test_roundtrip_preserves_nan_faults(self, tmp_path):
        trace = generate_trace(requests=8, seed=9, faults="nan=1")
        loaded = load_trace(save_trace(trace, tmp_path / "t.jsonl"))
        nans = [
            r
            for r in loaded
            if np.isnan(np.asarray(r.payload["matrix"])).any()
        ]
        assert len(nans) == 1

    def test_header_carries_schema(self, tmp_path):
        path = save_trace(
            generate_trace(requests=3, seed=1), tmp_path / "t.jsonl"
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"schema": TRACE_SCHEMA, "requests": 3}

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"offset_s": 0.1}\n')
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)

    def test_bad_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "requests": 1})
            + "\n{oops\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "requests": 1})
            + "\n"
            + json.dumps({"endpoint": "characterize"})
            + "\n"
        )
        with pytest.raises(ValueError, match="malformed trace record"):
            load_trace(path)


class TestPercentile:
    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestReplayAndStudy:
    def test_replay_collects_latencies(self, live_server):
        trace = generate_trace(requests=10, seed=10, shape=(4, 4))
        from repro.serve import replay_trace

        report = replay_trace(
            trace, live_server.host, live_server.port, time_scale=0.0
        )
        assert len(report.outcomes) == 10
        assert all(o.latency_s > 0 for o in report.outcomes)
        assert math.isfinite(report.percentiles()["p99_ms"])
        assert "latency p50=" in report.summary()

    def test_latency_study_covers_the_three_paths(self, live_server):
        study = latency_study(
            live_server.host,
            live_server.port,
            cold=3,
            coalesce_width=4,
            cache_repeats=4,
            seed=11,
        )
        assert set(study) == {"cold", "coalesced", "cache_hit"}
        for path, stats in study.items():
            assert stats["n"] >= 3
            assert 0 < stats["p50_ms"] <= stats["p99_ms"]
        # Cache hits never touch a kernel; they must be the fastest
        # path by a wide margin.
        assert study["cache_hit"]["p50_ms"] < study["cold"]["p50_ms"]

    def test_replay_offsets_honour_time_scale_zero(self, live_server):
        # With time_scale=0 every arrival collapses into one burst;
        # wall time must be far below the trace's nominal duration.
        trace = generate_trace(
            requests=8, seed=12, shape=(3, 3), rate_hz=2.0
        )
        from repro.serve import replay_trace

        nominal = trace[-1].offset_s
        report = replay_trace(
            trace, live_server.host, live_server.port, time_scale=0.0
        )
        assert report.wall_s < nominal
