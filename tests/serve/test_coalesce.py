"""Coalescing semantics, and the headline serving guarantee (satellite 1):

N concurrent identical requests produce **exactly one** batched kernel
invocation — asserted from the ``repro_serve_kernel_invocations_total``
counter, not inferred — and every caller receives bit-identical
response bytes.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serve import (
    CharacterizationServer,
    Coalescer,
    ServeConfig,
    ServeFault,
    ServeRequest,
)

from .conftest import batch_size_snapshot, cache_events, kernel_invocations


def _request(matrix, **options) -> ServeRequest:
    options.setdefault("tol", 1e-8)
    options.setdefault("policy", "quarantine")
    return ServeRequest(
        endpoint="characterize",
        matrix=np.ascontiguousarray(matrix, dtype=np.float64),
        options=options,
    )


class CountingRunner:
    """A batch runner that records every invocation it receives."""

    def __init__(self, fail_on=None):
        self.calls: list[list] = []
        self.fail_on = fail_on or set()

    def __call__(self, options, matrices):
        self.calls.append(matrices)
        out = []
        for matrix in matrices:
            total = float(np.sum(matrix))
            if total in self.fail_on:
                out.append(ServeFault("nan", f"injected for sum={total}"))
            else:
                out.append({"sum": total})
        return out


class TestCoalescer:
    def test_concurrent_same_shape_requests_share_one_batch(self):
        runner = CountingRunner()
        coalescer = Coalescer(runner, endpoint="characterize", linger_s=0.02)

        async def main():
            requests = [_request(np.full((3, 4), i + 1.0)) for i in range(6)]
            return await asyncio.gather(
                *(coalescer.submit(r) for r in requests)
            )

        results = asyncio.run(main())
        assert len(runner.calls) == 1
        assert len(runner.calls[0]) == 6
        assert [r.batch_size for r in results] == [6] * 6
        assert sorted(r.payload["sum"] for r in results) == [
            12.0 * i for i in range(1, 7)
        ]
        assert coalescer.batches_flushed == 1
        assert coalescer.requests_coalesced == 6

    def test_different_shapes_never_share_a_batch(self):
        runner = CountingRunner()
        coalescer = Coalescer(runner, endpoint="characterize", linger_s=0.02)

        async def main():
            return await asyncio.gather(
                coalescer.submit(_request(np.ones((2, 2)))),
                coalescer.submit(_request(np.ones((3, 3)))),
            )

        results = asyncio.run(main())
        assert len(runner.calls) == 2
        assert [r.batch_size for r in results] == [1, 1]

    def test_different_options_never_share_a_batch(self):
        runner = CountingRunner()
        coalescer = Coalescer(runner, endpoint="characterize", linger_s=0.02)

        async def main():
            return await asyncio.gather(
                coalescer.submit(_request(np.ones((2, 2)), policy="quarantine")),
                coalescer.submit(_request(np.ones((2, 2)), policy="repair")),
            )

        asyncio.run(main())
        assert len(runner.calls) == 2

    def test_max_batch_flushes_immediately(self):
        runner = CountingRunner()
        coalescer = Coalescer(
            runner, endpoint="characterize", linger_s=10.0, max_batch=3
        )

        async def main():
            # linger is effectively infinite: only the max-batch
            # trigger can flush, bounding latency.
            requests = [_request(np.full((2, 2), i + 1.0)) for i in range(3)]
            return await asyncio.wait_for(
                asyncio.gather(*(coalescer.submit(r) for r in requests)),
                timeout=5.0,
            )

        results = asyncio.run(main())
        assert len(runner.calls) == 1
        assert [r.batch_size for r in results] == [3, 3, 3]

    def test_faulty_member_fails_only_its_caller(self):
        runner = CountingRunner(fail_on={4.0 * 9})  # the all-9s matrix
        coalescer = Coalescer(runner, endpoint="characterize", linger_s=0.02)

        async def main():
            good = coalescer.submit(_request(np.full((2, 2), 1.0)))
            bad = coalescer.submit(_request(np.full((2, 2), 9.0)))
            return await asyncio.gather(good, bad, return_exceptions=True)

        good, bad = asyncio.run(main())
        assert good.payload == {"sum": 4.0}
        assert isinstance(bad, ServeFault)
        assert bad.category == "nan"
        assert len(runner.calls) == 1  # quarantine cost zero extra kernels

    def test_runner_crash_fails_the_whole_batch(self):
        def exploding(options, matrices):
            raise RuntimeError("kernel exploded")

        coalescer = Coalescer(
            exploding, endpoint="characterize", linger_s=0.01
        )

        async def main():
            return await asyncio.gather(
                coalescer.submit(_request(np.ones((2, 2)))),
                coalescer.submit(_request(np.ones((2, 2)) * 2)),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Coalescer(lambda o, m: [], endpoint="x", linger_s=-1.0)
        with pytest.raises(ValueError):
            Coalescer(lambda o, m: [], endpoint="x", max_batch=0)


class TestSingleflightGuarantee:
    """The satellite-1 contract, on the full server pipeline."""

    N = 8

    def _spin(self, server, matrix):
        body = json.dumps({"matrix": matrix}).encode()

        async def main():
            return await asyncio.gather(
                *(
                    server.dispatch("POST", "/v1/characterize", body)
                    for _ in range(self.N)
                )
            )

        return asyncio.run(main())

    def test_identical_concurrent_requests_run_one_kernel(
        self, metrics_registry
    ):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.05, enable_metrics=False)
        )
        matrix = (
            np.random.default_rng(11).uniform(0.5, 10.0, (5, 4)).tolist()
        )
        responses = self._spin(server, matrix)

        statuses = {status for status, _, _ in responses}
        assert statuses == {200}
        # Exactly one batched kernel invocation for all N callers,
        # straight from the metrics counter.
        assert kernel_invocations(metrics_registry, "characterize") == 1
        # ... and the responses are bit-identical.
        bodies = {body for _, _, body in responses}
        assert len(bodies) == 1
        # The N-1 followers joined the in-flight computation; nobody
        # hit the cache (it was empty when they all arrived).
        assert cache_events(metrics_registry, "hit-memory") == 0

    def test_distinct_concurrent_requests_coalesce_into_one_batch(
        self, metrics_registry
    ):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.05, enable_metrics=False)
        )
        rng = np.random.default_rng(12)
        bodies = [
            json.dumps(
                {"matrix": rng.uniform(0.5, 10.0, (5, 4)).tolist()}
            ).encode()
            for _ in range(self.N)
        ]

        async def main():
            return await asyncio.gather(
                *(
                    server.dispatch("POST", "/v1/characterize", body)
                    for body in bodies
                )
            )

        responses = asyncio.run(main())
        assert {status for status, _, _ in responses} == {200}
        assert kernel_invocations(metrics_registry, "characterize") == 1
        snapshot = batch_size_snapshot(metrics_registry, "characterize")
        assert snapshot["count"] == 1
        assert snapshot["sum"] == self.N  # one batch of N distinct matrices
        # Distinct matrices produce distinct measure payloads.
        assert len({body for _, _, body in responses}) == self.N

    def test_repeat_of_identical_burst_is_answered_from_cache(
        self, metrics_registry
    ):
        server = CharacterizationServer(
            ServeConfig(port=0, linger_s=0.05, enable_metrics=False)
        )
        matrix = (
            np.random.default_rng(13).uniform(0.5, 10.0, (4, 4)).tolist()
        )
        first = self._spin(server, matrix)
        invocations_after_first = kernel_invocations(
            metrics_registry, "characterize"
        )
        second = self._spin(server, matrix)
        # Zero additional kernel invocations: the whole second burst was
        # answered from the content-addressed cache.
        assert (
            kernel_invocations(metrics_registry, "characterize")
            == invocations_after_first
            == 1
        )
        assert cache_events(metrics_registry, "hit-memory") == self.N
        assert {b for _, _, b in first} == {b for _, _, b in second}
