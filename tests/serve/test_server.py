"""End-to-end HTTP tests of the characterization service."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.measures.report import characterize
from repro.scheduling.selection import recommend_from_measures
from repro.serve import SCHEMA

from .conftest import cache_events, kernel_invocations


@pytest.fixture
def env_matrix():
    return np.random.default_rng(21).uniform(0.5, 10.0, (6, 5))


class TestEndpoints:
    def test_characterize_matches_the_library(self, live_server, env_matrix):
        status, body = live_server.post_json(
            "characterize", {"matrix": env_matrix.tolist()}
        )
        assert status == 200
        document = json.loads(body)
        assert document["schema"] == SCHEMA
        assert document["endpoint"] == "characterize"
        result = document["result"]
        profile = characterize(env_matrix)
        assert result["mph"] == pytest.approx(profile.mph, rel=1e-9)
        assert result["tdh"] == pytest.approx(profile.tdh, rel=1e-9)
        assert result["tma"] == pytest.approx(profile.tma, rel=1e-6)
        assert result["n_tasks"] == 6
        assert result["n_machines"] == 5
        assert result["converged"] is True

    def test_standardize_returns_a_standard_form(
        self, live_server, env_matrix
    ):
        status, body = live_server.post_json(
            "standardize", {"matrix": env_matrix.tolist()}
        )
        assert status == 200
        result = json.loads(body)["result"]
        standard = np.asarray(result["matrix"])
        assert standard.shape == env_matrix.shape
        assert result["converged"] is True
        # Equal margins: every row sums to row_target, every column to
        # col_target (the standard-form invariant).
        np.testing.assert_allclose(
            standard.sum(axis=1), result["row_target"], rtol=1e-6
        )
        np.testing.assert_allclose(
            standard.sum(axis=0), result["col_target"], rtol=1e-6
        )

    def test_recommend_heuristic_applies_the_rule(
        self, live_server, env_matrix
    ):
        status, body = live_server.post_json(
            "recommend-heuristic", {"matrix": env_matrix.tolist()}
        )
        assert status == 200
        result = json.loads(body)["result"]
        measures = result["measures"]
        name, reason = recommend_from_measures(
            measures["mph"], measures["tdh"], measures["tma"]
        )
        assert result["heuristic"] == name
        assert result["reason"] == reason

    def test_options_are_honoured(self, live_server, env_matrix):
        status, body = live_server.post_json(
            "standardize",
            {"matrix": env_matrix.tolist(), "max_iterations": 2},
        )
        assert status == 200
        result = json.loads(body)["result"]
        assert result["iterations"] <= 2
        assert result["converged"] is False


class TestCachingOverHttp:
    def test_cache_hit_is_bit_identical_with_zero_kernel_work(
        self, live_server, env_matrix
    ):
        payload = {"matrix": env_matrix.tolist()}
        status1, body1 = live_server.post_json("characterize", payload)
        invocations = kernel_invocations(
            live_server.registry, "characterize"
        )
        status2, body2 = live_server.post_json("characterize", payload)
        assert (status1, status2) == (200, 200)
        assert body1 == body2
        assert (
            kernel_invocations(live_server.registry, "characterize")
            == invocations
        )
        assert cache_events(live_server.registry, "hit-memory") >= 1

    def test_different_options_miss_the_cache(self, live_server, env_matrix):
        live_server.post_json("characterize", {"matrix": env_matrix.tolist()})
        before = kernel_invocations(live_server.registry, "characterize")
        live_server.post_json(
            "characterize",
            {"matrix": env_matrix.tolist(), "tol": 1e-6},
        )
        assert (
            kernel_invocations(live_server.registry, "characterize")
            == before + 1
        )


class TestHttpSurface:
    def test_unknown_endpoint_404(self, live_server):
        status, body = live_server.post_json("summarize", {"matrix": [[1.0]]})
        assert status == 404
        assert json.loads(body)["error"]["category"] == "not-found"

    def test_unknown_path_404(self, live_server):
        status, body = live_server.request("GET", "/nope")
        assert status == 404

    def test_get_on_endpoint_405(self, live_server):
        status, body = live_server.request("GET", "/v1/characterize")
        assert status == 405
        assert json.loads(body)["error"]["category"] == "bad-request"

    def test_bad_json_400(self, live_server):
        status, body = live_server.request(
            "POST", "/v1/characterize", b"{not json"
        )
        assert status == 400
        assert json.loads(body)["error"]["category"] == "bad-request"

    def test_validation_error_400(self, live_server):
        status, body = live_server.post_json(
            "characterize", {"matrix": [[1.0, 2.0]], "tol": 7}
        )
        assert status == 400
        assert "tol" in json.loads(body)["error"]["message"]

    def test_oversized_body_413(self, live_server):
        import asyncio

        async def oversized():
            reader, writer = await asyncio.open_connection(
                live_server.host, live_server.port
            )
            writer.write(
                b"POST /v1/characterize HTTP/1.1\r\n"
                b"Content-Length: 99999999999\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw = asyncio.run(oversized())
        assert b"413" in raw.split(b"\r\n", 1)[0]

    def test_healthz_reports_cache_and_coalescer(self, live_server):
        live_server.post_json("characterize", {"matrix": [[1.0, 2.0], [3.0, 4.0]]})
        status, body = live_server.request("GET", "/healthz")
        assert status == 200
        result = json.loads(body)["result"]
        assert result["status"] == "ok"
        assert result["requests_served"] >= 1
        assert "hits_memory" in result["cache"]
        assert result["coalescer"]["characterize"]["batches_flushed"] >= 1

    def test_metrics_scrape_exposes_serve_families(self, live_server):
        live_server.post_json(
            "characterize", {"matrix": [[1.0, 2.0], [3.0, 4.0]]}
        )
        status, body = live_server.request("GET", "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_serve_requests_total" in text
        assert "repro_serve_kernel_invocations_total" in text
        assert "repro_serve_coalesce_batch_size" in text
        assert (
            'repro_serve_requests_total{endpoint="characterize",'
            'status="200"}' in text
        )


class TestConcurrentHttpBurst:
    def test_burst_of_identical_requests_over_real_sockets(
        self, live_server
    ):
        matrix = (
            np.random.default_rng(31).uniform(0.5, 10.0, (5, 5)).tolist()
        )
        before = kernel_invocations(live_server.registry, "characterize")
        responses = live_server.post_many(
            [("characterize", {"matrix": matrix})] * 6
        )
        assert {status for status, _ in responses} == {200}
        assert len({body for _, body in responses}) == 1
        # All six callers shared one batched kernel invocation.
        assert (
            kernel_invocations(live_server.registry, "characterize")
            == before + 1
        )
