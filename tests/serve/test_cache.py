"""ResultCache LRU semantics, disk spill and cache-event metrics."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import ResultCache, matrix_cache_key

from .conftest import cache_events


class TestLru:
    def test_roundtrip(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", b"body")
        assert cache.get("k") == b"body"
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refresh a's recency
        cache.put("c", b"3")  # evicts b, the LRU tail
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("a", b"1*")  # refresh, not insert: nothing evicted
        assert cache.evictions == 0
        assert cache.get("a") == b"1*"

    def test_rejects_non_bytes(self):
        cache = ResultCache(max_entries=2)
        with pytest.raises(TypeError):
            cache.put("a", {"not": "bytes"})

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_thread_safety_smoke(self):
        cache = ResultCache(max_entries=16)

        def worker(tag: int) -> None:
            for i in range(200):
                key = f"k{(tag * 7 + i) % 32}"
                cache.put(key, str(i).encode())
                cache.get(key)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 16


class TestDiskSpill:
    def test_evicted_entry_survives_on_disk(self, tmp_path):
        # Values must parse as JSON: promotes run the plausibility
        # screen that keeps corrupt spills from being served.
        cache = ResultCache(max_entries=1, spill_dir=tmp_path)
        cache.put("aa", b'"first"')
        cache.put("bb", b'"second"')  # evicts aa -> disk
        assert (tmp_path / "aa.json").read_bytes() == b'"first"'
        assert cache.get("aa") == b'"first"'  # disk hit
        assert cache.hits_disk == 1
        # The disk hit promoted aa back into memory (evicting bb).
        assert cache.get("aa") == b'"first"'
        assert cache.hits_memory == 1

    def test_spill_dir_is_created(self, tmp_path):
        target = tmp_path / "nested" / "spill"
        ResultCache(max_entries=1, spill_dir=target)
        assert target.is_dir()

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(max_entries=2, spill_dir=tmp_path)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 2
        assert stats["hits_memory"] == 1
        assert stats["misses"] == 1
        assert stats["spill_dir"] == str(tmp_path)
        assert stats["spill_errors"] == 0
        assert stats["spill_degraded"] is False


class TestSpillDegradation:
    """Disk I/O failures degrade to memory-only; they never fail a get.

    Permission tricks don't work under root, so the unusable-directory
    cases use a regular *file* on the spill path — mkdir/write then
    fail with NotADirectoryError, a plain OSError subclass.
    """

    def test_uncreatable_dir_degrades_at_construction(self, tmp_path):
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache = ResultCache(
                max_entries=1, spill_dir=blocker / "spill"
            )
        assert cache.spill_degraded
        assert cache.spill_dir is None
        # Still a perfectly good memory cache.
        cache.put("a", b"1")
        cache.put("b", b"2")  # evicts a; no spill attempted
        assert cache.get("b") == b"2"
        assert cache.get("a") is None
        assert cache.stats()["spill_errors"] == 1

    def test_write_failure_degrades_once(self, tmp_path):
        cache = ResultCache(max_entries=1, spill_dir=tmp_path / "ok")
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("not a directory")
        cache.spill_dir = blocker / "spill"  # dir vanishes from under us
        with pytest.warns(RuntimeWarning, match="spill disabled"):
            cache.put("a", b"1")
            cache.put("b", b"2")  # eviction tries to spill a -> OSError
        assert cache.spill_degraded
        assert cache.spill_dir is None
        # Further evictions stay silent (no second warning, no error).
        cache.put("c", b"3")
        assert cache.get("c") == b"3"
        assert cache.stats()["spill_errors"] == 1

    def test_corrupt_spill_is_dropped_not_served(
        self, metrics_registry, tmp_path
    ):
        cache = ResultCache(max_entries=1, spill_dir=tmp_path)
        cache.put("aa", b'"good"')
        cache.put("bb", b'"other"')  # evicts aa -> disk
        (tmp_path / "aa.json").write_bytes(b'{"trunc')  # simulate damage
        assert cache.get("aa") is None  # miss, not corrupt bytes
        assert not (tmp_path / "aa.json").exists()  # dropped
        assert not cache.spill_degraded  # the directory still works
        assert cache.stats()["spill_errors"] == 1
        assert cache_events(metrics_registry, "spill_error") == 1
        # A later eviction spills fine.
        cache.put("cc", b'"more"')
        assert cache.get("bb") == b'"other"'


class TestCacheMetrics:
    def test_events_reach_the_registry(self, metrics_registry, tmp_path):
        cache = ResultCache(max_entries=1, spill_dir=tmp_path)
        cache.get("absent")  # miss
        cache.put("aa", b"1")  # store
        cache.put("bb", b"2")  # store + spill of aa
        cache.get("bb")  # hit-memory
        cache.get("aa")  # hit-disk (promotes, spilling bb)
        assert cache_events(metrics_registry, "miss") == 1
        assert cache_events(metrics_registry, "store") >= 2
        assert cache_events(metrics_registry, "spill") >= 1
        assert cache_events(metrics_registry, "hit-memory") == 1
        assert cache_events(metrics_registry, "hit-disk") == 1

    def test_disabled_metrics_cost_nothing(self):
        # Outside collecting_metrics the gate short-circuits: the cache
        # still works and the default registry stays untouched.
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        assert cache.get("a") == b"1"


class TestKeyBasics:
    def test_known_digest(self):
        # The reference digest other tests (and the cross-process
        # stability check) anchor on.
        matrix = np.arange(1.0, 7.0).reshape(2, 3)
        key = matrix_cache_key(
            matrix, endpoint="characterize", options={"tol": 1e-08}
        )
        assert key == (
            "d41b643dbb48b1eef266e798071cd0958f5d2c39f68040597b1fc76616ff5c63"
        )

    def test_endpoint_and_options_partition_the_keyspace(self):
        matrix = np.ones((2, 2))
        plain = matrix_cache_key(matrix)
        assert matrix_cache_key(matrix, endpoint="standardize") != plain
        assert matrix_cache_key(matrix, options={"tol": 1e-6}) != plain

    def test_distinct_backends_distinct_keys(self):
        # Part of the backend-dispatch contract: the same matrix served
        # by two kernel backends occupies two cache entries, because
        # parse_request folds the normalized "backend" option into the
        # request's cache identity.
        from repro.serve.protocol import parse_request

        payload = {"matrix": [[1.0, 2.0], [3.0, 4.0]]}
        keys = set()
        for backend in ("numpy", None):
            body = dict(payload)
            if backend is not None:
                body["backend"] = backend
            request = parse_request("characterize", body)
            keys.add(
                matrix_cache_key(
                    request.matrix,
                    endpoint="characterize",
                    options=request.options,
                )
            )
        # Omitted backend normalizes to "numpy": same identity.
        assert len(keys) == 1
        other = matrix_cache_key(
            np.asarray(payload["matrix"]),
            endpoint="characterize",
            options={
                "tol": 1e-08,
                "policy": "quarantine",
                "tma_fallback": "limit",
                "backend": "numba",
            },
        )
        assert other not in keys

    def test_transpose_changes_the_key(self):
        matrix = np.arange(6.0).reshape(2, 3) + 1.0
        assert matrix_cache_key(matrix) != matrix_cache_key(matrix.T)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            matrix_cache_key(np.ones(4))
