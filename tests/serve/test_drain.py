"""Graceful drain: in-flight completes, new work sheds, process exits 0."""

from __future__ import annotations

import asyncio
import json
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import CharacterizationServer, ServeConfig
from repro.serve.loadgen import http_exchange

_BODY = json.dumps({"matrix": [[1.0, 2.0], [3.0, 4.0]]}).encode("utf-8")


class TestInProcessDrain:
    def test_inflight_completes_and_new_work_sheds(self, metrics_registry):
        async def _run():
            server = CharacterizationServer(
                ServeConfig(linger_s=0.1, adaptive=False)
            )
            inflight = asyncio.ensure_future(
                server.exchange("POST", "/v1/characterize", _BODY)
            )
            await asyncio.sleep(0.02)  # lingering in the coalescer
            clean = await server.shutdown(drain_timeout_s=5.0)
            first = await inflight
            late = await server.exchange("POST", "/v1/characterize", _BODY)
            health = await server.exchange("GET", "/healthz", b"")
            ready = await server.exchange("GET", "/healthz/ready", b"")
            live = await server.exchange("GET", "/healthz/live", b"")
            return clean, first, late, health, ready, live

        clean, first, late, health, ready, live = asyncio.run(_run())
        assert clean is True
        # The request caught mid-linger still got its real answer.
        assert first[0] == 200
        assert b'"result"' in first[2]
        # New work is shed with the draining category + Retry-After.
        assert late[0] == 503
        assert json.loads(late[2])["error"]["category"] == "draining"
        assert "Retry-After" in late[3]
        # Probe split: combined report says draining, readiness fails,
        # liveness holds.
        assert health[0] == 200
        assert json.loads(health[2])["result"]["status"] == "draining"
        assert ready[0] == 503
        assert live[0] == 200

    def test_drain_lifecycle_metrics(self, metrics_registry):
        async def _run():
            server = CharacterizationServer(ServeConfig(linger_s=0.001))
            await server.exchange("POST", "/v1/characterize", _BODY)
            await server.shutdown(drain_timeout_s=1.0)

        asyncio.run(_run())
        drain = metrics_registry.counter(
            "repro_serve_drain_total", labelnames=("event",)
        )
        assert drain.value(event="started") == 1
        assert drain.value(event="flushed") == 1
        assert drain.value(event="completed") == 1
        assert drain.value(event="timeout") == 0

    def test_shutdown_is_idempotent(self, metrics_registry):
        async def _run():
            server = CharacterizationServer(ServeConfig(linger_s=0.001))
            assert await server.shutdown(drain_timeout_s=1.0) is True
            assert await server.shutdown(drain_timeout_s=1.0) is True

        asyncio.run(_run())
        drain = metrics_registry.counter(
            "repro_serve_drain_total", labelnames=("event",)
        )
        assert drain.value(event="started") == 1  # begin_drain once


@pytest.mark.slow
class TestSubprocessSignals:
    """The real contract: a signalled `repro-hc serve` exits 0 cleanly."""

    @staticmethod
    def _spawn() -> tuple[subprocess.Popen, str, int]:
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--linger-ms", "150",
                "--drain-timeout", "10",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert process.stdout is not None
        banner = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)/", banner)
        assert match, f"no address in banner {banner!r}"
        return process, match.group(1), int(match.group(2))

    @staticmethod
    def _post_in_thread(host: str, port: int, out: dict) -> threading.Thread:
        def _work() -> None:
            try:
                out["response"] = asyncio.run(
                    http_exchange(
                        host, port, "POST", "/v1/characterize", _BODY,
                        timeout_s=30.0,
                    )
                )
            except Exception as exc:  # pragma: no cover - failure detail
                out["error"] = exc

        thread = threading.Thread(target=_work, daemon=True)
        thread.start()
        return thread

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_and_exits_zero(self, signum):
        process, host, port = self._spawn()
        try:
            # The 150ms linger keeps the request in flight while the
            # signal lands; the drain must still answer it.
            out: dict = {}
            thread = self._post_in_thread(host, port, out)
            time.sleep(0.06)  # request has arrived and is lingering
            process.send_signal(signum)
            stdout, _ = process.communicate(timeout=30)
            thread.join(timeout=30)
            assert "error" not in out, out.get("error")
            status, _, body = out["response"]
            assert status == 200
            assert b'"result"' in body
            assert process.returncode == 0
            assert "draining" in stdout
            assert "drain complete" in stdout
            # The socket is really gone.
            with pytest.raises(OSError):
                asyncio.run(
                    http_exchange(
                        host, port, "GET", "/healthz", b"", timeout_s=5.0
                    )
                )
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate(timeout=10)
