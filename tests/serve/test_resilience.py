"""Admission control, AIMD estimation, deadlines, shed-response shape."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.robust import Deadline
from repro.serve import (
    AdmissionController,
    CapacityEstimator,
    CharacterizationServer,
    Coalescer,
    DeadlineExceeded,
    DrainState,
    ServeConfig,
    ServeRequest,
    ShedError,
    matrix_cache_key,
)
from repro.serve.protocol import ProtocolError, parse_request


def _counter(registry, name, labelnames, **labels):
    return registry.counter(name, labelnames=labelnames).value(**labels)


class TestShedError:
    def test_status_and_category(self):
        exc = ShedError("queue-full", "busy", retry_after_s=2.4)
        assert exc.status == 503
        assert exc.category == "queue-full"
        assert exc.retry_after_s == 2.4

    def test_header_is_ceiled_whole_seconds(self):
        # RFC 9110 Retry-After is integral delta-seconds, never 0.
        assert ShedError("x", "m", retry_after_s=0.2).retry_after_header == "1"
        assert ShedError("x", "m", retry_after_s=1.1).retry_after_header == "2"
        assert ShedError("x", "m", retry_after_s=3.0).retry_after_header == "3"

    def test_deadline_exceeded_is_a_shed(self):
        exc = DeadlineExceeded("too late")
        assert isinstance(exc, ShedError)
        assert exc.category == "deadline-exceeded"
        assert exc.status == 503


class TestCapacityEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEstimator(base_limit=4, min_limit=8)
        with pytest.raises(ValueError):
            CapacityEstimator(target_p99_s=0)
        with pytest.raises(ValueError):
            CapacityEstimator(decrease=1.5)
        with pytest.raises(ValueError):
            CapacityEstimator(window=4, adjust_every=8)

    def test_multiplicative_decrease_on_breach(self):
        est = CapacityEstimator(
            base_limit=16, min_limit=2, target_p99_s=0.1, adjust_every=4
        )
        for _ in range(4):
            est.observe(1.0)  # 10x over target
        assert est.limit == 8
        assert est.degraded
        for _ in range(4):
            est.observe(1.0)
        assert est.limit == 4
        assert est.adjustments_down == 2

    def test_limit_floors_at_min(self):
        est = CapacityEstimator(
            base_limit=4, min_limit=2, target_p99_s=0.01, adjust_every=2
        )
        for _ in range(20):
            est.observe(5.0)
        assert est.limit == 2

    def test_additive_recovery(self):
        est = CapacityEstimator(
            base_limit=8,
            min_limit=2,
            max_limit=8,
            target_p99_s=0.1,
            adjust_every=2,
            window=4,
        )
        for _ in range(2):
            est.observe(1.0)  # cut to 4
        assert est.limit == 4
        # Healthy observations first push the slow samples out of the
        # window (one more cut fires while they linger), then the limit
        # climbs back one step per adjustment.
        for _ in range(10):
            est.observe(0.001)
        # 5 adjustments: one last cut (4 -> 2), then 2 -> 3 -> 4 -> 5 -> 6.
        assert est.limit == 6
        assert est.adjustments_up == 4

    def test_never_exceeds_max(self):
        est = CapacityEstimator(
            base_limit=4, max_limit=5, target_p99_s=10.0, adjust_every=1
        )
        for _ in range(50):
            est.observe(0.001)
        assert est.limit == 5

    def test_snapshot_is_json_safe(self):
        est = CapacityEstimator(base_limit=8)
        snap = est.snapshot()
        json.dumps(snap)
        assert snap["limit"] == 8
        assert snap["degraded"] is False


class TestAdmissionController:
    def test_admits_up_to_limit_then_queues(self):
        async def _run():
            ctl = AdmissionController(max_inflight=2, queue_depth=4)
            await ctl.admit("characterize")
            await ctl.admit("characterize")
            waiter = asyncio.ensure_future(ctl.admit("characterize"))
            await asyncio.sleep(0.01)
            assert not waiter.done()  # queued, not granted
            stats = ctl.stats()["characterize"]
            assert stats["inflight"] == 2
            assert stats["queued"] == 1
            ctl.release("characterize")
            await asyncio.sleep(0)
            assert waiter.done() and waiter.exception() is None
            assert ctl.stats()["characterize"]["inflight"] == 2

        asyncio.run(_run())

    def test_queue_overflow_sheds(self):
        async def _run():
            ctl = AdmissionController(max_inflight=1, queue_depth=1)
            await ctl.admit("characterize")
            queued = asyncio.ensure_future(ctl.admit("characterize"))
            await asyncio.sleep(0.01)
            with pytest.raises(ShedError) as info:
                await ctl.admit("characterize")
            assert info.value.category == "queue-full"
            assert info.value.retry_after_s > 0
            assert ctl.stats()["characterize"]["shed"] == 1
            ctl.release("characterize")
            await queued

        asyncio.run(_run())

    def test_zero_queue_depth_sheds_immediately(self):
        async def _run():
            ctl = AdmissionController(max_inflight=1, queue_depth=0)
            await ctl.admit("characterize")
            with pytest.raises(ShedError):
                await ctl.admit("characterize")

        asyncio.run(_run())

    def test_deadline_expires_in_queue(self):
        async def _run():
            ctl = AdmissionController(max_inflight=1, queue_depth=4)
            await ctl.admit("characterize")
            with pytest.raises(DeadlineExceeded):
                await ctl.admit("characterize", Deadline(0.02))
            # The dead waiter left the queue; a release grants nobody
            # twice and a fresh admit succeeds.
            ctl.release("characterize")
            await ctl.admit("characterize")

        asyncio.run(_run())

    def test_estimator_caps_the_limit(self):
        est = CapacityEstimator(
            base_limit=8, min_limit=2, target_p99_s=0.1, adjust_every=2
        )
        ctl = AdmissionController(
            max_inflight=4, queue_depth=4, estimators={"characterize": est}
        )
        assert ctl.limit("characterize") == 4  # min(max_inflight, est)
        for _ in range(4):
            est.observe(1.0)
        assert ctl.limit("characterize") == 2
        assert ctl.degraded

    def test_shed_metrics_reach_the_registry(self, metrics_registry):
        async def _run():
            ctl = AdmissionController(max_inflight=1, queue_depth=0)
            await ctl.admit("characterize")
            with pytest.raises(ShedError):
                await ctl.admit("characterize")

        asyncio.run(_run())
        assert _counter(
            metrics_registry,
            "repro_serve_admitted_total",
            ("endpoint",),
            endpoint="characterize",
        ) == 1
        assert _counter(
            metrics_registry,
            "repro_serve_shed_total",
            ("endpoint", "reason"),
            endpoint="characterize",
            reason="queue-full",
        ) == 1


class TestDrainState:
    def test_state_machine(self):
        state = DrainState()
        assert state.ready and not state.draining
        assert state.status() == "ok"
        assert state.status(degraded=True) == "degraded"
        assert state.begin_drain() is True
        assert state.begin_drain() is False  # idempotent
        assert state.draining and not state.ready
        # Draining wins over degraded: the server is leaving anyway.
        assert state.status(degraded=True) == "draining"
        assert state.uptime_s() >= 0


class TestDeadlineParsing:
    def test_valid_deadline_accepted(self):
        request = parse_request(
            "characterize",
            {"matrix": [[1.0, 2.0], [3.0, 4.0]], "deadline_ms": 250},
        )
        assert request.deadline_ms == 250.0

    @pytest.mark.parametrize(
        "bad", [0, -5, float("nan"), float("inf"), True, "fast", [250]]
    )
    def test_invalid_deadline_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(
                "characterize",
                {"matrix": [[1.0, 2.0], [3.0, 4.0]], "deadline_ms": bad},
            )

    def test_deadline_not_part_of_cache_identity(self):
        # Two requests for the same matrix under different deadlines
        # must share a cache entry and a coalescing group.
        matrix = [[1.0, 2.0], [3.0, 4.0]]
        with_deadline = parse_request(
            "characterize", {"matrix": matrix, "deadline_ms": 100}
        )
        without = parse_request("characterize", {"matrix": matrix})
        assert "deadline_ms" not in with_deadline.options
        assert with_deadline.options == without.options
        key_a = matrix_cache_key(
            with_deadline.matrix,
            endpoint="characterize",
            options=with_deadline.options,
        )
        key_b = matrix_cache_key(
            without.matrix, endpoint="characterize", options=without.options
        )
        assert key_a == key_b


class TestCoalescerDeadlines:
    def _request(self, value: float) -> ServeRequest:
        return ServeRequest(
            endpoint="characterize",
            matrix=np.full((2, 2), value),
            options={"tol": 1e-8},
        )

    def test_expired_member_is_shed_before_the_kernel(self):
        seen_options: list[dict] = []

        def runner(options, matrices):
            seen_options.append(dict(options))
            return [{"value": float(m[0, 0])} for m in matrices]

        async def _run():
            c = Coalescer(runner, endpoint="characterize", linger_s=0.02)
            expired = asyncio.ensure_future(
                c.submit(self._request(1.0), Deadline(0.0))
            )
            loose = asyncio.ensure_future(
                c.submit(self._request(2.0), Deadline(30.0))
            )
            tight = asyncio.ensure_future(
                c.submit(self._request(3.0), Deadline(5.0))
            )
            free = asyncio.ensure_future(c.submit(self._request(4.0)))
            done = await asyncio.gather(
                expired, loose, tight, free, return_exceptions=True
            )
            return done

        expired, loose, tight, free = asyncio.run(_run())
        assert isinstance(expired, DeadlineExceeded)
        assert loose.payload == {"value": 2.0}
        assert tight.payload == {"value": 3.0}
        assert free.payload == {"value": 4.0}
        # Survivors ran as one batch of three...
        assert loose.batch_size == 3
        # ...under the tightest surviving deadline (~5s, surely < 10).
        assert len(seen_options) == 1
        assert 0 < seen_options[0]["deadline_s"] <= 5.0

    def test_all_members_expired_skips_the_kernel(self, metrics_registry):
        calls: list = []

        def runner(options, matrices):  # pragma: no cover - must not run
            calls.append(len(matrices))
            return [{} for _ in matrices]

        async def _run():
            c = Coalescer(runner, endpoint="characterize", linger_s=0.001)
            with pytest.raises(DeadlineExceeded):
                await c.submit(self._request(1.0), Deadline(0.0))
            return c

        coalescer = asyncio.run(_run())
        assert calls == []
        assert coalescer.batches_flushed == 0
        assert coalescer.deadline_shed == 1
        assert _counter(
            metrics_registry,
            "repro_serve_deadline_exceeded_total",
            ("endpoint", "stage"),
            endpoint="characterize",
            stage="coalesce",
        ) == 1


class TestServerShedding:
    """End-to-end 503 semantics through CharacterizationServer.exchange."""

    @staticmethod
    def _config(**overrides) -> ServeConfig:
        base = dict(
            enable_metrics=False,
            linger_s=0.001,
            adaptive=False,
            max_inflight=1,
            queue_depth=0,
        )
        base.update(overrides)
        return ServeConfig(**base)

    @staticmethod
    def _body(seed: int) -> bytes:
        rng = np.random.default_rng(seed)
        return json.dumps(
            {"matrix": rng.uniform(0.5, 10.0, size=(6, 6)).tolist()}
        ).encode("utf-8")

    def test_overflow_returns_structured_503(self):
        async def _run():
            server = CharacterizationServer(self._config())
            return await asyncio.gather(
                *(
                    server.exchange(
                        "POST", "/v1/characterize", self._body(i)
                    )
                    for i in range(8)
                )
            )

        results = asyncio.run(_run())
        statuses = sorted(status for status, _, _, _ in results)
        assert 200 in statuses
        assert 503 in statuses
        assert set(statuses) <= {200, 503}
        for status, ctype, body, headers in results:
            if status != 503:
                continue
            assert ctype == "application/json"
            assert int(headers["Retry-After"]) >= 1
            document = json.loads(body)
            error = document["error"]
            assert error["category"] == "queue-full"
            assert error["retry_after_s"] > 0
            assert document["endpoint"] == "characterize"

    def test_expired_deadline_sheds_at_entry(self, metrics_registry):
        async def _run():
            server = CharacterizationServer(
                self._config(enable_metrics=True)
            )
            body = json.dumps(
                {
                    "matrix": [[1.0, 2.0], [3.0, 4.0]],
                    "deadline_ms": 0.0001,
                }
            ).encode("utf-8")
            return await server.exchange("POST", "/v1/characterize", body)

        status, _, body, headers = asyncio.run(_run())
        assert status == 503
        assert json.loads(body)["error"]["category"] == "deadline-exceeded"
        assert "Retry-After" in headers
        assert _counter(
            metrics_registry,
            "repro_serve_deadline_exceeded_total",
            ("endpoint", "stage"),
            endpoint="characterize",
            stage="entry",
        ) == 1

    def test_server_default_deadline_applies(self):
        async def _run():
            server = CharacterizationServer(
                self._config(default_deadline_ms=0.0001)
            )
            body = json.dumps(
                {"matrix": [[1.0, 2.0], [3.0, 4.0]]}
            ).encode("utf-8")
            return await server.exchange("POST", "/v1/characterize", body)

        status, _, body, _ = asyncio.run(_run())
        assert status == 503
        assert json.loads(body)["error"]["category"] == "deadline-exceeded"

    def test_cache_hits_bypass_admission(self):
        async def _run():
            server = CharacterizationServer(self._config())
            body = json.dumps(
                {"matrix": [[1.0, 2.0], [3.0, 4.0]]}
            ).encode("utf-8")
            first = await server.exchange("POST", "/v1/characterize", body)
            # Saturate the only admission slot with a queued compute...
            blocker = asyncio.ensure_future(
                server.exchange("POST", "/v1/characterize", self._body(99))
            )
            await asyncio.sleep(0)
            # ...and the memoized request still answers 200.
            second = await server.exchange("POST", "/v1/characterize", body)
            await blocker
            return first, second

        first, second = asyncio.run(_run())
        assert first[0] == 200
        assert second[0] == 200
        assert second[2] == first[2]  # bit-identical cached bytes

    def test_healthz_reports_degraded_on_cache_spill_loss(self, tmp_path):
        async def _run():
            blocker = tmp_path / "blocker.txt"
            blocker.write_text("not a directory")
            with pytest.warns(RuntimeWarning):
                server = CharacterizationServer(
                    self._config(cache_dir=str(blocker / "spill"))
                )
            status, _, body, _ = await server.exchange(
                "GET", "/healthz", b""
            )
            return status, json.loads(body)["result"]

        status, result = asyncio.run(_run())
        assert status == 200
        assert result["status"] == "degraded"
        assert result["cache"]["spill_degraded"] is True
        assert result["live"] is True and result["ready"] is True
