"""Tests for the measure-sensitivity (robustness) study."""

import numpy as np
import pytest

from repro.analysis import sensitivity_study
from repro.spec import cint2006rate


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def result(self):
        rng = np.random.default_rng(0)
        return sensitivity_study(
            rng.uniform(1.0, 5.0, size=(8, 5)),
            noise_levels=(0.01, 0.05, 0.2),
            trials=10,
            seed=1,
        )

    def test_shapes(self, result):
        assert result.mean_shift.shape == (3, 3)
        assert result.max_shift.shape == (3, 3)
        assert result.trials == 10

    def test_baseline_recorded(self, result):
        assert set(result.baseline) == {"mph", "tdh", "tma"}
        assert 0 < result.baseline["mph"] <= 1

    def test_shift_nonnegative_and_bounded(self, result):
        assert (result.mean_shift >= 0).all()
        assert (result.max_shift >= result.mean_shift - 1e-12).all()
        assert (result.max_shift <= 1.0).all()

    def test_more_noise_more_shift(self, result):
        """Robustness curve: mean shift grows with the noise level."""
        for measure in range(3):
            assert (
                result.mean_shift[0, measure]
                <= result.mean_shift[-1, measure] + 1e-9
            )

    def test_small_noise_small_shift(self, result):
        assert (result.mean_shift[0] < 0.05).all()

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        matrix = rng.uniform(1.0, 5.0, size=(5, 4))
        a = sensitivity_study(matrix, trials=5, seed=3)
        b = sensitivity_study(matrix, trials=5, seed=3)
        np.testing.assert_array_equal(a.mean_shift, b.mean_shift)

    def test_accepts_etc_wrapper(self):
        result = sensitivity_study(
            cint2006rate(), noise_levels=(0.05,), trials=4, seed=4
        )
        assert result.baseline["mph"] == pytest.approx(0.82, abs=5e-3)

    def test_table_renders(self, result):
        text = result.table()
        assert "sigma" in text
        assert len(text.splitlines()) == 4

    def test_invalid_noise_levels(self):
        with pytest.raises(ValueError):
            sensitivity_study(np.ones((3, 3)), noise_levels=())
        with pytest.raises(ValueError):
            sensitivity_study(np.ones((3, 3)), noise_levels=(0.0,))
