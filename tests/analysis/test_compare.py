"""Tests for comparison tables."""

import pytest

from repro.analysis import comparison_table, format_table
from repro.spec import cfp2006rate, cint2006rate


class TestComparisonTable:
    def test_default_columns(self):
        rows = comparison_table(
            {"cint": cint2006rate(), "cfp": cfp2006rate()}
        )
        assert [r["name"] for r in rows] == ["cint", "cfp"]
        assert set(rows[0]) == {"name", "mph", "tdh", "tma"}

    def test_fig2_style_columns(self):
        rows = comparison_table(
            {"cint": cint2006rate()},
            columns=("mph", "machine_r", "machine_g", "machine_cov"),
        )
        assert rows[0]["machine_r"] == pytest.approx(0.4515, abs=1e-3)

    def test_values_match_characterize(self):
        from repro.measures import characterize

        rows = comparison_table({"cint": cint2006rate()})
        profile = characterize(cint2006rate())
        assert rows[0]["mph"] == pytest.approx(profile.mph)
        assert rows[0]["tma"] == pytest.approx(profile.tma)


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = comparison_table({"cint": cint2006rate()})
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "mph" in lines[0]
        assert len(lines) == 3  # header, rule, one row

    def test_precision(self):
        rows = [{"name": "x", "value": 1.0 / 3.0}]
        assert "0.33" in format_table(rows, precision=2)
        assert "0.3333" in format_table(rows, precision=4)

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_non_float_columns(self):
        text = format_table([{"name": "a", "count": 3}])
        assert "3" in text
