"""Tests for what-if add/remove studies."""

import numpy as np
import pytest

from repro import ECSMatrix
from repro.analysis import (
    whatif_add_machine,
    whatif_add_task,
    whatif_drop_machines,
    whatif_drop_tasks,
)
from repro.spec import cint2006rate


class TestDropStudies:
    def test_one_entry_per_task(self):
        entries = whatif_drop_tasks(cint2006rate())
        assert len(entries) == 12
        assert all(e.after.n_tasks == 11 for e in entries)

    def test_subset_selection(self):
        entries = whatif_drop_tasks(cint2006rate(), tasks=["471.omnetpp"])
        assert len(entries) == 1
        assert "omnetpp" in entries[0].description

    def test_one_entry_per_machine(self):
        entries = whatif_drop_machines(cint2006rate())
        assert len(entries) == 5
        assert all(e.after.n_machines == 4 for e in entries)

    def test_original_untouched(self):
        env = cint2006rate()
        whatif_drop_tasks(env)
        assert env.shape == (12, 5)

    def test_single_task_environment_empty(self):
        assert whatif_drop_tasks(ECSMatrix([[1.0, 2.0]])) == []

    def test_single_machine_environment_empty(self):
        assert whatif_drop_machines(ECSMatrix([[1.0], [2.0]])) == []

    def test_deltas_consistent(self):
        entry = whatif_drop_machines(cint2006rate(), machines=["m4"])[0]
        assert entry.delta_mph == pytest.approx(
            entry.after.mph - entry.before.mph
        )
        assert entry.delta_tma == pytest.approx(
            entry.after.tma - entry.before.tma
        )

    def test_dropping_slowest_machine_raises_mph(self):
        """Removing the performance outlier must increase homogeneity."""
        env = ECSMatrix(np.diag([1.0, 10.0, 11.0, 12.0]) + 0.001)
        entries = whatif_drop_machines(env, machines=[0])
        assert entries[0].delta_mph > 0.2

    def test_accepts_raw_array(self):
        entries = whatif_drop_tasks(np.ones((3, 3)))
        assert len(entries) == 3

    def test_summary_format(self):
        entry = whatif_drop_tasks(cint2006rate(), tasks=[0])[0]
        text = entry.summary()
        assert "MPH" in text and "TDH" in text and "TMA" in text
        assert "drop task 400.perlbench" in text


class TestAddStudies:
    def test_add_task(self):
        env = cint2006rate()
        entry = whatif_add_task(env, "new.bench", np.full(5, 300.0))
        assert entry.after.n_tasks == 13
        assert entry.before.n_tasks == 12

    def test_add_machine_changes_affinity(self):
        """Adding a machine with inverted task preferences raises TMA."""
        env = ECSMatrix([[1.0, 1.0], [2.0, 2.0], [4.0, 4.0]])
        entry = whatif_add_machine(env, "accelerator", [8.0, 2.0, 0.5])
        assert entry.before.tma == pytest.approx(0.0, abs=1e-8)
        assert entry.delta_tma > 0.05

    def test_add_homogeneous_machine_small_tma_shift(self):
        env = ECSMatrix([[1.0, 1.0], [2.0, 2.0]])
        entry = whatif_add_machine(env, "clone", [1.0, 2.0])
        assert entry.delta_tma == pytest.approx(0.0, abs=1e-6)
