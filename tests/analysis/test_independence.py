"""Tests for the measure-independence experiments (property 3)."""

import numpy as np
import pytest

from repro import MatrixValueError
from repro.analysis import independence_study, measure_correlations


class TestIndependenceStudy:
    @pytest.mark.parametrize("swept", ["mph", "tdh", "tma"])
    def test_swept_measure_tracks_targets(self, swept):
        result = independence_study(
            swept, n_tasks=6, n_machines=5,
            targets=np.linspace(0.2, 0.8, 5),
        )
        assert result.sweep_error() < 1e-3

    @pytest.mark.parametrize("swept", ["mph", "tdh", "tma"])
    def test_pinned_measures_do_not_drift(self, swept):
        """Property 3 in action: sweeping one measure across its range
        moves the other two by (numerically) nothing."""
        result = independence_study(
            swept, n_tasks=6, n_machines=5,
            targets=np.linspace(0.2, 0.8, 5),
        )
        assert result.max_drift() < 1e-3

    def test_fixed_overrides(self):
        result = independence_study(
            "tma",
            n_tasks=5,
            n_machines=4,
            targets=[0.1, 0.4],
            fixed={"mph": 0.35, "tdh": 0.9},
        )
        assert result.fixed == {"mph": 0.35, "tdh": 0.9}
        np.testing.assert_allclose(result.achieved[:, 0], 0.35, atol=1e-6)
        np.testing.assert_allclose(result.achieved[:, 1], 0.9, atol=1e-6)

    def test_default_target_grid(self):
        result = independence_study("mph", n_tasks=4, n_machines=4)
        assert result.targets.shape[0] == 9

    def test_unknown_measure_rejected(self):
        with pytest.raises(MatrixValueError):
            independence_study("cov")

    def test_achieved_shape(self):
        result = independence_study("tdh", targets=[0.3, 0.6, 0.9])
        assert result.achieved.shape == (3, 3)


class TestMeasureCorrelations:
    @pytest.fixture(scope="class")
    def corr(self):
        return measure_correlations(samples=120, seed=0)

    def test_shape_and_diagonal(self, corr):
        assert corr.shape == (3, 3)
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_symmetric(self, corr):
        np.testing.assert_allclose(corr, corr.T)

    def test_not_totally_correlated(self, corr):
        """The paper's criterion for keeping all three measures: unlike
        std-vs-variance, no pair is (anti)correlated to |r| ~ 1."""
        off = np.abs(corr[np.triu_indices(3, k=1)])
        assert (off < 0.8).all()
