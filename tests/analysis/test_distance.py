"""Tests for environment comparison (distance, equivalence, ranking)."""

import numpy as np
import pytest

from repro.analysis import (
    equivalent_up_to_scaling,
    measure_distance,
    rank_by_similarity,
)
from repro.spec import cfp2006rate, cint2006rate


class TestMeasureDistance:
    def test_zero_for_identical(self):
        env = cint2006rate()
        assert measure_distance(env, env) == 0.0

    def test_zero_for_scaled_copy(self):
        env = cint2006rate()
        assert measure_distance(env, env.scaled(60.0)) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_symmetric(self):
        a, b = cint2006rate(), cfp2006rate()
        assert measure_distance(a, b) == pytest.approx(
            measure_distance(b, a)
        )

    def test_nonnegative_and_triangleish(self):
        from repro.generate import from_targets

        a = from_targets(5, 4, (0.3, 0.5, 0.1))
        b = from_targets(5, 4, (0.7, 0.5, 0.1))
        c = from_targets(5, 4, (0.9, 0.5, 0.1))
        ab, bc, ac = (
            measure_distance(a, b),
            measure_distance(b, c),
            measure_distance(a, c),
        )
        assert ab > 0 and bc > 0
        assert ac <= ab + bc + 1e-9

    def test_weights_axis_selection(self):
        from repro.generate import from_targets

        a = from_targets(5, 4, (0.3, 0.7, 0.2))
        b = from_targets(5, 4, (0.9, 0.7, 0.2))  # differs only in MPH
        assert measure_distance(a, b, weights=(0.0, 1.0, 1.0)) == (
            pytest.approx(0.0, abs=1e-3)
        )
        assert measure_distance(a, b, weights=(1.0, 0.0, 0.0)) == (
            pytest.approx(0.6, abs=1e-3)
        )

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            measure_distance(np.ones((2, 2)), np.ones((2, 2)),
                             weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            measure_distance(np.ones((2, 2)), np.ones((2, 2)),
                             weights=(1.0, -1.0, 1.0))


class TestEquivalence:
    def test_diagonal_rescaling_equivalent(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0.5, 5.0, size=(4, 3))
        b = (
            rng.uniform(0.1, 10, size=(4, 1))
            * a
            * rng.uniform(0.1, 10, size=(1, 3))
        )
        assert equivalent_up_to_scaling(a, b)

    def test_entry_change_breaks_equivalence(self):
        a = np.array([[1.0, 2.0], [3.0, 1.0]])
        c = a.copy()
        c[0, 0] = 9.0
        assert not equivalent_up_to_scaling(a, c)

    def test_shape_mismatch(self):
        assert not equivalent_up_to_scaling(np.ones((2, 2)), np.ones((2, 3)))

    def test_transpose_of_asymmetric_3x3(self):
        a = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [9.0, 1.0, 2.0]])
        assert not equivalent_up_to_scaling(a, a.T)

    def test_weight_application_is_equivalence(self):
        """Weighting factors are diagonal scalings: same structure."""
        from repro import ECSMatrix

        ecs = np.random.default_rng(1).uniform(0.5, 5.0, size=(4, 3))
        weighted = ECSMatrix(
            ecs, task_weights=[1.0, 2.0, 3.0, 4.0]
        ).weighted_values()
        assert equivalent_up_to_scaling(ecs, weighted)

    def test_zero_pattern_via_limit(self):
        a = np.array([[1.0, 0.0], [1.0, 1.0]])
        b = np.array([[2.0, 0.0], [5.0, 7.0]])
        # Both reduce to the identity in the eq.-9 limit.
        assert equivalent_up_to_scaling(a, b)


class TestRankBySimilarity:
    def test_nearest_first(self):
        from repro.generate import from_targets

        reference = from_targets(5, 4, (0.5, 0.5, 0.2))
        candidates = {
            "near": from_targets(5, 4, (0.55, 0.5, 0.2)),
            "far": from_targets(5, 4, (0.95, 0.9, 0.0)),
        }
        ranked = rank_by_similarity(reference, candidates)
        assert [name for name, _ in ranked] == ["near", "far"]
        assert ranked[0][1] < ranked[1][1]

    def test_spec_suites_close_to_each_other(self):
        """Fig. 6/7's point: the two SPEC suites are near twins in
        (MPH, TDH) and differ mainly in TMA."""
        distance = measure_distance(cint2006rate(), cfp2006rate())
        assert distance < 0.15
