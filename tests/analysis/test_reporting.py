"""Tests for the Markdown environment report."""

import numpy as np
import pytest

from repro.analysis import environment_report
from repro.spec import cint2006rate


class TestEnvironmentReport:
    @pytest.fixture(scope="class")
    def report(self):
        return environment_report(cint2006rate(), name="CINT")

    def test_sections_present(self, report):
        assert "# Heterogeneity report: CINT" in report
        assert "## Measures" in report
        assert "## Affinity structure" in report
        assert "## Highest-impact removals" in report

    def test_measures_reported(self, report):
        assert "0.8200" in report  # MPH
        assert "0.9000" in report  # TDH
        assert "0.0700" in report  # TMA

    def test_regime_line(self, report):
        assert "homogeneous machines" in report

    def test_whatif_rows_capped(self):
        report = environment_report(
            cint2006rate(), max_whatif_rows=2
        )
        assert report.count("* drop") == 2

    def test_whatif_optional(self):
        report = environment_report(cint2006rate(), include_whatif=False)
        assert "Highest-impact removals" not in report

    def test_affinity_groups_listed_for_block_env(self):
        block = np.array(
            [[9.0, 9.0, 0.1], [9.0, 9.0, 0.1], [0.1, 0.1, 9.0]]
        )
        report = environment_report(block, include_whatif=False)
        assert "affinity groups" in report
        assert "group 0" in report and "group 1" in report

    def test_flat_environment_no_groups(self):
        report = environment_report(np.ones((3, 3)), include_whatif=False)
        assert "No significant affinity groups" in report

    def test_accepts_raw_arrays(self):
        report = environment_report([[1.0, 2.0], [2.0, 1.0]])
        assert report.startswith("# Heterogeneity report")

    def test_removals_ranked_by_impact(self, report):
        lines = [l for l in report.splitlines() if l.startswith("* drop")]

        def total_shift(line):
            import re

            deltas = re.findall(r"\(([+-]\d+\.\d+)\)", line)
            return sum(abs(float(d)) for d in deltas)

        shifts = [total_shift(line) for line in lines]
        assert shifts == sorted(shifts, reverse=True)


class TestMachineInfo:
    def test_five_machines(self):
        from repro.spec import MACHINE_INFO

        assert len(MACHINE_INFO) == 5
        assert [m.key for m in MACHINE_INFO] == ["m1", "m2", "m3", "m4", "m5"]

    def test_lookup(self):
        from repro.spec import machine_info

        assert machine_info("m2").architecture == "SPARC V9"
        assert machine_info("M5").vendor == "IBM"

    def test_unknown_key(self):
        from repro import DatasetError
        from repro.spec import machine_info

        with pytest.raises(DatasetError):
            machine_info("m9")

    def test_architecture_diversity(self):
        """The paper's point: different architectures and vendors."""
        from repro.spec import MACHINE_INFO

        assert len({m.architecture for m in MACHINE_INFO}) >= 3
        assert len({m.vendor for m in MACHINE_INFO}) >= 4
