"""Tests for measure-trajectory tracking over edit scripts."""

import numpy as np
import pytest

from repro import ECSMatrix, MatrixValueError
from repro.analysis import track_evolution
from repro.spec import cint2006rate


class TestTrackEvolution:
    def test_baseline_plus_one_per_edit(self):
        steps = track_evolution(
            cint2006rate(),
            [("drop_machine", "m2"), ("drop_task", "403.gcc")],
        )
        assert len(steps) == 3
        assert steps[0].description == "baseline"
        assert steps[1].description == "drop_machine m2"
        assert steps[2].description == "drop_task 403.gcc"

    def test_dimensions_track_edits(self):
        steps = track_evolution(
            cint2006rate(),
            [
                ("add_machine", "accel", np.full(12, 100.0)),
                ("drop_task", 0),
            ],
        )
        assert steps[0].profile.n_machines == 5
        assert steps[1].profile.n_machines == 6
        assert steps[2].profile.n_tasks == 11

    def test_matches_direct_characterization(self):
        from repro.measures import characterize

        env = cint2006rate()
        steps = track_evolution(env, [("drop_machine", "m4")])
        direct = characterize(env.drop_machines(["m4"]))
        assert steps[1].profile.mph == pytest.approx(direct.mph)
        assert steps[1].profile.tma == pytest.approx(direct.tma, abs=1e-9)

    def test_scale_is_measure_noop(self):
        steps = track_evolution(cint2006rate(), [("scale", 3600.0)])
        assert steps[1].profile.mph == pytest.approx(steps[0].profile.mph)
        assert steps[1].profile.tma == pytest.approx(
            steps[0].profile.tma, abs=1e-6
        )

    def test_input_untouched(self):
        env = cint2006rate()
        track_evolution(env, [("drop_machine", "m1")])
        assert env.n_machines == 5

    def test_accepts_raw_ecs(self):
        steps = track_evolution(
            np.ones((3, 3)), [("add_task", "new", [1.0, 1.0, 1.0])]
        )
        assert steps[1].profile.n_tasks == 4

    def test_edits_compose(self):
        """Add then drop the same machine: back to the baseline
        measures."""
        env = ECSMatrix(np.random.default_rng(0).uniform(1, 5, (5, 4)))
        steps = track_evolution(
            env,
            [
                ("add_machine", "tmp", np.full(5, 9.0)),
                ("drop_machine", "tmp"),
            ],
        )
        assert steps[2].profile.mph == pytest.approx(steps[0].profile.mph)
        assert steps[2].profile.tma == pytest.approx(
            steps[0].profile.tma, abs=1e-9
        )

    def test_unknown_edit_rejected(self):
        with pytest.raises(MatrixValueError):
            track_evolution(np.ones((2, 2)), [("paint", "blue")])

    def test_row_renders(self):
        steps = track_evolution(cint2006rate(), [("drop_machine", 0)])
        text = steps[1].row()
        assert "drop_machine m1" in text
        assert "MPH=" in text and "12x4" in text
