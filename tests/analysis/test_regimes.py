"""Tests for regime naming and generator footprints."""

import numpy as np
import pytest

from repro.analysis import (
    RegimeThresholds,
    characterize_generator,
    describe_regime,
)
from repro.generate import braun_case
from repro.measures import characterize
from repro.spec import cint2006rate


class TestDescribeRegime:
    def test_flat_environment(self):
        assert describe_regime(np.ones((4, 4))) == (
            "homogeneous machines, homogeneous tasks, no significant "
            "affinity"
        )

    def test_diagonal_extreme(self):
        text = describe_regime(np.diag([1.0, 100.0]) + 0.01)
        assert "heterogeneous machines" in text
        assert "strong task-machine affinity" in text

    def test_moderate_affinity_band(self):
        from repro.generate import from_targets

        env = from_targets(6, 5, (0.8, 0.8, 0.2))
        assert "moderate task-machine affinity" in describe_regime(env)

    def test_accepts_profile(self):
        profile = characterize(cint2006rate())
        assert describe_regime(profile) == describe_regime(cint2006rate())

    def test_spec_cint_regime(self):
        text = describe_regime(cint2006rate())
        assert text == (
            "homogeneous machines, homogeneous tasks, no significant "
            "affinity"
        )

    def test_custom_thresholds(self):
        strict = RegimeThresholds(machine=0.95, task=0.95, affinity=0.01)
        text = describe_regime(cint2006rate(), thresholds=strict)
        assert "heterogeneous machines" in text
        assert "heterogeneous tasks" in text


class TestCharacterizeGenerator:
    @pytest.fixture(scope="class")
    def footprint(self):
        return characterize_generator(
            "hihi-i",
            lambda s: braun_case("hihi-i", n_tasks=16, n_machines=6, seed=s),
            samples=5,
            seed=0,
        )

    def test_shapes(self, footprint):
        assert footprint.samples.shape == (5, 3)
        assert footprint.mean.shape == (3,)
        assert footprint.std.shape == (3,)

    def test_statistics_consistent(self, footprint):
        np.testing.assert_allclose(
            footprint.mean, footprint.samples.mean(axis=0)
        )
        np.testing.assert_allclose(
            footprint.std, footprint.samples.std(axis=0)
        )

    def test_row_renders(self, footprint):
        text = footprint.row()
        assert "hihi-i" in text and "MPH" in text and "±" in text

    def test_deterministic(self):
        a = characterize_generator(
            "x",
            lambda s: braun_case("lolo-c", n_tasks=8, n_machines=4, seed=s),
            samples=3,
            seed=1,
        )
        b = characterize_generator(
            "x",
            lambda s: braun_case("lolo-c", n_tasks=8, n_machines=4, seed=s),
            samples=3,
            seed=1,
        )
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_braun_orderings(self):
        """High-range cases land lower on the homogeneity axes."""

        def footprint_of(case):
            return characterize_generator(
                case,
                lambda s: braun_case(case, n_tasks=24, n_machines=8, seed=s),
                samples=4,
                seed=2,
            )

        hihi = footprint_of("hihi-i")
        lolo = footprint_of("lolo-i")
        assert hihi.mean[0] < lolo.mean[0]  # MPH
        assert hihi.mean[1] < lolo.mean[1]  # TDH

    def test_consistency_kills_affinity(self):
        def footprint_of(case):
            return characterize_generator(
                case,
                lambda s: braun_case(case, n_tasks=24, n_machines=8, seed=s),
                samples=4,
                seed=3,
            )

        consistent = footprint_of("hihi-c")
        inconsistent = footprint_of("hihi-i")
        assert consistent.mean[2] < inconsistent.mean[2]  # TMA
