"""Direct tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_ecs_array,
    as_etc_array,
    as_float_matrix,
    as_positive_vector,
    check_positive_int,
    check_positive_scalar,
    check_probability,
    check_weights,
)
from repro.exceptions import (
    EmptyRowColumnError,
    MatrixShapeError,
    MatrixValueError,
    WeightError,
)


class TestAsFloatMatrix:
    def test_coerces_lists(self):
        out = as_float_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_contiguity_enforced(self):
        strided = np.ones((4, 6))[:, ::2]
        out = as_float_matrix(strided)
        assert out.flags["C_CONTIGUOUS"]

    def test_inf_allowed(self):
        out = as_float_matrix([[1.0, np.inf]])
        assert np.isinf(out[0, 1])

    def test_nan_rejected(self):
        with pytest.raises(MatrixValueError):
            as_float_matrix([[np.nan]])

    def test_name_in_message(self):
        with pytest.raises(MatrixShapeError, match="my-matrix"):
            as_float_matrix([1.0], name="my-matrix")


class TestEcsEtcValidation:
    def test_ecs_accepts_zeros(self):
        out = as_ecs_array([[0.0, 1.0], [1.0, 0.0]])
        assert out[0, 0] == 0.0

    def test_ecs_rejects_inf(self):
        with pytest.raises(MatrixValueError, match="infinite"):
            as_ecs_array([[np.inf, 1.0], [1.0, 1.0]])

    def test_ecs_rejects_negative(self):
        with pytest.raises(MatrixValueError):
            as_ecs_array([[-1.0, 1.0], [1.0, 1.0]])

    def test_ecs_rejects_zero_line(self):
        with pytest.raises(EmptyRowColumnError):
            as_ecs_array([[0.0, 0.0], [1.0, 1.0]])

    def test_etc_accepts_inf(self):
        out = as_etc_array([[np.inf, 1.0], [1.0, 1.0]])
        assert np.isinf(out[0, 0])

    def test_etc_rejects_zero(self):
        with pytest.raises(MatrixValueError):
            as_etc_array([[0.0, 1.0]])

    def test_etc_rejects_all_inf_line(self):
        with pytest.raises(EmptyRowColumnError):
            as_etc_array([[np.inf, np.inf], [1.0, 1.0]])
        with pytest.raises(EmptyRowColumnError):
            as_etc_array([[np.inf, 1.0], [np.inf, 1.0]])


class TestVectorsAndScalars:
    def test_positive_vector(self):
        np.testing.assert_allclose(as_positive_vector([1, 2]), [1.0, 2.0])

    def test_positive_vector_rejects_zero(self):
        with pytest.raises(MatrixValueError):
            as_positive_vector([1.0, 0.0])

    def test_positive_vector_rejects_inf(self):
        with pytest.raises(MatrixValueError):
            as_positive_vector([1.0, np.inf])

    def test_positive_vector_rejects_2d(self):
        with pytest.raises(MatrixShapeError):
            as_positive_vector(np.ones((2, 2)))

    def test_probability_bounds(self):
        assert check_probability(0.0, name="p") == 0.0
        assert check_probability(1.0, name="p") == 1.0
        with pytest.raises(MatrixValueError):
            check_probability(1.5, name="p")
        with pytest.raises(MatrixValueError):
            check_probability(-0.1, name="p")

    def test_probability_rejects_bool(self):
        with pytest.raises(MatrixValueError):
            check_probability(True, name="p")

    def test_positive_scalar(self):
        assert check_positive_scalar(2, name="x") == 2.0
        with pytest.raises(MatrixValueError):
            check_positive_scalar(0, name="x")
        assert check_positive_scalar(0, name="x", allow_zero=True) == 0.0
        with pytest.raises(MatrixValueError):
            check_positive_scalar(np.inf, name="x")
        with pytest.raises(MatrixValueError):
            check_positive_scalar("three", name="x")

    def test_positive_int(self):
        assert check_positive_int(3, name="n") == 3
        with pytest.raises(MatrixValueError):
            check_positive_int(0, name="n")
        with pytest.raises(MatrixValueError):
            check_positive_int(2.5, name="n")
        with pytest.raises(MatrixValueError):
            check_positive_int(True, name="n")


class TestCheckWeights:
    def test_none_yields_ones(self):
        np.testing.assert_array_equal(
            check_weights(None, 3, name="w"), [1.0, 1.0, 1.0]
        )

    def test_valid_passthrough(self):
        np.testing.assert_allclose(
            check_weights([0.5, 2.0], 2, name="w"), [0.5, 2.0]
        )

    def test_length_mismatch(self):
        with pytest.raises(WeightError):
            check_weights([1.0], 2, name="w")

    def test_nonpositive_rejected(self):
        with pytest.raises(WeightError):
            check_weights([1.0, 0.0], 2, name="w")

    def test_nonfinite_rejected(self):
        with pytest.raises(WeightError):
            check_weights([1.0, np.inf], 2, name="w")
