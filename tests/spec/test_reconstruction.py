"""Integrity tests: the shipped tables regenerate bit-for-bit."""

import numpy as np
import pytest

from repro.spec import cfp2006rate, cint2006rate
from repro.spec.reconstruction import (
    FIG8A_TDH,
    FIG8A_TMA,
    FIG8B_TDH,
    FIG8B_TMA,
    cross_ratio_for_tma,
    reconstruct_tables,
)


@pytest.fixture(scope="module")
def regenerated():
    return reconstruct_tables()


class TestRegeneration:
    def test_cint_bit_identical(self, regenerated):
        cint, _ = regenerated
        np.testing.assert_array_equal(cint, cint2006rate().values)

    def test_cfp_bit_identical(self, regenerated):
        _, cfp = regenerated
        np.testing.assert_array_equal(cfp, cfp2006rate().values)


class TestCrossRatio:
    def test_identity_at_zero(self):
        assert cross_ratio_for_tma(0.0) == pytest.approx(1.0)

    def test_known_value(self):
        # TMA 0.6 -> ((1.6)/(0.4))**2 = 16.
        assert cross_ratio_for_tma(0.6) == pytest.approx(16.0)

    def test_roundtrip_through_tma(self):
        """A 2×2 matrix with the constructed cross ratio measures the
        requested TMA — the closed form the calibration relies on."""
        from repro.measures import tma

        for target in (0.05, 0.3, 0.6, 0.9):
            ratio = cross_ratio_for_tma(target)
            matrix = np.array([[ratio, 1.0], [1.0, 1.0]])
            assert tma(matrix) == pytest.approx(target, abs=1e-8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cross_ratio_for_tma(1.0)
        with pytest.raises(ValueError):
            cross_ratio_for_tma(-0.1)


class TestCalibrationConstants:
    def test_paper_values(self):
        assert FIG8A_TMA == 0.05
        assert FIG8B_TMA == 0.60
        assert FIG8A_TDH == 0.16
        # The paper orders TDH(b) below TDH(a).
        assert FIG8B_TDH < FIG8A_TDH
