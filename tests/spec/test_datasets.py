"""Tests for dataset accessors and Fig. 8 extractions."""

import pytest

from repro import DatasetError
from repro.measures import characterize
from repro.spec import figure8a, figure8b, list_datasets, load_dataset


class TestAccessors:
    def test_list_datasets(self):
        assert list_datasets() == ("cfp2006rate", "cint2006rate")

    def test_load_by_name_case_insensitive(self):
        assert load_dataset("CINT2006Rate").shape == (12, 5)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("cint2017rate")


class TestFigure8:
    def test_8a_composition(self):
        env = figure8a()
        assert env.shape == (2, 2)
        assert env.task_names == ("471.omnetpp", "436.cactusADM")
        assert env.machine_names == ("m4", "m5")

    def test_8b_composition(self):
        env = figure8b()
        assert env.shape == (2, 2)
        assert env.task_names == ("436.cactusADM", "450.soplex")
        assert env.machine_names == ("m1", "m4")

    def test_8a_paper_values(self):
        profile = characterize(figure8a())
        assert profile.tma == pytest.approx(0.05, abs=5e-3)
        assert profile.tdh == pytest.approx(0.16, abs=5e-3)

    def test_8b_paper_values(self):
        profile = characterize(figure8b())
        assert profile.tma == pytest.approx(0.60, abs=5e-3)

    def test_affinity_contrast(self):
        """The paper's message: (b) has far more affinity than (a)."""
        assert characterize(figure8b()).tma > 5 * characterize(figure8a()).tma

    def test_difficulty_contrast(self):
        """Paper: 'the task types of matrix (a) are more homogeneous
        than the ones of matrix (b)' — TDH(a) > TDH(b)."""
        assert characterize(figure8a()).tdh > characterize(figure8b()).tdh
