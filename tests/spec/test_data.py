"""Tests for the bundled SPEC-like datasets (paper Section V)."""

import numpy as np
import pytest

from repro.measures import characterize
from repro.spec import (
    CFP_TASKS,
    CINT_TASKS,
    MACHINES,
    cfp2006rate,
    cint2006rate,
)


class TestTables:
    def test_cint_shape_and_labels(self):
        etc = cint2006rate()
        assert etc.shape == (12, 5)
        assert etc.task_names == CINT_TASKS
        assert len(MACHINES) == 5

    def test_cfp_shape_and_labels(self):
        etc = cfp2006rate()
        assert etc.shape == (17, 5)
        assert etc.task_names == CFP_TASKS

    def test_task_suites_disjoint_except_none(self):
        assert not set(CINT_TASKS) & set(CFP_TASKS)

    def test_runtimes_second_scale(self):
        """Reconstructed peak runtimes sit in the plausible SPEC range."""
        for etc in (cint2006rate(), cfp2006rate()):
            assert etc.values.min() > 50.0
            assert etc.values.max() < 20_000.0

    def test_fresh_objects(self):
        a, b = cint2006rate(), cint2006rate()
        assert a is not b
        np.testing.assert_array_equal(a.values, b.values)


class TestCalibratedMeasures:
    """The shipped tables reproduce the paper's Fig. 6/7 measures."""

    def test_cint_measures(self):
        profile = characterize(cint2006rate())
        assert profile.tdh == pytest.approx(0.90, abs=5e-3)
        assert profile.mph == pytest.approx(0.82, abs=5e-3)
        assert profile.tma == pytest.approx(0.07, abs=5e-3)

    def test_cfp_measures(self):
        profile = characterize(cfp2006rate())
        assert profile.tdh == pytest.approx(0.91, abs=5e-3)
        assert profile.mph == pytest.approx(0.83, abs=5e-3)

    def test_cfp_affinity_exceeds_cint(self):
        """Paper: floating-point task types have more machine affinity
        than the integer ones."""
        assert characterize(cfp2006rate()).tma > characterize(
            cint2006rate()
        ).tma

    def test_suites_nearly_identical_mph_tdh(self):
        """Paper: 'machine performance homogeneity and the task type
        difficulty of both matrices are almost identical'."""
        pi = characterize(cint2006rate())
        pf = characterize(cfp2006rate())
        assert abs(pi.mph - pf.mph) < 0.02
        assert abs(pi.tdh - pf.tdh) < 0.02

    def test_iteration_count_matches_paper_order(self):
        """Paper reports 6 (CINT) and 7 (CFP) iterations at 1e-8; the
        reconstruction converges in the same handful-of-iterations
        regime."""
        for etc in (cint2006rate(), cfp2006rate()):
            iters = characterize(etc).sinkhorn_iterations
            assert 2 <= iters <= 10
