"""Tests for the fully-indecomposable component decomposition."""

import numpy as np
import pytest

from repro import MatrixShapeError
from repro.structure import (
    fully_indecomposable_components,
    is_fully_indecomposable,
)


class TestComponents:
    def test_diagonal_gives_singletons(self):
        comps = fully_indecomposable_components(np.diag([2.0, 3.0, 4.0]))
        assert comps.n_blocks == 3
        assert comps.blocks == (((0,), (0,)), ((1,), (1,)), ((2,), (2,)))
        assert comps.dropped_entries == ()

    def test_positive_matrix_single_block(self):
        comps = fully_indecomposable_components(np.ones((4, 4)))
        assert comps.n_blocks == 1
        assert comps.blocks[0] == ((0, 1, 2, 3), (0, 1, 2, 3))

    def test_two_block_direct_sum(self):
        matrix = np.zeros((4, 4))
        matrix[:2, :2] = 1.0
        matrix[2:, 2:] = 1.0
        comps = fully_indecomposable_components(matrix)
        assert comps.n_blocks == 2
        assert comps.blocks == (((0, 1), (0, 1)), ((2, 3), (2, 3)))

    def test_scrambled_blocks_found(self):
        matrix = np.zeros((4, 4))
        matrix[:2, :2] = 1.0
        matrix[2:, 2:] = 1.0
        perm_r, perm_c = [2, 0, 3, 1], [1, 3, 0, 2]
        scrambled = matrix[np.ix_(perm_r, perm_c)]
        comps = fully_indecomposable_components(scrambled)
        assert comps.n_blocks == 2
        sizes = sorted(len(rows) for rows, _ in comps.blocks)
        assert sizes == [2, 2]

    def test_blocks_are_square(self):
        rng = np.random.default_rng(0)
        for seed in range(8):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(2, 7))
            pattern = rng.random((n, n)) < 0.5
            np.fill_diagonal(pattern, True)  # guarantee support
            comps = fully_indecomposable_components(pattern)
            for rows, cols in comps.blocks:
                assert len(rows) == len(cols)

    def test_each_block_fully_indecomposable(self):
        rng = np.random.default_rng(1)
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            n = int(rng.integers(2, 7))
            pattern = rng.random((n, n)) < 0.5
            np.fill_diagonal(pattern, True)
            comps = fully_indecomposable_components(pattern)
            core = pattern.copy()
            for i, j in comps.dropped_entries:
                core[i, j] = False
            for rows, cols in comps.blocks:
                block = core[np.ix_(rows, cols)]
                assert is_fully_indecomposable(block), (pattern, rows, cols)

    def test_eq10_drops_blocking_entry(self, eq10_matrix):
        comps = fully_indecomposable_components(eq10_matrix)
        assert (1, 2) in comps.dropped_entries
        # What remains is the permutation structure: three singletons.
        assert comps.n_blocks == 3

    def test_permutation_exposes_block_diagonal(self):
        matrix = np.zeros((5, 5))
        matrix[:3, :3] = 1.0
        matrix[3:, 3:] = 1.0
        shuffled = matrix[np.ix_([4, 0, 3, 1, 2], [2, 4, 0, 1, 3])]
        comps = fully_indecomposable_components(shuffled)
        rows, cols = comps.permutation()
        arranged = shuffled[np.ix_(rows, cols)]
        offset = 0
        for block_rows, _ in comps.blocks:
            k = len(block_rows)
            # Off-diagonal blocks are zero.
            assert not arranged[offset : offset + k, offset + k :].any()
            assert not arranged[offset + k :, offset : offset + k].any()
            offset += k

    def test_rectangular_rejected(self):
        with pytest.raises(MatrixShapeError):
            fully_indecomposable_components(np.ones((2, 3)))

    def test_no_support_rejected(self):
        with pytest.raises(MatrixShapeError):
            fully_indecomposable_components([[1.0, 0.0], [1.0, 0.0]])
