"""Tests for the exact (Menon-theorem) normalizability test."""

import numpy as np
import pytest

from repro import ConvergenceError
from repro.normalize import sinkhorn_knopp
from repro.structure import (
    is_fully_indecomposable,
    is_normalizable,
    normalizability_report,
)


class TestKnownCases:
    def test_positive_matrix(self):
        assert is_normalizable(np.ones((3, 4)))

    def test_eq10_not_normalizable(self, eq10_matrix):
        assert not is_normalizable(eq10_matrix)

    def test_eq10_blocking_edge(self, eq10_matrix):
        report = normalizability_report(eq10_matrix)
        assert report.feasible
        assert not report.normalizable
        assert report.blocking_edges == ((1, 2),)

    def test_diagonal_exception(self):
        """The paper's point: decomposable but normalizable."""
        diag = np.diag([2.0, 5.0, 11.0])
        assert not is_fully_indecomposable(diag)
        assert is_normalizable(diag)

    def test_permutation_matrix(self):
        assert is_normalizable(np.eye(4)[[1, 3, 0, 2]])

    def test_triangular_not_normalizable(self):
        assert not is_normalizable([[1.0, 1.0], [0.0, 1.0]])

    def test_zero_row_infeasible(self):
        report = normalizability_report([[0, 0], [1, 1]])
        assert not report.feasible
        assert not report.normalizable

    def test_rectangular_positive(self):
        assert is_normalizable(np.ones((2, 5)))

    def test_rectangular_block(self):
        # Tasks {0,1} only on machine 0, task 2 everywhere: machine 0
        # would need 2/3 of the total while demanding 1/3.
        matrix = np.array([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        assert not is_normalizable(matrix)

    def test_balanced_rectangular_blocks(self):
        # 4 tasks, 2 machines, tasks split evenly -> normalizable.
        matrix = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        assert is_normalizable(matrix)

    def test_unbalanced_rectangular_blocks(self):
        # 3 tasks on machine 1 vs 1 task on machine 2: row sums must be
        # equal, so machine 1's column sum is forced to 3x machine 2's.
        matrix = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert not is_normalizable(matrix)


class TestAgainstSinkhornOracle:
    """The ground truth: the iteration itself.  A pattern is normalizable
    iff Sinkhorn converges *and* preserves the zero pattern (entries that
    decay to ~0 indicate the limit lives on a smaller pattern)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_square_patterns(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        pattern = rng.random((n, n)) < 0.6
        for i in range(n):
            if not pattern[i].any():
                pattern[i, rng.integers(n)] = True
            if not pattern[:, i].any():
                pattern[rng.integers(n), i] = True
        matrix = np.where(pattern, rng.uniform(0.5, 2.0, (n, n)), 0.0)
        predicted = is_normalizable(matrix)
        try:
            result = sinkhorn_knopp(matrix, max_iterations=30_000)
            pattern_kept = (result.matrix > 1e-6).sum() == pattern.sum()
            converged_cleanly = pattern_kept
        except ConvergenceError:
            converged_cleanly = False
        assert predicted == converged_cleanly, matrix

    @pytest.mark.parametrize("seed", range(15))
    def test_random_rectangular_patterns(self, seed):
        rng = np.random.default_rng(1000 + seed)
        t = int(rng.integers(2, 6))
        m = int(rng.integers(2, 6))
        pattern = rng.random((t, m)) < 0.6
        for i in range(t):
            if not pattern[i].any():
                pattern[i, rng.integers(m)] = True
        for j in range(m):
            if not pattern[:, j].any():
                pattern[rng.integers(t), j] = True
        matrix = np.where(pattern, rng.uniform(0.5, 2.0, (t, m)), 0.0)
        predicted = is_normalizable(matrix)
        try:
            result = sinkhorn_knopp(matrix, max_iterations=30_000)
            converged_cleanly = (
                (result.matrix > 1e-6).sum() == pattern.sum()
            )
        except ConvergenceError:
            converged_cleanly = False
        assert predicted == converged_cleanly, matrix


class TestSufficiencyRelation:
    @pytest.mark.parametrize("seed", range(15))
    def test_fully_indecomposable_implies_normalizable(self, seed):
        """Marshall–Olkin: the paper's sufficient condition."""
        rng = np.random.default_rng(2000 + seed)
        n = int(rng.integers(2, 6))
        pattern = rng.random((n, n)) < 0.7
        if is_fully_indecomposable(pattern):
            assert is_normalizable(pattern)
