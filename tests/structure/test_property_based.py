"""Property-based tests for the zero-pattern machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.structure import (
    fully_indecomposable_components,
    has_support,
    has_total_support,
    is_fully_indecomposable,
    is_normalizable,
    normalizability_report,
    suggest_repairs,
    total_support_pattern,
)


def square_patterns(max_n: int = 6):
    """Square boolean patterns with no empty row/column."""

    def repair(arr: np.ndarray) -> np.ndarray:
        arr = arr.copy()
        n = arr.shape[0]
        for i in range(n):
            if not arr[i].any():
                arr[i, i % n] = True
            if not arr[:, i].any():
                arr[i % n, i] = True
        return arr

    return (
        st.integers(2, max_n)
        .flatmap(
            lambda n: npst.arrays(dtype=np.bool_, shape=(n, n),
                                  elements=st.booleans())
        )
        .map(repair)
    )


class TestPatternInvariants:
    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_total_support_subset_of_pattern(self, pattern):
        if not has_support(pattern):
            return
        core = total_support_pattern(pattern)
        assert not (core & ~pattern).any()

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_total_support_implies_support(self, pattern):
        if has_total_support(pattern):
            assert has_support(pattern)

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_fully_indecomposable_implies_total_support(self, pattern):
        if is_fully_indecomposable(pattern):
            assert has_total_support(pattern)

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_fully_indecomposable_implies_normalizable(self, pattern):
        """Marshall–Olkin sufficiency, fuzzed."""
        if is_fully_indecomposable(pattern):
            assert is_normalizable(pattern)

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, pattern):
        rng = np.random.default_rng(0)
        n = pattern.shape[0]
        permuted = pattern[np.ix_(rng.permutation(n), rng.permutation(n))]
        assert is_normalizable(pattern) == is_normalizable(permuted)
        assert is_fully_indecomposable(pattern) == is_fully_indecomposable(
            permuted
        )

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_transpose_invariance(self, pattern):
        assert is_normalizable(pattern) == is_normalizable(pattern.T)
        assert has_support(pattern) == has_support(pattern.T)

    @given(square_patterns())
    @settings(max_examples=40, deadline=None)
    def test_blocking_edges_lack_total_support(self, pattern):
        """Every blocking edge is outside the total-support pattern
        (square case: the two notions coincide)."""
        report = normalizability_report(pattern)
        if not report.feasible or not has_support(pattern):
            return
        core = total_support_pattern(pattern)
        for i, j in report.blocking_edges:
            assert not core[i, j]

    @given(square_patterns())
    @settings(max_examples=30, deadline=None)
    def test_drop_repair_yields_normalizable(self, pattern):
        report = normalizability_report(pattern)
        if not report.feasible:
            return
        plan = suggest_repairs(pattern, strategy="drop")
        repaired = plan.apply(pattern.astype(float))
        # Dropping can empty a line only if the line was all-blocking,
        # which feasibility forbids.
        assert is_normalizable(repaired)

    @given(square_patterns())
    @settings(max_examples=20, deadline=None)
    def test_add_repair_yields_normalizable(self, pattern):
        plan = suggest_repairs(pattern, strategy="add")
        assert is_normalizable(plan.apply(pattern.astype(float)))

    @given(square_patterns())
    @settings(max_examples=30, deadline=None)
    def test_components_partition_total_support(self, pattern):
        if not has_support(pattern):
            return
        comps = fully_indecomposable_components(pattern)
        seen_rows: set[int] = set()
        seen_cols: set[int] = set()
        for rows, cols in comps.blocks:
            assert len(rows) == len(cols)
            assert not (set(rows) & seen_rows)
            assert not (set(cols) & seen_cols)
            seen_rows |= set(rows)
            seen_cols |= set(cols)
        assert seen_rows == set(range(pattern.shape[0]))
        assert seen_cols == set(range(pattern.shape[1]))
