"""Tests for the pattern repair planner."""

import numpy as np
import pytest

from repro import MatrixValueError
from repro.structure import is_normalizable, suggest_repairs


class TestDropStrategy:
    def test_eq10_single_drop(self, eq10_matrix):
        plan = suggest_repairs(eq10_matrix, strategy="drop")
        assert plan.entries == ((1, 2),)
        assert not plan.already_normalizable
        assert is_normalizable(plan.apply(eq10_matrix))

    def test_apply_zeroes_entries(self, eq10_matrix):
        plan = suggest_repairs(eq10_matrix, strategy="drop")
        repaired = plan.apply(eq10_matrix)
        assert repaired[1, 2] == 0.0
        # Untouched entries survive.
        assert repaired[1, 0] == eq10_matrix[1, 0]

    def test_triangular(self):
        tri = np.triu(np.ones((4, 4)))
        plan = suggest_repairs(tri, strategy="drop")
        repaired = plan.apply(tri)
        assert is_normalizable(repaired)
        # The diagonal survives (it is the only total-support part).
        assert (np.diag(repaired) == 1.0).all()

    def test_already_normalizable_noop(self):
        plan = suggest_repairs(np.ones((3, 3)), strategy="drop")
        assert plan.already_normalizable
        assert plan.entries == ()

    def test_infeasible_margins_rejected(self):
        # Two rows confined to one shared column: dropping can never
        # fix the margin deficit.
        pattern = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(MatrixValueError):
            suggest_repairs(pattern, strategy="drop")


class TestAddStrategy:
    def test_eq10_single_add(self, eq10_matrix):
        plan = suggest_repairs(eq10_matrix, strategy="add")
        assert len(plan.entries) == 1
        assert is_normalizable(plan.apply(eq10_matrix))

    def test_added_entries_were_zero(self, eq10_matrix):
        plan = suggest_repairs(eq10_matrix, strategy="add")
        for i, j in plan.entries:
            assert eq10_matrix[i, j] == 0.0

    def test_apply_uses_fill(self, eq10_matrix):
        plan = suggest_repairs(eq10_matrix, strategy="add")
        repaired = plan.apply(eq10_matrix, fill=2.5)
        i, j = plan.entries[0]
        assert repaired[i, j] == 2.5

    def test_infeasible_margins_repairable(self):
        pattern = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        plan = suggest_repairs(pattern, strategy="add")
        assert is_normalizable(plan.apply(pattern))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_patterns_repaired(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        pattern = (rng.random((n, n)) < 0.4).astype(float)
        # Keep every row/column occupied so the pattern is a valid ECS.
        for i in range(n):
            if not pattern[i].any():
                pattern[i, rng.integers(n)] = 1.0
            if not pattern[:, i].any():
                pattern[rng.integers(n), i] = 1.0
        plan = suggest_repairs(pattern, strategy="add")
        assert is_normalizable(plan.apply(pattern))

    def test_unknown_strategy(self, eq10_matrix):
        with pytest.raises(MatrixValueError):
            suggest_repairs(eq10_matrix, strategy="rebuild")
