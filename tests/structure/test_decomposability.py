"""Tests for full indecomposability and block-form certificates."""

from itertools import permutations

import numpy as np
import pytest

from repro import MatrixShapeError
from repro.structure import (
    find_zero_block,
    is_fully_indecomposable,
    permute_to_block_form,
)


class TestIsFullyIndecomposable:
    def test_positive_matrix(self):
        assert is_fully_indecomposable(np.ones((4, 4)))

    def test_eq10_decomposable(self, eq10_matrix):
        assert not is_fully_indecomposable(eq10_matrix)

    def test_diagonal_decomposable(self):
        """The paper's Section VI caveat: diagonal matrices are
        decomposable (yet normalizable)."""
        assert not is_fully_indecomposable(np.diag([1.0, 2.0, 3.0]))

    def test_permutation_decomposable(self):
        assert not is_fully_indecomposable(np.eye(3)[[1, 2, 0]])

    def test_triangular_decomposable(self):
        assert not is_fully_indecomposable(np.triu(np.ones((3, 3))))

    def test_circulant_band_indecomposable(self):
        matrix = np.array(
            [[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]]
        )
        assert is_fully_indecomposable(matrix)

    def test_one_by_one(self):
        assert is_fully_indecomposable([[3.0]])
        assert not is_fully_indecomposable([[0.0]])

    def test_rectangular_all_positive(self):
        assert is_fully_indecomposable(np.ones((2, 4)))

    def test_rectangular_with_bad_minor(self):
        # The 2x2 minor on columns (1, 2) is diagonal -> decomposable.
        matrix = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]])
        assert not is_fully_indecomposable(matrix)

    def test_tall_matrices_transpose(self):
        assert is_fully_indecomposable(np.ones((4, 2)))

    def test_minor_explosion_guard(self):
        with pytest.raises(MatrixShapeError):
            is_fully_indecomposable(np.ones((3, 300)))


def _brute_force_zero_block(pattern: np.ndarray):
    """Oracle: search all k x (n-k) zero blocks by permutation."""
    n = pattern.shape[0]
    from itertools import combinations

    for k in range(1, n):
        for rows in combinations(range(n), k):
            cols_all_zero = [
                j for j in range(n) if not pattern[list(rows), j].any()
            ]
            if len(cols_all_zero) >= n - k:
                return list(rows), cols_all_zero[: n - k]
    return None


class TestFindZeroBlock:
    def test_none_for_positive(self):
        assert find_zero_block(np.ones((3, 3))) is None

    def test_eq10_block(self, eq10_matrix):
        block = find_zero_block(eq10_matrix)
        assert block is not None
        rows, cols = block
        assert len(rows) + len(cols) == 3
        assert not eq10_matrix[np.ix_(rows, cols)].any()

    def test_rejects_rectangular(self):
        with pytest.raises(MatrixShapeError):
            find_zero_block(np.ones((2, 3)))

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force_existence(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 6))
        pattern = rng.random((n, n)) < 0.6
        ours = find_zero_block(pattern)
        oracle = _brute_force_zero_block(pattern)
        assert (ours is None) == (oracle is None), pattern
        if ours is not None:
            rows, cols = ours
            assert len(rows) + len(cols) == n
            assert not pattern[np.ix_(rows, cols)].any()

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_indecomposability(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 5))
        pattern = rng.random((n, n)) < 0.7
        assert (find_zero_block(pattern) is None) == is_fully_indecomposable(
            pattern
        )


class TestPermuteToBlockForm:
    def test_eq10_reproduces_eq12_structure(self, eq10_matrix):
        form = permute_to_block_form(eq10_matrix)
        assert form is not None
        permuted = form.apply(eq10_matrix)
        k = form.block_size
        n = 3
        # Upper-right zero block of eq. 11.
        assert not permuted[:k, k:].any()
        # A11 and A22 are square by construction.
        assert permuted[:k, :k].shape == (k, k)
        assert permuted[k:, k:].shape == (n - k, n - k)

    def test_orders_are_permutations(self, eq10_matrix):
        form = permute_to_block_form(eq10_matrix)
        assert sorted(form.row_order) == [0, 1, 2]
        assert sorted(form.col_order) == [0, 1, 2]

    def test_none_for_indecomposable(self):
        assert permute_to_block_form(np.ones((3, 3))) is None

    @pytest.mark.parametrize("seed", range(10))
    def test_random_certificates_valid(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(2, 6))
        pattern = rng.random((n, n)) < 0.5
        form = permute_to_block_form(pattern)
        if form is None:
            assert is_fully_indecomposable(pattern)
        else:
            permuted = form.apply(pattern)
            assert not permuted[: form.block_size, form.block_size:].any()


def _per_minor_oracle(pattern: np.ndarray) -> bool:
    """Brualdi–Ryser: fully indecomposable iff every A(i|j) minor has a
    positive diagonal — the independent definition-level oracle."""
    n = pattern.shape[0]
    if n == 1:
        return bool(pattern[0, 0])

    def has_perfect_matching(mat):
        m = mat.shape[0]
        return any(
            all(mat[i, perm[i]] for i in range(m))
            for perm in permutations(range(m))
        )

    for i in range(n):
        for j in range(n):
            minor = np.delete(np.delete(pattern, i, axis=0), j, axis=1)
            if minor.size and not has_perfect_matching(minor):
                return False
    return True


class TestPerMinorOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_fast_test_matches_definition(self, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(1, 6))
        pattern = rng.random((n, n)) < 0.6
        assert is_fully_indecomposable(pattern) == _per_minor_oracle(pattern), (
            pattern
        )
