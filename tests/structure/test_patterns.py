"""Tests for support / total support pattern analysis."""

import numpy as np
import pytest

from repro import MatrixShapeError
from repro.structure import (
    has_support,
    has_total_support,
    support_pattern,
    total_support_pattern,
)


class TestSupportPattern:
    def test_bool_passthrough_copies(self):
        mask = np.array([[True, False]])
        out = support_pattern(mask)
        assert out is not mask
        np.testing.assert_array_equal(out, mask)

    def test_numeric_to_bool(self):
        np.testing.assert_array_equal(
            support_pattern([[0.0, 2.5], [1.0, 0.0]]),
            [[False, True], [True, False]],
        )

    def test_rejects_1d(self):
        with pytest.raises(MatrixShapeError):
            support_pattern([1.0, 2.0])


class TestHasSupport:
    def test_identity(self):
        assert has_support(np.eye(4))

    def test_permutation(self):
        assert has_support(np.eye(4)[[2, 0, 3, 1]])

    def test_positive_matrix(self):
        assert has_support(np.ones((3, 3)))

    def test_eq10_has_support(self, eq10_matrix):
        """The Section VI counterexample *does* have support — that is
        why the distinction with total support matters."""
        assert has_support(eq10_matrix)

    def test_no_support(self):
        # Two rows supported only on one shared column.
        assert not has_support([[1.0, 0.0], [1.0, 0.0]])

    def test_rectangular_row_saturation(self):
        assert has_support([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        assert not has_support([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])

    def test_rectangular_tall(self):
        assert has_support(np.ones((5, 2)))


class TestTotalSupport:
    def test_positive_matrix(self):
        assert has_total_support(np.ones((3, 3)))

    def test_identity(self):
        assert has_total_support(np.eye(3))

    def test_eq10_lacks_total_support(self, eq10_matrix):
        assert not has_total_support(eq10_matrix)

    def test_triangular_lacks_total_support(self):
        assert not has_total_support([[1.0, 1.0], [0.0, 1.0]])

    def test_pattern_identifies_offending_entry(self, eq10_matrix):
        mask = total_support_pattern(eq10_matrix)
        expected = eq10_matrix.astype(bool).copy()
        expected[1, 2] = False  # the entry forced to zero in the limit
        np.testing.assert_array_equal(mask, expected)

    def test_no_support_all_false(self):
        mask = total_support_pattern([[1.0, 0.0], [1.0, 0.0]])
        assert not mask.any()

    def test_rectangular_rejected(self):
        with pytest.raises(MatrixShapeError):
            total_support_pattern(np.ones((2, 3)))

    def test_circulant_full_total_support(self):
        matrix = np.array(
            [[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]]
        )
        assert has_total_support(matrix)


def _brute_force_total_support(pattern: np.ndarray) -> np.ndarray:
    """Oracle: enumerate all permutations (n <= 6)."""
    from itertools import permutations

    n = pattern.shape[0]
    mask = np.zeros_like(pattern, dtype=bool)
    for perm in permutations(range(n)):
        if all(pattern[i, perm[i]] for i in range(n)):
            for i in range(n):
                mask[i, perm[i]] = True
    return mask


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_patterns(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        pattern = rng.random((n, n)) < 0.55
        # Guarantee no empty rows/cols so the pattern is a plausible ECS.
        for i in range(n):
            if not pattern[i].any():
                pattern[i, rng.integers(n)] = True
            if not pattern[:, i].any():
                pattern[rng.integers(n), i] = True
        expected = _brute_force_total_support(pattern)
        if expected.any():  # matrix has support
            np.testing.assert_array_equal(
                total_support_pattern(pattern), expected, err_msg=str(pattern)
            )
        else:
            assert not has_support(pattern)
