"""Hypothesis strategies for ``(N, T, M)`` ensemble stacks.

Mirrors the matrix strategies in the top-level ``tests/conftest.py``
one axis up: entries stay in 1e±2 so Sinkhorn's linear rate (the
squared second singular value of the standard form) keeps per-example
iteration counts reasonable, and zero-pattern stacks never contain an
all-zero row or column in any slice.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

#: Strictly positive, well-conditioned stack entries.
positive_entries = st.floats(
    min_value=1e-2, max_value=1e2, allow_nan=False, allow_infinity=False
)


def ecs_stacks(
    min_slices: int = 1,
    max_slices: int = 4,
    min_side: int = 1,
    max_side: int = 5,
    positive_only: bool = True,
):
    """Strategy producing valid ``(N, T, M)`` ECS stacks.

    With ``positive_only=False`` entries may be zero, but every slice
    keeps at least one positive entry in each row and column (the same
    validity rule the scalar kernels enforce).  The zero patterns are
    otherwise unconstrained, so decomposable (non-convergent) slices
    are generated too — exactly what the differential tests need.
    """
    shapes = st.tuples(
        st.integers(min_slices, max_slices),
        st.integers(min_side, max_side),
        st.integers(min_side, max_side),
    )
    if positive_only:
        return shapes.flatmap(
            lambda shape: npst.arrays(
                dtype=np.float64, shape=shape, elements=positive_entries
            )
        )

    def with_zeros(shape):
        return npst.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.one_of(st.just(0.0), positive_entries),
        ).filter(
            lambda arr: (arr > 0).any(axis=2).all()
            and (arr > 0).any(axis=1).all()
        )

    return shapes.flatmap(with_zeros)
