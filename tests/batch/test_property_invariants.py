"""Paper invariants checked across whole batched stacks.

Theorem 1: the standard form — and hence TMA — is invariant under any
per-slice diagonal row/column rescaling.  Theorem 2: the largest
singular value of every converged standard-form slice is 1.  Plus the
range and scale-invariance properties (paper Section II-A) that make
the three measures usable, verified per slice over the batch.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    mph_batched,
    standard_singular_values_batched,
    standardize_batched,
    tdh_batched,
    tma_batched,
)

from .conftest import ecs_stacks

#: Sinkhorn stops at a 1e-8 residual, so downstream identities hold to
#: a small multiple of that — not to machine precision.
SINKHORN_ATOL = 1e-6


def _random_diagonals(shape, seed):
    """Per-slice positive row/column scaling vectors in [0.1, 10]."""
    n, t, m = shape
    rng = np.random.default_rng(seed)
    row = np.exp(rng.uniform(np.log(0.1), np.log(10.0), size=(n, t)))
    col = np.exp(rng.uniform(np.log(0.1), np.log(10.0), size=(n, m)))
    return row, col


class TestTheorem2:
    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_sigma1_is_one_across_stack(self, stack):
        values = standard_singular_values_batched(stack)
        np.testing.assert_allclose(
            values[:, 0], 1.0, rtol=0, atol=SINKHORN_ATOL
        )

    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_standard_margins_across_stack(self, stack):
        result = standardize_batched(stack)
        assert result.converged.all()
        np.testing.assert_allclose(
            result.matrix.sum(axis=2), result.row_target, atol=1e-7
        )
        np.testing.assert_allclose(
            result.matrix.sum(axis=1), result.col_target, atol=1e-7
        )


class TestTheorem1Independence:
    @settings(max_examples=30, deadline=None)
    @given(stack=ecs_stacks(min_side=2), seed=st.integers(0, 2**32 - 1))
    def test_tma_invariant_under_row_col_rescaling(self, stack, seed):
        """Rescaling each slice by arbitrary positive diagonals moves
        MPH and TDH but leaves the standard form — and TMA — fixed."""
        row, col = _random_diagonals(stack.shape, seed)
        rescaled = row[:, :, None] * stack * col[:, None, :]
        np.testing.assert_allclose(
            tma_batched(rescaled),
            tma_batched(stack),
            rtol=0,
            atol=SINKHORN_ATOL,
        )

    @settings(max_examples=30, deadline=None)
    @given(stack=ecs_stacks(min_side=2), seed=st.integers(0, 2**32 - 1))
    def test_standard_form_invariant_under_rescaling(self, stack, seed):
        """The stronger statement behind Theorem 1: the standard-form
        matrices themselves coincide, per slice."""
        row, col = _random_diagonals(stack.shape, seed)
        rescaled = row[:, :, None] * stack * col[:, None, :]
        np.testing.assert_allclose(
            standardize_batched(rescaled).matrix,
            standardize_batched(stack).matrix,
            rtol=0,
            atol=SINKHORN_ATOL,
        )


class TestScaleInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        stack=ecs_stacks(),
        factors=st.lists(
            st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=4
        ),
    )
    def test_global_scaling_leaves_all_measures(self, stack, factors):
        """Multiplying every slice by its own positive scalar (a faster
        fleet, the same heterogeneity) changes none of the measures."""
        scale = np.resize(np.asarray(factors), stack.shape[0])
        scaled = scale[:, None, None] * stack
        np.testing.assert_allclose(
            mph_batched(scaled), mph_batched(stack), rtol=1e-9
        )
        np.testing.assert_allclose(
            tdh_batched(scaled), tdh_batched(stack), rtol=1e-9
        )
        np.testing.assert_allclose(
            tma_batched(scaled), tma_batched(stack), rtol=0, atol=SINKHORN_ATOL
        )


class TestRanges:
    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_measures_in_paper_ranges(self, stack):
        m, t, a = mph_batched(stack), tdh_batched(stack), tma_batched(stack)
        assert ((m > 0) & (m <= 1)).all()
        assert ((t > 0) & (t <= 1)).all()
        assert ((a >= 0) & (a <= 1)).all()
