"""Golden regression pins for the SPEC figures (paper Figs. 6 and 7).

The paper reports the CINT/CFP measures at two decimals; these tests
additionally pin the full-precision triples this implementation
produces, so a kernel refactor that drifts the reproduced numbers —
even below the paper's printed precision — fails loudly instead of
silently.  The batched path is held to the same pinned values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import characterize_ensemble
from repro.measures import characterize
from repro.spec import load_dataset

#: Full-precision golden triples (mph, tdh, tma) and standard-form
#: iteration counts, computed by this implementation at tol=1e-8.
#: The pin tolerance leaves room for BLAS-level reassociation across
#: platforms while still catching any algorithmic drift.
GOLDEN = {
    "cint2006rate": {
        "mph": 0.8199921650161445,
        "tdh": 0.8999959005995641,
        "tma": 0.07000576281132756,
        "iterations": 5,
    },
    "cfp2006rate": {
        "mph": 0.829997320954615,
        "tdh": 0.9099996166264752,
        "tma": 0.17235520101788454,
        "iterations": 8,
    },
}

#: Paper-reported two-decimal values (Figs. 6 and 7).
PAPER = {
    "cint2006rate": (0.82, 0.90, 0.07),
    "cfp2006rate": (0.83, 0.91, 0.17),
}

PIN_ATOL = 1e-9


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scalar_pipeline_pinned(name):
    profile = characterize(load_dataset(name))
    golden = GOLDEN[name]
    assert profile.mph == pytest.approx(golden["mph"], abs=PIN_ATOL)
    assert profile.tdh == pytest.approx(golden["tdh"], abs=PIN_ATOL)
    assert profile.tma == pytest.approx(golden["tma"], abs=PIN_ATOL)
    assert profile.sinkhorn_iterations == golden["iterations"]


@pytest.mark.parametrize("name", sorted(PAPER))
def test_paper_reported_values(name):
    profile = characterize(load_dataset(name))
    mph, tdh, tma = PAPER[name]
    assert profile.mph == pytest.approx(mph, abs=5e-3)
    assert profile.tdh == pytest.approx(tdh, abs=5e-3)
    assert profile.tma == pytest.approx(tma, abs=5e-3)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_batched_pipeline_pinned(name):
    """The batched kernels reproduce the pinned SPEC triples on a
    single-slice stack (CINT and CFP have different shapes, so they
    can't share one)."""
    env = load_dataset(name)
    stack = env.to_ecs().weighted_values()[None, :, :]
    result = characterize_ensemble(stack)
    golden = GOLDEN[name]
    assert result.batched.all() and result.converged.all()
    assert result.mph[0] == pytest.approx(golden["mph"], abs=PIN_ATOL)
    assert result.tdh[0] == pytest.approx(golden["tdh"], abs=PIN_ATOL)
    assert result.tma[0] == pytest.approx(golden["tma"], abs=PIN_ATOL)
    assert int(result.iterations[0]) == golden["iterations"]


def test_batched_matches_scalar_on_spec_to_differential_tolerance():
    """Acceptance bound from the ISSUE: ≤ 1e-10 per-slice agreement of
    the two paths on the convergent SPEC environments."""
    for name in GOLDEN:
        env = load_dataset(name)
        profile = characterize(env)
        stack = env.to_ecs().weighted_values()[None, :, :]
        result = characterize_ensemble(stack)
        assert result.mph[0] == pytest.approx(profile.mph, abs=1e-10)
        assert result.tdh[0] == pytest.approx(profile.tdh, abs=1e-10)
        assert result.tma[0] == pytest.approx(profile.tma, abs=1e-10)


def test_spec_ensemble_perturbation_stays_batched():
    """A realistic fig. 6 ensemble use: noisy CINT replicas form a
    positive stack, so every slice takes the batched path."""
    from repro.generate import perturb_stack

    ecs = load_dataset("cint2006rate").to_ecs().weighted_values()
    stack = perturb_stack(ecs, 0.05, n_draws=16, seed=0)
    result = characterize_ensemble(stack)
    assert result.batched.all()
    golden = GOLDEN["cint2006rate"]
    # 5% multiplicative noise moves the measures only slightly.
    assert np.abs(result.mph - golden["mph"]).max() < 0.1
    assert np.abs(result.tdh - golden["tdh"]).max() < 0.1
    assert np.abs(result.tma - golden["tma"]).max() < 0.1
