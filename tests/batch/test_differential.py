"""Differential harness: batched kernels vs the scalar reference.

Property-based equivalence of ``repro.batch`` against per-slice calls
of the scalar pipeline over random positive and zero-patterned
``(N, T, M)`` stacks.  The batched path is an execution strategy, not a
reformulation — per-slice agreement is held to ≤ 1e-10 on convergent
stacks (in practice the Sinkhorn iterates are bit-identical, because
the broadcast reductions visit each slice's entries in the same order
as the scalar kernel).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch import (
    mph_batched,
    sinkhorn_knopp_batched,
    standardize_batched,
    tdh_batched,
    tma_batched,
)
from repro.exceptions import ConvergenceError, MatrixValueError
from repro.measures import mph, tdh, tma
from repro.normalize import sinkhorn_knopp, standardize

from .conftest import ecs_stacks

#: Acceptance bound: per-slice batched/scalar agreement on convergent
#: stacks (ISSUE acceptance criterion; the harness pins it).
ATOL = 1e-10

#: Iteration cap for adversarial zero patterns: enough for every
#: normalizable pattern this size, quick to fail for decomposable ones.
CAPPED = 500


class TestSinkhornDifferential:
    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_positive_stacks_match_scalar(self, stack):
        batched = sinkhorn_knopp_batched(stack)
        for i in range(stack.shape[0]):
            scalar = sinkhorn_knopp(stack[i])
            assert bool(batched.converged[i]) == scalar.converged
            assert int(batched.iterations[i]) == scalar.iterations
            np.testing.assert_allclose(
                batched.matrix[i], scalar.matrix, rtol=0, atol=ATOL
            )
            np.testing.assert_allclose(
                batched.row_scale[i], scalar.row_scale, rtol=ATOL
            )
            np.testing.assert_allclose(
                batched.col_scale[i], scalar.col_scale, rtol=ATOL
            )
            assert batched.residual_history[i] == pytest.approx(
                scalar.residual_history, abs=ATOL
            )

    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks(positive_only=False))
    def test_zero_patterns_match_scalar(self, stack):
        """Zero patterns — including non-convergent decomposable ones —
        follow the scalar iterate-for-iterate."""
        batched = sinkhorn_knopp_batched(
            stack, require_convergence=False, max_iterations=CAPPED
        )
        for i in range(stack.shape[0]):
            scalar = sinkhorn_knopp(
                stack[i], require_convergence=False, max_iterations=CAPPED
            )
            assert bool(batched.converged[i]) == scalar.converged
            assert int(batched.iterations[i]) == scalar.iterations
            np.testing.assert_allclose(
                batched.matrix[i], scalar.matrix, rtol=0, atol=ATOL
            )
            assert float(batched.residual[i]) == pytest.approx(
                scalar.residual, abs=ATOL
            )

    @settings(max_examples=20, deadline=None)
    @given(stack=ecs_stacks(max_side=4))
    def test_slice_bridge_matches_scalar_result(self, stack):
        """`BatchNormalizationResult.slice(i)` is a drop-in scalar result."""
        batched = sinkhorn_knopp_batched(stack)
        view = batched.slice(0)
        scalar = sinkhorn_knopp(stack[0])
        assert view.converged == scalar.converged
        assert view.iterations == scalar.iterations
        np.testing.assert_allclose(view.matrix, scalar.matrix, rtol=0, atol=ATOL)
        assert view.max_sum_error() == pytest.approx(
            scalar.max_sum_error(), abs=ATOL
        )

    def test_non_convergent_raises_with_slice_indices(self, eq10_stack):
        with pytest.raises(ConvergenceError, match="slice"):
            sinkhorn_knopp_batched(eq10_stack, max_iterations=CAPPED)

    def test_validation_mirrors_scalar(self):
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp_batched(-np.ones((2, 2, 2)))
        with pytest.raises(MatrixValueError):
            sinkhorn_knopp_batched(np.full((1, 2, 2), np.inf))
        bad = np.ones((2, 3, 3))
        bad[1, 2, :] = 0.0  # all-zero row in slice 1
        with pytest.raises(MatrixValueError, match=r"\[1\]"):
            sinkhorn_knopp_batched(bad)
        with pytest.raises(MatrixValueError, match="inconsistent"):
            sinkhorn_knopp_batched(
                np.ones((1, 2, 2)), row_target=1.0, col_target=3.0
            )


@pytest.fixture
def eq10_stack():
    """A stack whose middle slice is Section VI's decomposable eq. 10."""
    eq10 = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
    pos = np.arange(1.0, 10.0).reshape(3, 3)
    return np.stack([pos, eq10, pos + 1.0])


class TestStandardizeDifferential:
    @settings(max_examples=30, deadline=None)
    @given(stack=ecs_stacks())
    def test_standard_form_matches_scalar(self, stack):
        batched = standardize_batched(stack)
        for i in range(stack.shape[0]):
            scalar = standardize(stack[i])
            np.testing.assert_allclose(
                batched.matrix[i], scalar.matrix, rtol=0, atol=ATOL
            )
            assert int(batched.iterations[i]) == scalar.iterations

    def test_partial_convergence_mask(self, eq10_stack):
        result = standardize_batched(
            eq10_stack, require_convergence=False, max_iterations=CAPPED
        )
        assert result.converged.tolist() == [True, False, True]
        assert result.iterations[1] == CAPPED


class TestMeasureDifferential:
    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_mph_matches_scalar(self, stack):
        batched = mph_batched(stack)
        expected = [mph(stack[i]) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, rtol=0, atol=ATOL)

    @settings(max_examples=40, deadline=None)
    @given(stack=ecs_stacks())
    def test_tdh_matches_scalar(self, stack):
        batched = tdh_batched(stack)
        expected = [tdh(stack[i]) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, rtol=0, atol=ATOL)

    @settings(max_examples=30, deadline=None)
    @given(stack=ecs_stacks())
    def test_tma_matches_scalar(self, stack):
        batched = tma_batched(stack)
        expected = [tma(stack[i]) for i in range(stack.shape[0])]
        np.testing.assert_allclose(batched, expected, rtol=0, atol=ATOL)

    @settings(max_examples=30, deadline=None)
    @given(stack=ecs_stacks(positive_only=False, min_side=2))
    def test_mph_tdh_with_zero_patterns(self, stack):
        """MPH/TDH need no standard form, so they batch for any valid
        zero pattern."""
        np.testing.assert_allclose(
            mph_batched(stack),
            [mph(stack[i]) for i in range(stack.shape[0])],
            rtol=0,
            atol=ATOL,
        )
        np.testing.assert_allclose(
            tdh_batched(stack),
            [tdh(stack[i]) for i in range(stack.shape[0])],
            rtol=0,
            atol=ATOL,
        )
