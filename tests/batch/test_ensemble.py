"""`characterize_ensemble` dispatch rules and the rewired study paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ECSMatrix, ETCMatrix
from repro.batch import (
    ENSEMBLE_DTYPE,
    characterize_ensemble,
    stack_environments,
)
from repro.exceptions import MatrixShapeError, MatrixValueError, WeightError
from repro.generate import perturb_stack, random_ecs, random_ecs_stack
from repro.measures import characterize


@pytest.fixture
def positive_stack():
    rng = np.random.default_rng(7)
    return rng.uniform(0.5, 5.0, size=(12, 5, 4))


class TestDispatch:
    def test_positive_stack_goes_fully_batched(self, positive_stack):
        result = characterize_ensemble(positive_stack)
        assert result.batched.all()
        assert result.converged.all()
        assert (result.n_tasks, result.n_machines) == (5, 4)
        assert len(result) == 12

    def test_matches_scalar_characterize(self, positive_stack):
        result = characterize_ensemble(positive_stack)
        for i, matrix in enumerate(positive_stack):
            profile = characterize(matrix)
            assert result.mph[i] == pytest.approx(profile.mph, abs=1e-10)
            assert result.tdh[i] == pytest.approx(profile.tdh, abs=1e-10)
            assert result.tma[i] == pytest.approx(profile.tma, abs=1e-10)
            assert result.iterations[i] == profile.sinkhorn_iterations

    def test_zero_slices_fall_back_to_scalar(self):
        rng = np.random.default_rng(1)
        stack = rng.uniform(0.5, 5.0, size=(4, 3, 3))
        stack[2, 0, 1] = 0.0  # normalizable zero pattern
        result = characterize_ensemble(stack)
        assert result.batched.tolist() == [True, True, False, True]
        profile = characterize(stack[2])
        assert result.tma[2] == pytest.approx(profile.tma, abs=1e-10)

    def test_batched_false_forces_scalar_path(self, positive_stack):
        batched = characterize_ensemble(positive_stack)
        scalar = characterize_ensemble(positive_stack, batched=False)
        assert not scalar.batched.any()
        np.testing.assert_allclose(batched.mph, scalar.mph, atol=1e-10)
        np.testing.assert_allclose(batched.tdh, scalar.tdh, atol=1e-10)
        np.testing.assert_allclose(batched.tma, scalar.tma, atol=1e-10)
        np.testing.assert_array_equal(batched.iterations, scalar.iterations)

    def test_ragged_sequence_falls_back(self):
        envs = [np.ones((2, 2)), np.ones((3, 2))]
        result = characterize_ensemble(envs)
        assert result.n_tasks is None and result.n_machines is None
        assert not result.batched.any()
        np.testing.assert_allclose(result.mph, 1.0)

    def test_wrapper_sequence_is_stacked(self):
        envs = [
            ETCMatrix([[2.0, 1.0], [1.0, 2.0]]),
            ECSMatrix([[1.0, 2.0], [2.0, 1.0]]),
        ]
        result = characterize_ensemble(envs)
        assert result.batched.all()
        for i, env in enumerate(envs):
            assert result.tma[i] == pytest.approx(
                characterize(env).tma, abs=1e-10
            )

    def test_weights_fold_into_the_stack(self, positive_stack):
        w_t = np.linspace(1.0, 2.0, positive_stack.shape[1])
        w_m = np.linspace(0.5, 1.5, positive_stack.shape[2])
        result = characterize_ensemble(
            positive_stack, task_weights=w_t, machine_weights=w_m
        )
        profile = characterize(
            positive_stack[0], task_weights=w_t, machine_weights=w_m
        )
        assert result.mph[0] == pytest.approx(profile.mph, abs=1e-10)
        assert result.tma[0] == pytest.approx(profile.tma, abs=1e-10)

    def test_weights_rejected_for_wrappers(self):
        envs = [ECSMatrix(np.ones((2, 2))) for _ in range(2)]
        with pytest.raises(WeightError):
            characterize_ensemble(envs, task_weights=[1.0, 2.0])

    def test_invalid_inputs(self):
        with pytest.raises(MatrixShapeError):
            characterize_ensemble(np.empty((0, 2, 2)))
        with pytest.raises(MatrixValueError):
            characterize_ensemble(np.ones((1, 2, 2)), tma_fallback="nope")
        with pytest.raises(MatrixShapeError):
            characterize_ensemble([])


class TestColumnarResult:
    def test_records_structured_array(self, positive_stack):
        records = characterize_ensemble(positive_stack).records()
        assert records.dtype == ENSEMBLE_DTYPE
        assert records.shape == (12,)
        assert (records["mph"] > 0).all()
        assert records["converged"].all()

    def test_measures_matrix_shape(self, positive_stack):
        result = characterize_ensemble(positive_stack)
        assert result.measures.shape == (12, 3)
        np.testing.assert_array_equal(result.measures[:, 2], result.tma)

    def test_summary_mentions_batching(self, positive_stack):
        text = characterize_ensemble(positive_stack).summary()
        assert "12 environments" in text and "12 batched" in text


class TestStackHelpers:
    def test_random_ecs_stack_matches_per_item_draws(self):
        stack = random_ecs_stack(5, 4, 3, seed=42)
        rng = np.random.default_rng(42)
        for i in range(5):
            child = int(rng.integers(0, 2**63 - 1))
            expected = random_ecs(4, 3, seed=child).values
            np.testing.assert_array_equal(stack[i], expected)

    def test_perturb_stack_matches_per_item_draws(self):
        from repro.generate import perturb

        base = np.ones((3, 3))
        stack = perturb_stack(base, 0.2, n_draws=4, seed=9)
        rng = np.random.default_rng(9)
        for i in range(4):
            child = int(rng.integers(0, 2**63 - 1))
            np.testing.assert_array_equal(
                stack[i], perturb(base, 0.2, seed=child)
            )

    def test_stack_environments_ragged_returns_none(self):
        assert stack_environments([np.ones((2, 2)), np.ones((2, 3))]) is None


class TestRewiredStudies:
    def test_sensitivity_batched_matches_scalar(self):
        from repro.analysis import sensitivity_study

        matrix = np.random.default_rng(0).uniform(1, 5, (6, 4))
        batched = sensitivity_study(matrix, trials=5, seed=3)
        scalar = sensitivity_study(matrix, trials=5, seed=3, batched=False)
        np.testing.assert_allclose(
            batched.mean_shift, scalar.mean_shift, atol=1e-10
        )
        np.testing.assert_allclose(
            batched.max_shift, scalar.max_shift, atol=1e-10
        )

    def test_correlations_batched_matches_scalar(self):
        from repro.analysis import measure_correlations

        batched = measure_correlations(samples=25, seed=4)
        scalar = measure_correlations(samples=25, seed=4, batched=False)
        np.testing.assert_allclose(batched, scalar, atol=1e-9)

    def test_generator_footprint_batched_matches_scalar(self):
        from repro.analysis.regimes import characterize_generator
        from repro.generate import braun_case

        factory = lambda s: braun_case(
            "hilo-i", n_tasks=8, n_machines=4, seed=s
        )
        batched = characterize_generator("hilo-i", factory, samples=4, seed=5)
        scalar = characterize_generator(
            "hilo-i", factory, samples=4, seed=5, batched=False
        )
        np.testing.assert_allclose(
            batched.samples, scalar.samples, atol=1e-10
        )

    def test_cli_no_batched_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.io import save_etc_csv
        from repro.core.environment import ETCMatrix

        path = str(tmp_path / "env.csv")
        save_etc_csv(
            ETCMatrix(np.random.default_rng(0).uniform(1, 9, (4, 3))), path
        )
        for flag in (["--batched"], ["--no-batched"]):
            assert (
                main(
                    ["sensitivity", path, "--trials", "2", "--noise", "0.05"]
                    + flag
                )
                == 0
            )
            assert "sigma" in capsys.readouterr().out
