"""Section V walkthrough: characterizing the SPEC-derived environments.

Reproduces the paper's evaluation narrative on the bundled
CINT2006Rate / CFP2006Rate tables: the full-suite measures (Figs. 6-7),
the contrasting 2x2 submatrices of Fig. 8, and the what-if effect of
removing the heavy floating-point task types.  Run with::

    python examples/spec_characterization.py
"""

from repro import characterize
from repro.analysis import comparison_table, format_table, whatif_drop_tasks
from repro.spec import cfp2006rate, cint2006rate, figure8a, figure8b


def main() -> None:
    cint, cfp = cint2006rate(), cfp2006rate()

    print("=== Full suites (paper Figs. 6 and 7) ===")
    rows = comparison_table(
        {"CINT2006Rate": cint, "CFP2006Rate": cfp},
        columns=("mph", "tdh", "tma", "sinkhorn_iterations"),
    )
    print(format_table(rows))
    print()
    print(
        "paper: CINT TDH=0.90 MPH=0.82 TMA=0.07 (6 iters); "
        "CFP TDH=0.91 MPH=0.83, higher TMA (7 iters)"
    )
    print()

    print("=== Extracted 2x2 environments (paper Fig. 8) ===")
    for label, env in [("(a)", figure8a()), ("(b)", figure8b())]:
        profile = characterize(env)
        print(
            f"{label} tasks={env.task_names} machines={env.machine_names}"
        )
        print(
            f"    TDH={profile.tdh:.2f}  MPH={profile.mph:.2f}  "
            f"TMA={profile.tma:.2f}"
        )
    print(
        "paper: (a) near-zero affinity but very heterogeneous task "
        "difficulty; (b) TMA = 0.60 because the two task types prefer "
        "opposite machines"
    )
    print()

    print("=== What-if: dropping the affinity-carrying CFP tasks ===")
    for entry in whatif_drop_tasks(cfp, ["436.cactusADM", "450.soplex"]):
        print("  " + entry.summary())
    print()
    print(
        "both removals lower the suite's TMA — those two rows carry the "
        "opposite-machine preference that Fig. 8(b) isolates"
    )


if __name__ == "__main__":
    main()
