"""Capacity planning, end to end: every subsystem in one scenario.

A fictional operator runs the five SPEC machines and the CINT workload
mix, and is considering (a) adding a vector accelerator and (b) porting
task types that currently cannot use it.  The walkthrough measures the
environment, reports the affinity structure, repairs the compatibility
pattern, picks a mapper from the measures, checks its robustness, and
finally confirms the choice in an online simulation.  Run with::

    python examples/capacity_planning.py
"""

import numpy as np

from repro import characterize
from repro.analysis import describe_regime, environment_report
from repro.scheduling import (
    compare_heuristics,
    poisson_arrivals,
    expand_workload,
    recommend_heuristic,
    robustness_comparison,
    simulate_online,
)
from repro.spec import cint2006rate
from repro.structure import is_normalizable, suggest_repairs


def main() -> None:
    base = cint2006rate()

    print("=== Step 1: where are we today? ===")
    profile = characterize(base)
    print(f"{describe_regime(profile)}; MPH={profile.mph:.2f} "
          f"TDH={profile.tdh:.2f} TMA={profile.tma:.2f}")
    print()

    print("=== Step 2: the accelerator proposal ===")
    # The accelerator runs two numeric kernels ~8x faster but nothing
    # else has been ported yet (inf ETC everywhere else) — an extreme
    # special-purpose resource, exactly the case the paper's Section V
    # closing remark anticipates.
    column = np.full(base.n_tasks, np.inf)
    ported = [7, 5]             # libquantum, hmmer
    column[ported] = base.values.min(axis=1)[ported] / 8.0
    upgraded = base.add_machine("accel", column)
    new_profile = characterize(upgraded)
    print(f"with accel: {describe_regime(new_profile)}")
    print(f"MPH {profile.mph:.2f}->{new_profile.mph:.2f}, "
          f"TDH {profile.tdh:.2f}->{new_profile.tdh:.2f}, "
          f"TMA {profile.tma:.2f}->{new_profile.tma:.2f} "
          f"[{new_profile.tma_method} form]")
    print()

    print("=== Step 3: is the compatibility pattern normalizable? ===")
    ecs = upgraded.to_ecs().values
    print(f"is_normalizable: {is_normalizable(ecs)}")
    plan = suggest_repairs(ecs, strategy="add")
    if plan.already_normalizable:
        print("no repairs needed — the standard form exists")
    else:
        ports = [
            f"{upgraded.task_names[i]} -> {upgraded.machine_names[j]}"
            for i, j in plan.entries
        ]
        print(f"suggested ports to restore the standard form: {ports}")
    print()

    print("=== Step 4: which mapper? ===")
    name, reason = recommend_heuristic(upgraded)
    print(f"recommended: {name}  ({reason})")
    comparison = compare_heuristics(upgraded, total=60, seed=0)
    print(f"measured best on a 60-task batch: {comparison.best} "
          f"(recommendation's ratio: {comparison.ratios[name]:.2f})")
    print()

    print("=== Step 5: nominal makespan vs robustness ===")
    tradeoff = robustness_comparison(upgraded, total=60, seed=0)
    print("heuristic   makespan    radius")
    for heuristic, (makespan, radius) in sorted(
        tradeoff.items(), key=lambda kv: -kv[1][1]
    )[:4]:
        print(f"{heuristic:<10} {makespan:9.1f}  {radius:8.2f}")
    print()

    print("=== Step 6: confirm online ===")
    workload = expand_workload(upgraded, total=80, seed=1)
    arrivals = poisson_arrivals(80, rate=0.02, seed=2)
    for policy in ("mct", "auto"):
        res = simulate_online(workload, arrivals, policy=policy, seed=3)
        print(f"{res.policy:<14} makespan={res.makespan:9.1f}  "
              f"mean response={res.mean_response:8.1f}")
    print()
    print("=== Step 7: one-page report for the meeting ===")
    print(environment_report(upgraded, name="cluster + accel",
                             max_whatif_rows=3))


if __name__ == "__main__":
    main()
