"""Generating ETC matrices that span the heterogeneity space.

The paper's reference [2] application: simulation studies need
environments "that span the entire range of heterogeneities".  This
example shows the three generator families side by side —

* the classic range-based method [4] (heterogeneity as uniform ranges),
* the COV-based method (heterogeneity as gamma coefficients of
  variation), and
* the measure-driven generator, which hits requested (MPH, TDH, TMA)
  values *exactly* by combining an affinity core with margin scaling
  (TMA is invariant under the margin step by Theorem 1)

— and demonstrates the independence of the three measures by sweeping
TMA while MPH and TDH stay pinned.  Run with::

    python examples/generate_ensembles.py
"""

import numpy as np

from repro import characterize
from repro.analysis import independence_study
from repro.generate import cvb, from_targets, range_based


def show(label: str, env) -> None:
    profile = characterize(env)
    print(
        f"{label:<34} MPH={profile.mph:.3f}  TDH={profile.tdh:.3f}  "
        f"TMA={profile.tma:.3f}"
    )


def main() -> None:
    print("=== Classic generators (heterogeneity as distributions) ===")
    show("range-based HiHi (3000/1000)", range_based(12, 6, seed=0))
    show(
        "range-based LoLo (10/5)",
        range_based(12, 6, task_range=10, machine_range=5, seed=0),
    )
    show(
        "range-based consistent",
        range_based(12, 6, consistency="consistent", seed=0),
    )
    show("CVB high COV (0.9/0.6)", cvb(12, 6, task_cov=0.9,
                                       machine_cov=0.6, seed=0))
    print()

    print("=== Measure-driven generation (exact targets) ===")
    for targets in [(0.3, 0.9, 0.1), (0.9, 0.3, 0.1), (0.6, 0.6, 0.5)]:
        env = from_targets(10, 6, targets, jitter=0.25, seed=1)
        show(f"targets MPH/TDH/TMA = {targets}", env)
    print()

    print("=== Independence: sweep TMA, pin MPH = TDH = 0.7 ===")
    result = independence_study(
        "tma", n_tasks=8, n_machines=6, targets=np.linspace(0.1, 0.7, 7)
    )
    print("target-TMA   achieved-MPH  achieved-TDH  achieved-TMA")
    for target, (m, t, a) in zip(result.targets, result.achieved):
        print(f"   {target:.2f}        {m:.4f}       {t:.4f}       {a:.4f}")
    print(
        f"pinned-measure drift across the sweep: {result.max_drift():.2e} "
        "— the standard form keeps the three measures independent"
    )


if __name__ == "__main__":
    main()
