"""Affinity structure and online mapping: beyond the scalar TMA.

TMA says *how much* task-machine affinity an environment has; this
example digs into *which* tasks prefer *which* machines (spectral
co-clustering on the standard-form singular vectors) and then shows the
structure paying off in an online mapping simulation: the
heterogeneity-aware ``auto`` policy reads the environment's affinity
before choosing how selective to be about machines.  Run with::

    python examples/affinity_structure.py
"""

import numpy as np

from repro.measures import affinity_clusters, characterize
from repro.scheduling import (
    expand_workload,
    poisson_arrivals,
    simulate_online,
)
from repro.spec import cfp2006rate


def main() -> None:
    print("=== A CPU/GPU/FPGA shop with three affinity groups ===")
    # Speeds: each workload family is ~20x faster on its own hardware.
    ecs = np.array(
        [
            # cpu1  cpu2  gpu1  gpu2  fpga
            [8.0, 7.5, 0.4, 0.5, 0.3],   # compile
            [7.0, 8.0, 0.5, 0.4, 0.4],   # serve
            [0.4, 0.5, 9.0, 8.5, 0.5],   # train
            [0.5, 0.4, 8.0, 9.0, 0.4],   # render
            [0.3, 0.4, 0.5, 0.4, 9.0],   # encode
        ]
    )
    clusters = affinity_clusters(ecs)
    names_t = ["compile", "serve", "train", "render", "encode"]
    names_m = ["cpu1", "cpu2", "gpu1", "gpu2", "fpga"]
    print(f"detected {clusters.n_clusters} groups, "
          f"affinity strength (TMA) = {clusters.strength:.3f}")
    for cid in range(clusters.n_clusters):
        tasks = [names_t[i] for i in clusters.task_groups()[cid]]
        machines = [names_m[j] for j in clusters.machine_groups()[cid]]
        print(f"  group {cid}: {tasks}  <->  {machines}")
    print()

    print("=== The SPEC CFP environment's hidden structure ===")
    cfp = cfp2006rate()
    spec_clusters = affinity_clusters(cfp)
    print(f"groups: {spec_clusters.n_clusters}, "
          f"TMA = {spec_clusters.strength:.3f}")
    for cid in range(spec_clusters.n_clusters):
        tasks = [cfp.task_names[i] for i in spec_clusters.task_groups()[cid]]
        machines = [
            cfp.machine_names[j] for j in spec_clusters.machine_groups()[cid]
        ]
        print(f"  group {cid}: {tasks} <-> {machines}")
    print(
        "(the isolated soplex <-> m4 pair is exactly the Fig. 8(b) "
        "affinity the paper highlights)"
    )
    print()

    print("=== Online mapping with the structure exploited ===")
    profile = characterize(cfp)
    print(f"environment: MPH={profile.mph:.2f} TDH={profile.tdh:.2f} "
          f"TMA={profile.tma:.2f}")
    workload = expand_workload(cfp, total=60, seed=0)
    arrivals = poisson_arrivals(60, rate=0.004, seed=1)
    print("policy   makespan     mean-response")
    for policy in ("mct", "met", "olb", "kpb", "auto"):
        res = simulate_online(workload, arrivals, policy=policy, k=0.4,
                              seed=2)
        print(f"{res.policy:<12} {res.makespan:10.1f}  "
              f"{res.mean_response:10.1f}")


if __name__ == "__main__":
    main()
