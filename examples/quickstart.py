"""Quickstart: characterize a heterogeneous computing environment.

Builds a small ETC matrix by hand, converts it to ECS speeds, computes
the paper's three heterogeneity measures (MPH, TDH, TMA), and shows the
one-call ``characterize`` report.  Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ETCMatrix, characterize, mph, tdh, tma


def main() -> None:
    # Estimated time to compute (seconds): 4 task types x 3 machines.
    # The GPU-style machine m3 is great at "render" and "train" but
    # poor at the branchy "compile" workload — that interaction is
    # task-machine affinity.
    etc = ETCMatrix(
        [
            [10.0, 12.0, 60.0],   # compile
            [45.0, 50.0, 8.0],    # render
            [30.0, 34.0, 5.0],    # train
            [20.0, 21.0, 22.0],   # archive
        ],
        task_names=["compile", "render", "train", "archive"],
        machine_names=["xeon", "epyc", "gpu-node"],
    )

    print("ETC matrix (seconds):")
    print(etc.values)
    print()

    ecs = etc.to_ecs()
    print("ECS matrix (work per second, paper eq. 1):")
    print(np.round(ecs.values, 4))
    print()

    print(f"MPH (machine performance homogeneity) = {mph(etc):.4f}")
    print(f"TDH (task difficulty homogeneity)     = {tdh(etc):.4f}")
    print(f"TMA (task-machine affinity)           = {tma(etc):.4f}")
    print()

    # The one-call profile adds the Section II-D comparison statistics
    # and the standard-form diagnostics.
    profile = characterize(etc)
    print(profile.summary())
    print()

    # Measures are invariant under a change of time units (property 2):
    minutes = etc.scaled(1.0 / 60.0)
    assert abs(mph(minutes) - mph(etc)) < 1e-12
    print("scaling to minutes leaves every measure unchanged ✓")


if __name__ == "__main__":
    main()
