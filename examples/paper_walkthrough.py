"""The whole paper, figure by figure, in one script.

Walks through every illustration of Al-Qawasmeh et al. (IPDPS 2011)
using the library's public API: Fig. 1 (machine performance), Fig. 2
(MPH vs the rejected alternatives), Fig. 3 (affinity with equal machine
performance), Fig. 4 (the eight extreme corners), Figs. 6–7 (the SPEC
suites), Fig. 8 (the 2×2 extractions), and Section VI (the matrix with
no standard form).  Run with::

    python examples/paper_walkthrough.py
"""

import numpy as np

from repro import NotNormalizableError, characterize, standardize
from repro.measures import (
    coefficient_of_variation,
    geometric_mean_ratio,
    machine_performance,
    min_max_ratio,
    mph,
    tma,
)
from repro.spec import cfp2006rate, cint2006rate, figure8a, figure8b
from repro.structure import normalizability_report, permute_to_block_form


def section(title: str) -> None:
    print()
    print(f"── {title} " + "─" * max(0, 60 - len(title)))


def main() -> None:
    section("Fig. 1 — machine performance is the ECS column sum")
    fig1 = np.array(
        [[4.0, 8.0, 5.0], [5.0, 9.0, 4.0], [6.0, 5.0, 2.0], [2.0, 1.0, 3.0]]
    )
    mp = machine_performance(fig1)
    print(f"performances: {mp}  (paper: machine 1 scores 17)")
    print(f"MPH = {mph(fig1):.4f}")

    section("Fig. 2 — only MPH matches intuition")
    environments = {
        "env1": [1, 2, 4, 8, 16],
        "env2": [1, 1, 1, 1, 16],
        "env3": [1, 16, 16, 16, 16],
        "env4": [1, 4, 4, 4, 16],
    }
    print("env    MPH     R       G       COV")
    for name, perf in environments.items():
        perf = np.asarray(perf, dtype=float)
        print(
            f"{name}   {mph(np.diag(perf)):.4f}  {min_max_ratio(perf):.4f}"
            f"  {geometric_mean_ratio(perf):.4f}  "
            f"{coefficient_of_variation(perf):.4f}"
        )
    print("R and G are constant; COV breaks the env2/env3 tie; MPH orders"
          " env1 < env4 < env2 = env3.")

    section("Fig. 3 — same machine performance, different affinity")
    a = np.array([[4.0, 4.0, 4.0], [5.0, 5.0, 5.0], [6.0, 6.0, 6.0]])
    b = np.array([[10.0, 1.0, 4.0], [1.0, 10.0, 4.0], [4.0, 4.0, 7.0]])
    print(f"(a) MPH={mph(a):.2f} TMA={tma(a):.4f}   "
          f"(b) MPH={mph(b):.2f} TMA={tma(b):.4f}")

    section("Fig. 4 — the eight extreme 2×2 corners")
    matrices = {
        "A": [[10.0, 0.0], [9.0, 1.0]],
        "B": [[1.0, 0.0], [10.0, 100.0]],
        "C": [[1.0, 0.0], [0.0, 1.0]],
        "D": [[1.0, 0.0], [9.0, 10.0]],
        "E": [[1.0, 10.0], [1.0, 10.0]],
        "F": [[0.1, 1.0], [1.0, 10.0]],
        "G": [[1.0, 1.0], [1.0, 1.0]],
        "H": [[0.1, 0.1], [1.0, 1.0]],
    }
    print("matrix  MPH     TDH     TMA")
    for key, matrix in matrices.items():
        profile = characterize(np.asarray(matrix))
        print(f"{key}       {profile.mph:.3f}   {profile.tdh:.3f}   "
              f"{profile.tma:.3f}")
    target = standardize(np.asarray(matrices["C"])).matrix
    limit = standardize(np.asarray(matrices["A"]), zeros="limit").matrix
    print("eq. 9 applied to A converges to the standard form of C:",
          np.allclose(limit, target, atol=1e-8))

    section("Figs. 6–7 — the SPEC environments")
    for name, env in (("CINT", cint2006rate()), ("CFP", cfp2006rate())):
        profile = characterize(env)
        print(f"{name}: TDH={profile.tdh:.2f} MPH={profile.mph:.2f} "
              f"TMA={profile.tma:.2f} "
              f"({profile.sinkhorn_iterations} Sinkhorn iterations)")

    section("Fig. 8 — contrasting 2×2 extractions")
    for label, env in (("(a)", figure8a()), ("(b)", figure8b())):
        profile = characterize(env)
        print(f"{label} {env.task_names} x {env.machine_names}: "
              f"TDH={profile.tdh:.2f} TMA={profile.tma:.2f}")

    section("Section VI — the matrix with no standard form")
    eq10 = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
    report = normalizability_report(eq10)
    print(f"normalizable: {report.normalizable}; "
          f"blocking entry: {report.blocking_edges}")
    try:
        standardize(eq10)
    except NotNormalizableError as exc:
        print(f"standardize() correctly refuses: {type(exc).__name__}")
    form = permute_to_block_form(eq10)
    print("block form (paper eq. 12):")
    print(form.apply(eq10))
    print(f"TMA in the eq. 9 limit (paper's future work): "
          f"{tma(eq10, zeros='limit'):.2f}")


if __name__ == "__main__":
    main()
