"""What-if study: how edits to an HC system move its heterogeneity.

The paper's introduction lists "what-if studies to identify the effect
of adding/removing task types or machines" as a core application.
This example runs the full removal study on the CINT2006Rate
environment and then explores an upgrade scenario: what happens to the
measures when a GPU-like accelerator joins a CPU cluster.  Run with::

    python examples/whatif_study.py
"""

import numpy as np

from repro import ECSMatrix
from repro.analysis import (
    whatif_add_machine,
    whatif_drop_machines,
    whatif_drop_tasks,
)
from repro.spec import cint2006rate


def main() -> None:
    env = cint2006rate()

    print("=== Removing one machine from CINT2006Rate ===")
    for entry in whatif_drop_machines(env):
        print("  " + entry.summary())
    print()

    print("=== Removing the extreme task types ===")
    for entry in whatif_drop_tasks(
        env, ["462.libquantum", "471.omnetpp", "464.h264ref"]
    ):
        print("  " + entry.summary())
    print()

    print("=== Upgrade scenario: adding an accelerator ===")
    # A small homogeneous CPU cluster (speeds per task type)...
    cluster = ECSMatrix(
        np.array(
            [
                [1.0, 1.1, 0.9],
                [2.0, 2.1, 1.9],
                [0.5, 0.55, 0.5],
                [1.5, 1.4, 1.6],
            ]
        ),
        task_names=["stencil", "fft", "branchy", "blas"],
        machine_names=["cpu1", "cpu2", "cpu3"],
    )
    # ...gains an accelerator: 10x on the numeric kernels, slower on
    # the branchy workload.
    entry = whatif_add_machine(
        cluster, "accelerator", [10.0, 20.0, 0.1, 15.0]
    )
    print("  " + entry.summary())
    print()
    print(
        "the accelerator adds machine-performance spread (MPH down) and "
        "opposite task preferences (TMA up) — the paper's prediction "
        "for environments with special-purpose resources (Section V)"
    )


if __name__ == "__main__":
    main()
