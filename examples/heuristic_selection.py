"""Heuristic selection by heterogeneity regime (paper application [3]).

The paper's introduction motivates the measures with "selecting
appropriate heuristics to use in an HC environment based on its
heterogeneity".  This example generates environments at the corners of
the (MPH, TMA) plane with :func:`repro.generate.from_targets`, maps a
batch of task instances with eight classic heuristics, and prints the
makespan ratios — showing, e.g., how load-blind MET collapses exactly
when machines are heterogeneous and affinity is low.  Run with::

    python examples/heuristic_selection.py
"""

from repro.scheduling import selection_study


def main() -> None:
    results = selection_study(
        n_tasks=8,
        n_machines=5,
        instances_per_type=4,
        mph_values=(0.3, 0.9),
        tdh_values=(0.6,),
        tma_values=(0.0, 0.5),
        jitter=0.2,
        seed=0,
    )

    names = sorted(results[0].makespans)
    header = "MPH   TMA   best        " + "  ".join(
        f"{n:>9}" for n in names
    )
    print(header)
    print("-" * len(header))
    for r in results:
        ratios = r.ratios
        print(
            f"{r.spec.mph:.1f}   {r.spec.tma:.1f}   {r.best:<10}  "
            + "  ".join(f"{ratios[n]:9.2f}" for n in names)
        )
    print()
    print("ratios are makespan / best-makespan (1.00 = winner).")
    print(
        "reading: with heterogeneous machines and no affinity "
        "(MPH=0.3, TMA=0.0) every task's fastest machine is the same "
        "one, so MET floods it; once affinity appears (TMA=0.5) the "
        "per-task best machines spread out and MET recovers — knowing "
        "(MPH, TDH, TMA) before choosing a mapper is exactly the "
        "paper's point."
    )


if __name__ == "__main__":
    main()
