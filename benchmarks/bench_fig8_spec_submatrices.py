"""E7 — Paper Fig. 8: 2 × 2 ETC submatrices from the SPEC tables.

Regenerates both extractions with their measures:
(a) {omnetpp, cactusADM} × {m4, m5}: paper TDH = 0.16, MPH = 0.31,
    TMA = 0.05 — near-flat affinity, very heterogeneous difficulty;
(b) {cactusADM, soplex} × {m1, m4}: paper TMA = 0.60 — the two task
    types prefer opposite machines.
"""

import pytest

from repro.measures import characterize
from repro.spec import figure8a, figure8b


def _fmt(env, profile, paper_line):
    lines = [f"tasks: {env.task_names}  machines: {env.machine_names}"]
    for name, row in zip(env.task_names, env.values):
        lines.append(f"  {name:<15} " + "  ".join(f"{v:9.1f}" for v in row))
    lines.append(
        f"  TDH = {profile.tdh:.2f}  MPH = {profile.mph:.2f}  "
        f"TMA = {profile.tma:.2f}   {paper_line}"
    )
    return "\n".join(lines)


def test_fig8_table(benchmark, write_result):
    def measure_both():
        a, b = figure8a(), figure8b()
        return (a, characterize(a)), (b, characterize(b))

    (env_a, prof_a), (env_b, prof_b) = benchmark(measure_both)

    assert prof_a.tma == pytest.approx(0.05, abs=5e-3)
    assert prof_a.tdh == pytest.approx(0.16, abs=5e-3)
    assert prof_b.tma == pytest.approx(0.60, abs=5e-3)
    # Paper orderings: (b) carries the affinity; (a) has the more
    # homogeneous task types... of the two, (a)'s TDH is higher.
    assert prof_b.tma > 5 * prof_a.tma
    assert prof_a.tdh > prof_b.tdh

    text = "\n".join(
        [
            "(a)  " + _fmt(env_a, prof_a,
                           "(paper: TDH 0.16, MPH 0.31, TMA 0.05)"),
            "",
            "(b)  " + _fmt(env_b, prof_b, "(paper: TMA 0.60)"),
            "",
            "note: MPH values reflect the reconstructed runtimes; the "
            "paper's TMA/TDH targets and orderings are matched exactly "
            "(see EXPERIMENTS.md).",
        ]
    )
    write_result("fig8_spec_submatrices", text)


def test_fig8_submatrix_extraction_kernel(benchmark):
    env = benchmark(figure8b)
    assert env.shape == (2, 2)
