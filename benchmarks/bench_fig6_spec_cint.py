"""E5 — Paper Fig. 6: the SPEC CINT2006Rate environment.

Regenerates the 12 × 5 runtime table with its three measures
(paper: TDH = 0.90, MPH = 0.82, TMA = 0.07; Sinkhorn converged in 6
iterations at tol 1e-8) and times the full characterization of the
suite.
"""

import pytest

from repro.measures import characterize
from repro.spec import cint2006rate


def test_fig6_table(benchmark, write_result):
    env = cint2006rate()
    profile = benchmark(characterize, env)
    assert profile.tdh == pytest.approx(0.90, abs=5e-3)
    assert profile.mph == pytest.approx(0.82, abs=5e-3)
    assert profile.tma == pytest.approx(0.07, abs=5e-3)
    assert profile.sinkhorn_iterations <= 10

    lines = ["task            " + "  ".join(f"{m:>8}" for m in env.machine_names)]
    for name, row in zip(env.task_names, env.values):
        lines.append(
            f"{name:<15} " + "  ".join(f"{v:8.1f}" for v in row)
        )
    lines.append("")
    lines.append(
        f"TDH = {profile.tdh:.2f} (paper 0.90)   "
        f"MPH = {profile.mph:.2f} (paper 0.82)   "
        f"TMA = {profile.tma:.2f} (paper 0.07)"
    )
    lines.append(
        f"standard-form iterations = {profile.sinkhorn_iterations} "
        f"(paper: 6 at tol 1e-8)"
    )
    write_result("fig6_spec_cint", "\n".join(lines))


def test_fig6_standardization_kernel(benchmark):
    from repro.normalize import standardize

    ecs = cint2006rate().to_ecs().values
    result = benchmark(standardize, ecs)
    assert result.converged
