"""Ablation — the Sinkhorn stopping tolerance (the paper uses 1e-8).

Sweeps the stopping tolerance on the SPEC matrices and reports the
iteration count and the TMA error relative to the tightest setting:
the paper's 1e-8 is comfortably past the point where TMA stops moving,
and looser tolerances (1e-3) already land within ~1e-4 of the converged
value — the measure is not fragile in the knob.
"""

import scipy.linalg

from repro.normalize import standardize
from repro.spec import cfp2006rate, cint2006rate

TOLERANCES = (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12)


def _tma_at(ecs, tol):
    result = standardize(ecs, tol=tol)
    values = scipy.linalg.svdvals(result.matrix)
    return (
        float(values[1:].sum() / (values.shape[0] - 1)),
        result.iterations,
    )


def _sweep():
    out = {}
    for name, env in (
        ("cint", cint2006rate()),
        ("cfp", cfp2006rate()),
    ):
        ecs = env.to_ecs().values
        out[name] = [(tol, *_tma_at(ecs, tol)) for tol in TOLERANCES]
    return out


def test_ablation_sinkhorn_tolerance(benchmark, write_result):
    results = benchmark(_sweep)
    lines = ["suite  tol      iterations  TMA          |TMA - TMA(1e-12)|"]
    for name, rows in results.items():
        reference = rows[-1][1]
        for tol, value, iterations in rows:
            lines.append(
                f"{name:<5}  {tol:.0e}  {iterations:<10d}  {value:.8f}"
                f"   {abs(value - reference):.2e}"
            )
            # TMA at the paper's tolerance is converged to ~1e-8.
            if tol <= 1e-8:
                assert abs(value - reference) < 1e-6
        # Iterations grow monotonically as the tolerance tightens.
        iteration_counts = [r[2] for r in rows]
        assert all(
            a <= b for a, b in zip(iteration_counts, iteration_counts[1:])
        )
    write_result("ablation_sinkhorn_tolerance", "\n".join(lines))
