"""E11 — throughput of the measurement pipeline across matrix sizes.

Not a paper artifact: engineering benchmarks that keep the vectorized
kernels honest.  Groups: Sinkhorn standardization, singular values, the
full characterize() call, and the exact normalizability test.
"""

import numpy as np
import pytest

from repro.measures import characterize, standard_singular_values
from repro.normalize import standardize
from repro.structure import is_normalizable

SIZES = [(12, 5), (64, 16), (256, 32), (1024, 64)]


def _matrix(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1, 10.0, size=shape)


@pytest.mark.parametrize("shape", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_standardize_scaling(benchmark, shape):
    matrix = _matrix(shape)
    result = benchmark(standardize, matrix)
    assert result.converged


@pytest.mark.parametrize("shape", SIZES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_singular_values_scaling(benchmark, shape):
    matrix = _matrix(shape)
    values = benchmark(standard_singular_values, matrix)
    assert values[0] == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("shape", SIZES[:3], ids=lambda s: f"{s[0]}x{s[1]}")
def test_characterize_scaling(benchmark, shape):
    matrix = _matrix(shape)
    profile = benchmark(characterize, matrix)
    assert 0 < profile.mph <= 1


@pytest.mark.parametrize("shape", [(32, 16), (96, 48)],
                         ids=lambda s: f"{s[0]}x{s[1]}")
def test_normalizability_scaling(benchmark, shape):
    rng = np.random.default_rng(1)
    pattern = (rng.random(shape) < 0.25).astype(float)
    pattern[~pattern.any(axis=1), 0] = 1.0
    pattern[0, ~pattern.any(axis=0)] = 1.0
    result = benchmark(is_normalizable, pattern)
    assert result in (True, False)
