"""Scalar-vs-batched throughput of the ensemble characterization path.

Not a paper artifact: the engineering benchmark behind ``repro.batch``.
The smoke test runs on a tiny stack so every CI pass exercises the
batched kernels; the ``slow``-marked test times the full (512, 8, 8)
ensemble and asserts the ≥ 5× speedup the subsystem exists to deliver.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.batch import characterize_ensemble
from repro.measures import characterize


def _stack(n: int, t: int, m: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1, 10.0, size=(n, t, m))


def _scalar_loop(stack: np.ndarray) -> np.ndarray:
    rows = []
    for matrix in stack:
        profile = characterize(matrix)
        rows.append((profile.mph, profile.tdh, profile.tma))
    return np.asarray(rows)


def test_batched_smoke_tiny(benchmark, write_result):
    """Tiny stack: correctness of the batched path plus a timing point,
    cheap enough for every PR (the CI bench-smoke job runs just this)."""
    stack = _stack(8, 4, 3)
    result = benchmark(characterize_ensemble, stack)
    assert result.batched.all() and result.converged.all()
    np.testing.assert_allclose(
        result.measures, _scalar_loop(stack), rtol=0, atol=1e-10
    )
    write_result(
        "batched_pipeline_smoke",
        f"(8, 4, 3) stack: batched == scalar to 1e-10; "
        f"{int(result.iterations.max())} max Sinkhorn iterations",
    )


@pytest.mark.slow
def test_batched_speedup_512(write_result):
    """ISSUE acceptance: characterize_ensemble on a (512, 8, 8) stack is
    ≥ 5× faster than the serial scalar loop."""
    stack = _stack(512, 8, 8)

    t0 = time.perf_counter()
    scalar = _scalar_loop(stack)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = characterize_ensemble(stack)
    batched_s = time.perf_counter() - t0

    np.testing.assert_allclose(result.measures, scalar, rtol=0, atol=1e-10)
    speedup = scalar_s / batched_s
    lines = [
        "scalar-vs-batched ensemble characterization, (512, 8, 8) stack",
        f"scalar loop : {scalar_s:8.3f} s  ({512 / scalar_s:8.1f} env/s)",
        f"batched     : {batched_s:8.3f} s  ({512 / batched_s:8.1f} env/s)",
        f"speedup     : {speedup:8.1f}x  (acceptance floor: 5x)",
        f"max |batched - scalar| verified ≤ 1e-10 on all 512 slices",
    ]
    write_result("batched_pipeline_speedup", "\n".join(lines))
    assert speedup >= 5.0, f"batched path only {speedup:.1f}x faster"
