"""E15 (extension) — the Braun twelve-case suite in measure space.

The paper's related-work section notes that the widely used ETC
generation methods ([4], [6]) "do not deal with the problem of
characterizing the heterogeneity of existing HC environments".  This
benchmark closes that loop: every case of the Braun et al. benchmark
suite is sampled and placed in (MPH, TDH, TMA) space, yielding the
measure footprint the conventional hi/lo vocabulary never quantified.
"""

from repro.analysis import characterize_generator, describe_regime
from repro.generate import BRAUN_CASES, braun_case
from repro.measures import characterize


def _footprints():
    out = []
    for case in BRAUN_CASES:
        out.append(
            characterize_generator(
                case,
                lambda s, c=case: braun_case(
                    c, n_tasks=24, n_machines=8, seed=s
                ),
                samples=5,
                seed=0,
            )
        )
    return out


def test_generator_regimes_table(benchmark, write_result):
    footprints = benchmark(_footprints)
    lines = ["case       footprint (mean ± std over 5 draws)      regime"]
    by_name = {}
    for fp in footprints:
        env = braun_case(fp.name, n_tasks=24, n_machines=8, seed=0)
        regime = describe_regime(characterize(env))
        lines.append(f"{fp.row()}   [{regime}]")
        by_name[fp.name] = fp
    write_result("generator_regimes", "\n".join(lines))

    # hi task range -> lower TDH than lo task range, at fixed rest.
    assert by_name["hihi-i"].mean[1] < by_name["lohi-i"].mean[1]
    assert by_name["hilo-i"].mean[1] < by_name["lolo-i"].mean[1]
    # hi machine range -> lower MPH than lo machine range.
    assert by_name["hihi-i"].mean[0] < by_name["hilo-i"].mean[0]
    assert by_name["lohi-i"].mean[0] < by_name["lolo-i"].mean[0]
    # consistency kills affinity within every het combination.
    for het in ("hihi", "hilo", "lohi", "lolo"):
        assert (
            by_name[f"{het}-c"].mean[2] < by_name[f"{het}-i"].mean[2]
        ), het
