"""E16 (extension) — makespan vs robustness across heuristics.

The authors' robustness line of work (paper refs. [7]/[11], FePIA):
the best nominal makespan is not the whole story — a mapping that
achieves it by loading one machine with many tasks near the limit has a
small robustness radius against ETC estimation error.  This benchmark
tabulates the (makespan, radius) trade-off of the batch heuristics on
the CINT workload and across affinity regimes.
"""

from repro.generate import from_targets
from repro.scheduling import robustness_comparison
from repro.spec import cint2006rate


def test_robustness_tradeoff_table(benchmark, write_result):
    result = benchmark(
        robustness_comparison, cint2006rate(), total=40, seed=0
    )
    lines = ["heuristic   makespan     radius   (beta = 1.2 x best)"]
    for name, (makespan, radius) in sorted(
        result.items(), key=lambda kv: -kv[1][1]
    ):
        lines.append(f"{name:<10}  {makespan:9.1f}  {radius:8.2f}")
    write_result("robustness_tradeoff", "\n".join(lines))

    # Queue-blind MET busts the common tolerance on this environment.
    assert result["met"][1] == 0.0
    # At least one batch heuristic stays strictly robust.
    assert max(result[n][1] for n in ("min_min", "sufferage", "duplex")) > 0


def test_robustness_vs_affinity(benchmark, write_result):
    """Robustness of Min-min across generated affinity regimes."""

    def sweep():
        out = {}
        for tma_target in (0.0, 0.3, 0.6):
            env = from_targets(8, 5, (0.7, 0.8, tma_target), jitter=0.2,
                               seed=1)
            out[tma_target] = robustness_comparison(
                env.to_etc(),
                heuristics=("min_min", "sufferage", "mct"),
                counts=[4] * 8,
                seed=2,
            )
        return out

    results = benchmark(sweep)
    lines = ["TMA   heuristic   makespan   radius"]
    for tma_target, comparison in results.items():
        for name, (makespan, radius) in comparison.items():
            lines.append(
                f"{tma_target:.1f}   {name:<10}  {makespan:8.3f}  "
                f"{radius:7.4f}"
            )
    write_result("robustness_vs_affinity", "\n".join(lines))
    for comparison in results.values():
        assert all(radius >= 0 for _, radius in comparison.values())
