"""E8 — Paper Section VI: matrices whose standard form does not exist.

Regenerates the eq. 10 → eq. 12 story: the 3 × 3 counterexample is
decomposable, the iteration stalls, the exact Menon test rejects it and
names the blocking entry, the block-form certificate reproduces the
"move the last column to the front" permutation, and the diagonal
matrix shows decomposability is not necessary for normalizability.
Also reports the library's answer to the paper's future-work question
(TMA of non-normalizable matrices) under both fallbacks.
"""

import numpy as np
import pytest

from repro import NotNormalizableError
from repro.measures import tma
from repro.normalize import sinkhorn_knopp, standardize
from repro.structure import (
    is_fully_indecomposable,
    is_normalizable,
    normalizability_report,
    permute_to_block_form,
)

EQ10 = np.array(
    [
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 1.0],
        [0.0, 1.0, 0.0],
    ]
)


def test_sec6_eq10_analysis(benchmark, write_result):
    def analyse():
        return (
            is_fully_indecomposable(EQ10),
            normalizability_report(EQ10),
            permute_to_block_form(EQ10),
        )

    indecomposable, report, form = benchmark(analyse)
    assert not indecomposable
    assert report.feasible and not report.normalizable
    assert report.blocking_edges == ((1, 2),)
    permuted = form.apply(EQ10)
    assert not permuted[: form.block_size, form.block_size:].any()

    with pytest.raises(NotNormalizableError):
        standardize(EQ10)
    stalled = sinkhorn_knopp(
        EQ10, max_iterations=300, require_convergence=False
    )
    assert not stalled.converged

    lines = [
        "eq. 10 matrix:",
        str(EQ10),
        "",
        f"fully indecomposable: {indecomposable} (paper: decomposable)",
        f"normalizable (Menon test): {report.normalizable}",
        f"blocking entry: {report.blocking_edges} "
        "(the paper's 'four nonzero elements must equal 1' argument "
        "pins exactly this entry)",
        "",
        "block form (eq. 12), rows x cols "
        f"{form.row_order} x {form.col_order}:",
        str(permuted),
        "",
        f"Sinkhorn after 300 iterations: residual {stalled.residual:.3e} "
        "(never reaches 1e-8)",
        "",
        "diagonal matrix diag(3,7,2): decomposable = "
        f"{not is_fully_indecomposable(np.diag([3.0, 7.0, 2.0]))}, "
        f"normalizable = {is_normalizable(np.diag([3.0, 7.0, 2.0]))} "
        "(paper: sufficiency, not necessity)",
        "",
        "future-work TMA of eq. 10: "
        f"limit semantics = {tma(EQ10, zeros='limit'):.4f}, "
        f"column method (eq. 5) = {tma(EQ10, method='column'):.4f}",
    ]
    write_result("sec6_decomposability", "\n".join(lines))


def test_sec6_menon_test_kernel(benchmark):
    rng = np.random.default_rng(0)
    pattern = (rng.random((40, 30)) < 0.3).astype(float)
    pattern[~pattern.any(axis=1), 0] = 1.0
    pattern[0, ~pattern.any(axis=0)] = 1.0
    result = benchmark(is_normalizable, pattern)
    assert result in (True, False)
