"""Ablation — why the standard form (eq. 8) replaced column
normalization (eq. 5).

DESIGN.md calls out the paper's central design choice: with TDH in the
measure set, column-only normalization leaves TMA entangled with task
difficulty.  This ablation quantifies it: over environments whose TDH
is swept while the affinity core is held fixed, the eq.-5 TMA moves
with TDH while the eq.-8 TMA stays put.
"""

import numpy as np

from repro.generate import from_targets
from repro.measures import tma

TDH_SWEEP = np.linspace(0.15, 0.95, 9)
FIXED = dict(mph=0.7, tma=0.3)


def _sweep():
    rows = []
    for tdh_target in TDH_SWEEP:
        env = from_targets(
            8, 6, (FIXED["mph"], float(tdh_target), FIXED["tma"])
        )
        rows.append(
            (
                float(tdh_target),
                tma(env, method="standard"),
                tma(env, method="column"),
            )
        )
    return rows


def test_ablation_tma_normalization(benchmark, write_result):
    rows = benchmark(_sweep)
    standard = np.array([r[1] for r in rows])
    column = np.array([r[2] for r in rows])

    lines = ["TDH      TMA(eq.8 standard)   TMA(eq.5 column-only)"]
    for tdh_target, std, col in rows:
        lines.append(f"{tdh_target:.2f}     {std:.4f}               {col:.4f}")
    lines.append("")
    lines.append(
        f"spread of eq.8 TMA across the TDH sweep: "
        f"{standard.max() - standard.min():.2e} (pinned at 0.3)"
    )
    lines.append(
        f"spread of eq.5 TMA across the TDH sweep: "
        f"{column.max() - column.min():.4f} (entangled with TDH — the "
        "paper's motivation for the standard form)"
    )
    write_result("ablation_tma_normalization", "\n".join(lines))

    # The standard form keeps TMA pinned...
    assert standard.max() - standard.min() < 1e-3
    # ...while the precursor normalization drifts by an order of
    # magnitude more.
    assert column.max() - column.min() > 10 * (
        standard.max() - standard.min()
    )
