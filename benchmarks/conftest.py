"""Shared benchmark fixtures.

Every benchmark regenerates its paper artifact (table or figure series)
and persists it under ``benchmarks/results/`` so the harness output
survives pytest's capture; the asserted claims mirror the paper's
qualitative statements, and the ``benchmark`` fixture times the
underlying computation.  Benchmarks that also produce machine-readable
numbers pass them as ``data=`` and get a ``<name>.json`` sibling next
to the text table — ``repro-hc bench`` folds those snapshots into its
``BENCH_<n>.json`` payload (``results_snapshots``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Persist a regenerated table: ``write_result("fig2", text)``.

    ``write_result("fig2", text, data={...})`` additionally writes the
    JSON-safe ``data`` document to ``results/fig2.json``.
    """

    def _write(name: str, text: str, data=None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        if data is not None:
            (results_dir / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        # Also echo so `pytest -s benchmarks/` shows the tables inline.
        print(f"\n=== {name} ===\n{text}")

    return _write
