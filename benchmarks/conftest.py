"""Shared benchmark fixtures.

Every benchmark regenerates its paper artifact (table or figure series)
and persists it under ``benchmarks/results/`` so the harness output
survives pytest's capture; the asserted claims mirror the paper's
qualitative statements, and the ``benchmark`` fixture times the
underlying computation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Persist a regenerated table: ``write_result("fig2", text)``."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        # Also echo so `pytest -s benchmarks/` shows the tables inline.
        print(f"\n=== {name} ===\n{text}")

    return _write
