"""E6 — Paper Fig. 7: the SPEC CFP2006Rate environment.

Regenerates the 17 × 5 runtime table and its measures (paper:
TDH = 0.91, MPH = 0.83; the TMA digits are lost in the source scan but
the text requires TMA(CFP) > TMA(CINT); 7 Sinkhorn iterations).
"""

import pytest

from repro.measures import characterize
from repro.spec import cfp2006rate, cint2006rate


def test_fig7_table(benchmark, write_result):
    env = cfp2006rate()
    profile = benchmark(characterize, env)
    assert profile.tdh == pytest.approx(0.91, abs=5e-3)
    assert profile.mph == pytest.approx(0.83, abs=5e-3)
    assert profile.sinkhorn_iterations <= 10

    lines = ["task            " + "  ".join(f"{m:>8}" for m in env.machine_names)]
    for name, row in zip(env.task_names, env.values):
        lines.append(f"{name:<15} " + "  ".join(f"{v:8.1f}" for v in row))
    lines.append("")
    lines.append(
        f"TDH = {profile.tdh:.2f} (paper 0.91)   "
        f"MPH = {profile.mph:.2f} (paper 0.83)   "
        f"TMA = {profile.tma:.2f} (paper: digits lost; > CINT's 0.07)"
    )
    lines.append(
        f"standard-form iterations = {profile.sinkhorn_iterations} "
        f"(paper: 7 at tol 1e-8)"
    )
    write_result("fig7_spec_cfp", "\n".join(lines))


def test_fig7_cfp_more_affine_than_cint(benchmark):
    def both():
        return (
            characterize(cint2006rate()).tma,
            characterize(cfp2006rate()).tma,
        )

    cint_tma, cfp_tma = benchmark(both)
    assert cfp_tma > cint_tma
