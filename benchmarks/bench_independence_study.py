"""E9 — measure independence (property 3, the standard form's payoff).

Regenerates the constructive independence table: each measure is swept
across its range while the other two targets are pinned; the pinned
measures must not move.  Also reports the statistical correlation
matrix over a random ensemble.
"""

import numpy as np

from repro.analysis import independence_study, measure_correlations

SWEEP = np.linspace(0.2, 0.8, 5)


def test_independence_sweeps(benchmark, write_result):
    def run_all():
        return {
            swept: independence_study(
                swept, n_tasks=6, n_machines=5, targets=SWEEP
            )
            for swept in ("mph", "tdh", "tma")
        }

    results = benchmark(run_all)
    lines = [
        "sweep    target   MPH      TDH      TMA     (pinned values "
        "must stay at 0.7)"
    ]
    for swept, result in results.items():
        for target, (m, t, a) in zip(result.targets, result.achieved):
            lines.append(
                f"{swept:<6}   {target:.2f}     {m:.4f}   {t:.4f}   {a:.4f}"
            )
        lines.append(
            f"  -> sweep error {result.sweep_error():.2e}, "
            f"pinned-measure drift {result.max_drift():.2e}"
        )
        assert result.sweep_error() < 1e-3
        assert result.max_drift() < 1e-3
    write_result("independence_study", "\n".join(lines))


def test_measure_correlations_table(benchmark, write_result):
    corr = benchmark(measure_correlations, samples=150, seed=0)
    off = np.abs(corr[np.triu_indices(3, k=1)])
    assert (off < 0.8).all()
    lines = [
        "Pearson correlations over 150 random environments "
        "(order mph, tdh, tma):",
        np.array2string(corr, precision=3),
        "",
        "no pair is totally correlated — unlike the paper's "
        "std-vs-variance example of a redundant measure pair",
    ]
    write_result("measure_correlations", "\n".join(lines))
