"""Ablation — the weighting factors of eqs. 4 and 6.

The paper folds task weights (importance / execution frequency) and
machine weights into every measure "to make the measures more
flexible".  This ablation exercises the knob on the CINT environment:
concentrating the task weights onto one task type drives TDH down (one
row dominates the difficulty profile) while leaving TMA untouched
(weights are diagonal scalings, which the standard form absorbs —
Theorem 1 again).
"""

import numpy as np
import pytest

from repro.measures import characterize
from repro.spec import cint2006rate

CONCENTRATIONS = (1.0, 4.0, 16.0, 64.0)


def _sweep():
    env = cint2006rate()
    rows = []
    for w in CONCENTRATIONS:
        weights = np.ones(env.n_tasks)
        weights[0] = w  # pile weight onto perlbench
        profile = characterize(env.with_weights(task_weights=weights))
        rows.append((w, profile.mph, profile.tdh, profile.tma))
    return rows


def test_ablation_weighting(benchmark, write_result):
    rows = benchmark(_sweep)
    lines = [
        "w(perlbench)  MPH      TDH      TMA    (uniform weights first)"
    ]
    for w, m, t, a in rows:
        lines.append(f"{w:<12.0f}  {m:.4f}  {t:.4f}  {a:.4f}")
    lines.append("")
    lines.append(
        "task weights reshape the difficulty profile (TDH falls as one "
        "task dominates) but cannot move TMA — weighting is a diagonal "
        "scaling and the standard form absorbs it (Theorem 1)"
    )
    write_result("ablation_weighting", "\n".join(lines))

    tdh_values = [r[2] for r in rows]
    tma_values = [r[3] for r in rows]
    # TDH strictly degrades as the weight concentrates.
    assert all(a > b for a, b in zip(tdh_values, tdh_values[1:]))
    # TMA is invariant to the weighting.
    assert max(tma_values) - min(tma_values) == pytest.approx(0.0, abs=1e-6)
