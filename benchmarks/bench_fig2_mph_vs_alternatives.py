"""E2 — Paper Fig. 2: MPH vs R, G, COV on four 5-machine environments.

Regenerates the full Fig. 2 table and asserts the paper's headline:
only MPH produces the intuitive heterogeneity ordering
env1 < env4 < env2 = env3 (in homogeneity terms), while R and G cannot
separate any of the environments and COV breaks the env2/env3 tie.
"""

import numpy as np
import pytest

from repro.measures import (
    average_adjacent_ratio,
    coefficient_of_variation,
    geometric_mean_ratio,
    min_max_ratio,
)

ENVIRONMENTS = {
    "env1": np.array([1.0, 2.0, 4.0, 8.0, 16.0]),
    "env2": np.array([1.0, 1.0, 1.0, 1.0, 16.0]),
    "env3": np.array([1.0, 16.0, 16.0, 16.0, 16.0]),
    "env4": np.array([1.0, 4.0, 4.0, 4.0, 16.0]),
}

PAPER = {  # (MPH, R, G, COV) as printed in Fig. 2
    "env1": (0.5, 0.06, 0.5, 0.88),
    "env2": (0.77, 0.06, 0.5, 1.5),
    "env3": (0.77, 0.06, 0.5, 0.46),
    "env4": (0.63, 0.06, 0.5, 0.90),
}


def _row(perf):
    return (
        average_adjacent_ratio(perf),
        min_max_ratio(perf),
        geometric_mean_ratio(perf),
        coefficient_of_variation(perf),
    )


def test_fig2_table(benchmark, write_result):
    rows = benchmark(lambda: {k: _row(v) for k, v in ENVIRONMENTS.items()})
    lines = [
        "env    performances           MPH     R       G       COV"
        "   (paper MPH/R/G/COV)"
    ]
    for name, perf in ENVIRONMENTS.items():
        m, r, g, c = rows[name]
        p = PAPER[name]
        lines.append(
            f"{name}   {np.array2string(perf, precision=0):22s}"
            f" {m:.4f}  {r:.4f}  {g:.4f}  {c:.4f}"
            f"   ({p[0]}/{p[1]}/{p[2]}/{p[3]})"
        )
        assert m == pytest.approx(p[0], abs=6e-3)
        assert r == pytest.approx(p[1], abs=6e-3)
        assert g == pytest.approx(p[2], abs=6e-3)
        assert c == pytest.approx(p[3], abs=6e-3)
    write_result("fig2_mph_vs_alternatives", "\n".join(lines))


def test_fig2_only_mph_matches_intuition(benchmark):
    mph_values = benchmark(
        lambda: {k: _row(v)[0] for k, v in ENVIRONMENTS.items()}
    )
    assert mph_values["env1"] < mph_values["env4"] < mph_values["env2"]
    assert mph_values["env2"] == pytest.approx(mph_values["env3"])
    r_values = {k: _row(v)[1] for k, v in ENVIRONMENTS.items()}
    g_values = {k: _row(v)[2] for k, v in ENVIRONMENTS.items()}
    assert len({round(v, 9) for v in r_values.values()}) == 1
    assert len({round(v, 9) for v in g_values.values()}) == 1
    cov_values = {k: _row(v)[3] for k, v in ENVIRONMENTS.items()}
    assert abs(cov_values["env2"] - cov_values["env3"]) > 0.5
