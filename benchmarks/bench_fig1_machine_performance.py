"""E1 — Paper Fig. 1: machine performance from ECS column sums.

Regenerates the per-machine performance vector of the 4 × 3 example
(machine 1's performance is 17) and times the MP/MPH kernel.
"""

import numpy as np

from repro.measures import machine_performance, mph

FIG1 = np.array(
    [
        [4.0, 8.0, 5.0],
        [5.0, 9.0, 4.0],
        [6.0, 5.0, 2.0],
        [2.0, 1.0, 3.0],
    ]
)


def test_fig1_table(benchmark, write_result):
    mp = benchmark(machine_performance, FIG1)
    np.testing.assert_allclose(mp, [17.0, 23.0, 14.0])
    lines = ["machine  performance   (paper: m1 = 17)"]
    for j, value in enumerate(mp, start=1):
        lines.append(f"m{j}       {value:6.1f}")
    lines.append(f"MPH = {mph(FIG1):.4f}")
    write_result("fig1_machine_performance", "\n".join(lines))


def test_fig1_mph_kernel(benchmark):
    value = benchmark(mph, FIG1)
    assert value == (14 / 17 + 17 / 23) / 2
