"""E3 — Paper Fig. 3: equal machine performance, different affinity.

Regenerates the contrast between the identical-columns matrix (a)
(TMA = 0) and the affinity-structured matrix (b) (TMA > 0), both with
MPH = 1, and times the full TMA pipeline on matrix (b).
"""

import numpy as np
import pytest

from repro.measures import mph, tma

FIG3A = np.array([[4.0, 4.0, 4.0], [5.0, 5.0, 5.0], [6.0, 6.0, 6.0]])
FIG3B = np.array([[10.0, 1.0, 4.0], [1.0, 10.0, 4.0], [4.0, 4.0, 7.0]])


def test_fig3_contrast_table(benchmark, write_result):
    values = benchmark(
        lambda: {
            "(a)": (mph(FIG3A), tma(FIG3A)),
            "(b)": (mph(FIG3B), tma(FIG3B)),
        }
    )
    assert values["(a)"][0] == pytest.approx(1.0)
    assert values["(b)"][0] == pytest.approx(1.0)
    assert values["(a)"][1] == pytest.approx(0.0, abs=1e-8)
    assert values["(b)"][1] > 0.2
    lines = ["matrix  MPH     TMA     (paper: both MPH-homogeneous, only"
             " (b) has affinity)"]
    for name, (m, t) in values.items():
        lines.append(f"{name}     {m:.4f}  {t:.4f}")
    write_result("fig3_affinity_contrast", "\n".join(lines))


def test_fig3_tma_kernel(benchmark):
    value = benchmark(tma, FIG3B)
    assert 0.2 < value < 1.0
