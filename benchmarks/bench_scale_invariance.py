"""E10 — measure property 2: invariance under ETC unit changes.

Regenerates the invariance table: every measure on every bundled
environment is identical whether runtimes are expressed in
milliseconds, seconds, minutes or hours.
"""

import pytest

from repro.measures import characterize
from repro.spec import cint2006rate, cfp2006rate

FACTORS = {"ms": 1e-3, "s": 1.0, "min": 60.0, "h": 3600.0}


def test_scale_invariance_table(benchmark, write_result):
    envs = {"cint2006rate": cint2006rate(), "cfp2006rate": cfp2006rate()}

    def sweep():
        out = {}
        for name, env in envs.items():
            out[name] = {
                unit: characterize(env.scaled(k))
                for unit, k in FACTORS.items()
            }
        return out

    results = benchmark(sweep)
    lines = ["dataset        unit   MPH      TDH      TMA"]
    for name, by_unit in results.items():
        base = by_unit["s"]
        for unit, profile in by_unit.items():
            lines.append(
                f"{name:<14} {unit:<5}  {profile.mph:.6f} {profile.tdh:.6f} "
                f"{profile.tma:.6f}"
            )
            assert profile.mph == pytest.approx(base.mph, rel=1e-9)
            assert profile.tdh == pytest.approx(base.tdh, rel=1e-9)
            assert profile.tma == pytest.approx(base.tma, abs=1e-6)
    write_result("scale_invariance", "\n".join(lines))
