"""E13 — what-if studies on the SPEC environments (intro application).

Regenerates the per-edit measure-shift tables: the effect of removing
each machine from CINT, and of removing the Fig. 8 task types
(cactusADM, soplex, and the heavy outlier rows) from CFP.
"""

from repro.analysis import whatif_drop_machines, whatif_drop_tasks
from repro.spec import cfp2006rate, cint2006rate


def test_whatif_machines_table(benchmark, write_result):
    entries = benchmark(whatif_drop_machines, cint2006rate())
    assert len(entries) == 5
    lines = ["CINT2006Rate — effect of removing one machine:"]
    lines += ["  " + e.summary() for e in entries]
    # Dropping a machine never leaves the measures NaN/out of range.
    for e in entries:
        assert 0 < e.after.mph <= 1
        assert 0 <= e.after.tma <= 1
    write_result("whatif_machines", "\n".join(lines))


def test_whatif_tasks_table(benchmark, write_result):
    targets = ["436.cactusADM", "450.soplex", "470.lbm", "454.calculix"]
    entries = benchmark(whatif_drop_tasks, cfp2006rate(), targets)
    assert len(entries) == len(targets)
    lines = ["CFP2006Rate — effect of removing one task type:"]
    lines += ["  " + e.summary() for e in entries]
    # cactusADM and soplex carry the injected Fig. 8(b) affinity, so
    # removing either must lower the suite's TMA.
    by_name = {e.description: e for e in entries}
    assert by_name["drop task 436.cactusADM"].delta_tma < 0
    assert by_name["drop task 450.soplex"].delta_tma < 0
    write_result("whatif_tasks", "\n".join(lines))
