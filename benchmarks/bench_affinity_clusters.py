"""E17 (extension) — affinity-group recovery quality under noise.

The spectral co-clustering of :mod:`repro.measures.clusters` should
recover planted task/machine groups as long as the planted signal
dominates the noise.  This benchmark plants a 3-group block
environment, sweeps multiplicative noise, and reports recovery accuracy
alongside the measured TMA.  Instructive wrinkle: heavy noise *raises*
TMA (random affinity is still affinity) while destroying the planted
groups — a scalar TMA says "structure exists", the clustering says
whether it is the structure you think it is.
"""

import numpy as np

from repro.generate import perturb
from repro.measures import affinity_clusters, tma


def _planted(seed=0):
    rng = np.random.default_rng(seed)
    ecs = np.full((9, 6), 0.1)
    for g in range(3):
        ecs[3 * g : 3 * g + 3, 2 * g : 2 * g + 2] = 9.0
    return ecs * rng.uniform(0.9, 1.1, size=ecs.shape)


def _accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Best-permutation agreement between label vectors."""
    from itertools import permutations

    k = truth.max() + 1
    best = 0.0
    for perm in permutations(range(k)):
        mapped = np.array([perm[l] if l < k else l for l in labels])
        best = max(best, float((mapped == truth).mean()))
    return best


def test_cluster_recovery_vs_noise(benchmark, write_result):
    truth_tasks = np.repeat(np.arange(3), 3)
    truth_machines = np.repeat(np.arange(3), 2)

    def sweep():
        rows = []
        for sigma in (0.0, 0.3, 0.8, 1.5, 2.5):
            base = _planted()
            noisy = perturb(base, sigma, seed=42) if sigma > 0 else base
            clusters = affinity_clusters(noisy, n_clusters=3)
            rows.append(
                (
                    sigma,
                    tma(noisy),
                    _accuracy(clusters.task_labels, truth_tasks),
                    _accuracy(clusters.machine_labels, truth_machines),
                )
            )
        return rows

    rows = benchmark(sweep)
    lines = ["sigma   TMA      task-accuracy  machine-accuracy"]
    for sigma, affinity, task_acc, machine_acc in rows:
        lines.append(
            f"{sigma:<6.1f}  {affinity:.4f}   {task_acc:.3f}          "
            f"{machine_acc:.3f}"
        )
    write_result("affinity_cluster_recovery", "\n".join(lines))

    # Perfect recovery on the clean planted structure.
    assert rows[0][2] == 1.0 and rows[0][3] == 1.0
    # Mild noise keeps recovery perfect.
    assert rows[1][2] == 1.0
    # Heavy noise degrades recovery even though TMA stays high: the
    # scalar cannot distinguish planted from random affinity.
    assert rows[-1][2] < 1.0
    assert rows[-1][1] > 0.3
