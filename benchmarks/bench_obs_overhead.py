"""Overhead of the repro.obs instrumentation (ISSUE acceptance: <2%).

Two claims, measured on the batched ensemble pipeline — the hottest
instrumented path, where a per-iteration sampling hook sits inside the
Sinkhorn loop:

* **disabled** — with no active recorder the instrumented library runs
  within 2% of its own runtime (the no-op span path is one contextvar
  read; the per-iteration occupancy sampling is skipped entirely).
  Measured as the relative gap between repeated timings of the same
  call, which bounds instrumentation cost plus timing noise together.
* **enabled** — a full recording session stays cheap in absolute terms
  (it collects a handful of spans per pipeline call, not per element).

The microbenchmark additionally pins the per-span no-op cost so the
budget arithmetic (spans-per-run x cost-per-span / runtime) is visible
in the persisted results file.

A third claim covers the metrics registry (``repro.obs.metrics``):
with collection disabled (the default), the hot-path feed helpers
early-return, and their cost on a scalar Sinkhorn call — the smallest
instrumented kernel, hence the worst case in relative terms — stays
below 1% of the kernel runtime.
"""

from __future__ import annotations

import time
import timeit

import numpy as np

from repro.batch import characterize_ensemble
from repro.obs import metrics as obs_metrics
from repro.obs import recording, span

N_SLICES, N_TASKS, N_MACHINES = 64, 8, 8
REPEATS = 7


def _stack() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.uniform(0.1, 10.0, size=(N_SLICES, N_TASKS, N_MACHINES))


def _best_time(fn, *args) -> float:
    """Best-of-REPEATS wall time — the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_overhead_under_2_percent(write_result):
    """ISSUE acceptance: disabled-recorder overhead < 2% on the batched
    pipeline, recorded in benchmarks/results/."""
    stack = _stack()
    characterize_ensemble(stack)  # warm caches/JIT'd ufunc paths

    # Interleave two timing sets of the *identical* disabled-path call;
    # their gap bounds timing noise.  The instrumentation cost itself is
    # bounded separately by the per-span microbenchmark below.
    base_a = _best_time(characterize_ensemble, stack)
    base_b = _best_time(characterize_ensemble, stack)
    noise_pct = abs(base_a - base_b) / min(base_a, base_b) * 100

    # Per-span no-op cost: one contextvar read + returning the shared
    # singleton, measured directly.
    n_iter = 200_000
    noop_s = timeit.timeit(lambda: span("bench.noop"), number=n_iter) / n_iter

    # Spans the pipeline would open per call when enabled (counted, not
    # guessed, from an actual recording).
    with recording() as rec:
        characterize_ensemble(stack)
    spans_per_run = len(rec.events)

    disabled_s = min(base_a, base_b)
    budget_pct = spans_per_run * noop_s / disabled_s * 100

    def _enabled_run() -> None:
        with recording():
            characterize_ensemble(stack)

    enabled_s = _best_time(_enabled_run)
    enabled_pct = (enabled_s - disabled_s) / disabled_s * 100

    # Metrics-registry disabled path, measured on the *scalar* Sinkhorn
    # kernel — the smallest instrumented unit, hence the worst case in
    # relative terms.  sinkhorn_knopp makes exactly one observe_sinkhorn
    # call per run; while collection is disabled that call is a single
    # early return.
    from repro.normalize.sinkhorn import sinkhorn_knopp

    assert not obs_metrics.metrics_enabled()
    matrix = np.random.default_rng(7).uniform(0.5, 10.0, size=(24, 8))
    sinkhorn_knopp(matrix)  # warm caches
    kernel_s = _best_time(sinkhorn_knopp, matrix)
    disabled_observe_s = timeit.timeit(
        lambda: obs_metrics.observe_sinkhorn(
            "scalar", iterations=7, residual=1e-9, converged=True
        ),
        number=n_iter,
    ) / n_iter
    feed_pct = disabled_observe_s / kernel_s * 100

    lines = [
        f"repro.obs overhead on characterize_ensemble"
        f"({N_SLICES}, {N_TASKS}, {N_MACHINES})",
        f"disabled pipeline (best of {REPEATS})  : {disabled_s * 1e3:8.2f} ms",
        f"timing noise between repeats         : {noise_pct:8.2f} %",
        f"no-op span cost                      : {noop_s * 1e9:8.1f} ns/span",
        f"spans per enabled run                : {spans_per_run:8d}",
        f"disabled budget (spans x noop/run)   : {budget_pct:8.4f} %"
        f"  (acceptance < 2%)",
        f"enabled recording session            : {enabled_s * 1e3:8.2f} ms"
        f"  ({enabled_pct:+.1f}% vs disabled)",
        f"scalar sinkhorn_knopp(24x8)          : {kernel_s * 1e6:8.1f} us",
        f"disabled observe_sinkhorn            : "
        f"{disabled_observe_s * 1e9:8.1f} ns/call",
        f"disabled metrics feed (1 call/run)   : {feed_pct:8.4f} %"
        f"  (acceptance < 1%)",
    ]
    write_result(
        "obs_overhead",
        "\n".join(lines),
        data={
            "shape": [N_SLICES, N_TASKS, N_MACHINES],
            "disabled_s": disabled_s,
            "noise_pct": noise_pct,
            "noop_span_ns": noop_s * 1e9,
            "spans_per_run": spans_per_run,
            "disabled_budget_pct": budget_pct,
            "enabled_s": enabled_s,
            "enabled_pct": enabled_pct,
            "scalar_sinkhorn_s": kernel_s,
            "disabled_observe_ns": disabled_observe_s * 1e9,
            "disabled_metrics_feed_pct": feed_pct,
        },
    )

    # The acceptance claim: instrumentation cost with recording disabled
    # is bounded by spans-per-run x per-span no-op cost, far below 2%.
    assert budget_pct < 2.0, f"no-op span budget {budget_pct:.3f}% >= 2%"
    # And the no-op fast path itself stays sub-microsecond.
    assert noop_s < 5e-6, f"no-op span cost {noop_s * 1e9:.0f} ns too high"
    # Registry acceptance: the gated metrics feed costs < 1% of a scalar
    # Sinkhorn call while collection is disabled (the default).
    assert feed_pct < 1.0, f"disabled metrics feed {feed_pct:.4f}% >= 1%"
    assert disabled_observe_s < 2e-6


def test_enabled_recording_collects_without_blowup(write_result):
    """Enabled-mode sanity: a recording session on the scalar pipeline
    collects bounded span counts (per call, not per matrix element)."""
    stack = _stack()
    with recording() as rec:
        characterize_ensemble(stack)
    # One ensemble span + one batched-sinkhorn span + one batched SVD —
    # a handful of events regardless of N.
    assert 1 <= len(rec.events) <= 10
    names = {e.name for e in rec.events}
    assert "batch.characterize_ensemble" in names
    assert "sinkhorn.batched" in names
    write_result(
        "obs_enabled_spans",
        f"({N_SLICES}, {N_TASKS}, {N_MACHINES}) ensemble run: "
        f"{len(rec.events)} spans ({', '.join(sorted(names))}); "
        f"event count is O(calls), not O(matrix elements)",
    )
