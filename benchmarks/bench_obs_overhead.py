"""Overhead of the repro.obs instrumentation (ISSUE acceptance: <2%).

Two claims, measured on the batched ensemble pipeline — the hottest
instrumented path, where a per-iteration sampling hook sits inside the
Sinkhorn loop:

* **disabled** — with no active recorder the instrumented library runs
  within 2% of its own runtime (the no-op span path is one contextvar
  read; the per-iteration occupancy sampling is skipped entirely).
  Measured as the relative gap between repeated timings of the same
  call, which bounds instrumentation cost plus timing noise together.
* **enabled** — a full recording session stays cheap in absolute terms
  (it collects a handful of spans per pipeline call, not per element).

The microbenchmark additionally pins the per-span no-op cost so the
budget arithmetic (spans-per-run x cost-per-span / runtime) is visible
in the persisted results file.

A third claim covers the metrics registry (``repro.obs.metrics``):
with collection disabled (the default), the hot-path feed helpers
early-return, and their cost on a scalar Sinkhorn call — the smallest
instrumented kernel, hence the worst case in relative terms — stays
below 1% of the kernel runtime.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
import timeit

import numpy as np

from repro.batch import characterize_ensemble
from repro.obs import RequestTrace
from repro.obs import metrics as obs_metrics
from repro.obs import recording, span

N_SLICES, N_TASKS, N_MACHINES = 64, 8, 8
REPEATS = 7


def _stack() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.uniform(0.1, 10.0, size=(N_SLICES, N_TASKS, N_MACHINES))


def _best_time(fn, *args) -> float:
    """Best-of-REPEATS wall time — the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_overhead_under_2_percent(write_result):
    """ISSUE acceptance: disabled-recorder overhead < 2% on the batched
    pipeline, recorded in benchmarks/results/."""
    stack = _stack()
    characterize_ensemble(stack)  # warm caches/JIT'd ufunc paths

    # Interleave two timing sets of the *identical* disabled-path call;
    # their gap bounds timing noise.  The instrumentation cost itself is
    # bounded separately by the per-span microbenchmark below.
    base_a = _best_time(characterize_ensemble, stack)
    base_b = _best_time(characterize_ensemble, stack)
    noise_pct = abs(base_a - base_b) / min(base_a, base_b) * 100

    # Per-span no-op cost: one contextvar read + returning the shared
    # singleton, measured directly.
    n_iter = 200_000
    noop_s = timeit.timeit(lambda: span("bench.noop"), number=n_iter) / n_iter

    # Spans the pipeline would open per call when enabled (counted, not
    # guessed, from an actual recording).
    with recording() as rec:
        characterize_ensemble(stack)
    spans_per_run = len(rec.events)

    disabled_s = min(base_a, base_b)
    budget_pct = spans_per_run * noop_s / disabled_s * 100

    def _enabled_run() -> None:
        with recording():
            characterize_ensemble(stack)

    enabled_s = _best_time(_enabled_run)
    enabled_pct = (enabled_s - disabled_s) / disabled_s * 100

    # Metrics-registry disabled path, measured on the *scalar* Sinkhorn
    # kernel — the smallest instrumented unit, hence the worst case in
    # relative terms.  sinkhorn_knopp makes exactly one observe_sinkhorn
    # call per run; while collection is disabled that call is a single
    # early return.
    from repro.normalize.sinkhorn import sinkhorn_knopp

    assert not obs_metrics.metrics_enabled()
    matrix = np.random.default_rng(7).uniform(0.5, 10.0, size=(24, 8))
    sinkhorn_knopp(matrix)  # warm caches
    kernel_s = _best_time(sinkhorn_knopp, matrix)
    disabled_observe_s = timeit.timeit(
        lambda: obs_metrics.observe_sinkhorn(
            "scalar", iterations=7, residual=1e-9, converged=True
        ),
        number=n_iter,
    ) / n_iter
    feed_pct = disabled_observe_s / kernel_s * 100

    # Serve-path tracing with span emission *disabled* (no trace_path):
    # the only per-request cost is the RequestTrace bookkeeping — mint
    # the trace id for the always-on ``X-Repro-Trace-Id`` header and
    # accumulate a few stage timings (the breakdown dict itself is
    # built lazily, only when a span, slow-log record, or
    # ``debug_timings`` answer consumes it).  That cost is microbenched
    # directly and gated at 0.1% of a compute request under the default
    # serving config; the cache-hit time is reported alongside so the
    # relative cost on the fastest path stays visible.
    def _bookkeeping() -> None:
        rtrace = RequestTrace.begin(None)
        rtrace.add("cache_s", 1e-4)
        rtrace.add("kernel_s", 1e-3)

    serve_noop_s = timeit.timeit(_bookkeeping, number=50_000) / 50_000
    hit_s, compute_s, bit_identical = _serve_hot_path()
    serve_pct = serve_noop_s / compute_s * 100

    lines = [
        f"repro.obs overhead on characterize_ensemble"
        f"({N_SLICES}, {N_TASKS}, {N_MACHINES})",
        f"disabled pipeline (best of {REPEATS})  : {disabled_s * 1e3:8.2f} ms",
        f"timing noise between repeats         : {noise_pct:8.2f} %",
        f"no-op span cost                      : {noop_s * 1e9:8.1f} ns/span",
        f"spans per enabled run                : {spans_per_run:8d}",
        f"disabled budget (spans x noop/run)   : {budget_pct:8.4f} %"
        f"  (acceptance < 2%)",
        f"enabled recording session            : {enabled_s * 1e3:8.2f} ms"
        f"  ({enabled_pct:+.1f}% vs disabled)",
        f"scalar sinkhorn_knopp(24x8)          : {kernel_s * 1e6:8.1f} us",
        f"disabled observe_sinkhorn            : "
        f"{disabled_observe_s * 1e9:8.1f} ns/call",
        f"disabled metrics feed (1 call/run)   : {feed_pct:8.4f} %"
        f"  (acceptance < 1%)",
        f"serve cache-hit request              : {hit_s * 1e6:8.1f} us",
        f"serve compute request (default cfg)  : "
        f"{compute_s * 1e6:8.1f} us",
        f"disabled trace bookkeeping           : "
        f"{serve_noop_s * 1e9:8.1f} ns/request",
        f"disabled serve tracing overhead      : {serve_pct:8.4f} %"
        f"  (acceptance <= 0.1% of a compute request)",
        f"traced vs untraced response bytes    : "
        f"{'bit-identical' if bit_identical else 'DIVERGED'}",
    ]
    write_result(
        "obs_overhead",
        "\n".join(lines),
        data={
            "shape": [N_SLICES, N_TASKS, N_MACHINES],
            "disabled_s": disabled_s,
            "noise_pct": noise_pct,
            "noop_span_ns": noop_s * 1e9,
            "spans_per_run": spans_per_run,
            "disabled_budget_pct": budget_pct,
            "enabled_s": enabled_s,
            "enabled_pct": enabled_pct,
            "scalar_sinkhorn_s": kernel_s,
            "disabled_observe_ns": disabled_observe_s * 1e9,
            "disabled_metrics_feed_pct": feed_pct,
            "serve_cache_hit_s": hit_s,
            "serve_compute_s": compute_s,
            "serve_trace_bookkeeping_ns": serve_noop_s * 1e9,
            "serve_disabled_tracing_pct": serve_pct,
            "serve_traced_bit_identical": bit_identical,
        },
    )

    # The acceptance claim: instrumentation cost with recording disabled
    # is bounded by spans-per-run x per-span no-op cost, far below 2%.
    assert budget_pct < 2.0, f"no-op span budget {budget_pct:.3f}% >= 2%"
    # And the no-op fast path itself stays sub-microsecond.
    assert noop_s < 5e-6, f"no-op span cost {noop_s * 1e9:.0f} ns too high"
    # Registry acceptance: the gated metrics feed costs < 1% of a scalar
    # Sinkhorn call while collection is disabled (the default).
    assert feed_pct < 1.0, f"disabled metrics feed {feed_pct:.4f}% >= 1%"
    assert disabled_observe_s < 2e-6
    # Serve-path acceptance: with no trace_path the per-request tracing
    # bookkeeping costs <= 0.1% of a compute request under the default
    # config, and span emission never changes the served bytes.
    assert serve_pct <= 0.1, f"serve tracing overhead {serve_pct:.4f}% > 0.1%"
    assert bit_identical, "traced and untraced responses diverged"


def _serve_hot_path() -> tuple[float, float, bool]:
    """(cache-hit s, cold compute s, traced == untraced body bytes).

    Both times are in-process exchanges under the *default* serving
    config (coalescing linger included — that is the deployed request
    path).  The compute time is the cold-path denominator for the 0.1%
    gate; the cache hit is the fastest possible request, reported for
    context.
    """
    from repro.serve import CharacterizationServer, ServeConfig

    matrix = np.random.default_rng(3).uniform(0.5, 10.0, (12, 8))
    body = json.dumps({"matrix": matrix.tolist()}).encode("utf-8")

    async def _measure(trace_path=None):
        server = CharacterizationServer(
            ServeConfig(adaptive=False, trace_path=trace_path)
        )
        try:
            # Cold compute: distinct matrices so every request runs the
            # kernel (a batch of one after the linger window).
            rng = np.random.default_rng(11)
            compute = float("inf")
            for _ in range(REPEATS):
                fresh = json.dumps(
                    {"matrix": rng.uniform(0.5, 10.0, (12, 8)).tolist()}
                ).encode("utf-8")
                t0 = time.perf_counter()
                await server.exchange("POST", "/v1/characterize", fresh)
                compute = min(compute, time.perf_counter() - t0)
            # Cache hit: the same body over and over.
            await server.exchange("POST", "/v1/characterize", body)  # warm
            hit = float("inf")
            answer = b""
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                for _ in range(50):
                    _, _, answer, _ = await server.exchange(
                        "POST", "/v1/characterize", body
                    )
                hit = min(hit, (time.perf_counter() - t0) / 50)
            return hit, compute, answer
        finally:
            await server.stop()

    hit_s, compute_s, untraced_body = asyncio.run(_measure())
    with tempfile.TemporaryDirectory() as tmp:
        _, _, traced_body = asyncio.run(_measure(f"{tmp}/spans.jsonl"))
    return hit_s, compute_s, traced_body == untraced_body


def test_enabled_recording_collects_without_blowup(write_result):
    """Enabled-mode sanity: a recording session on the scalar pipeline
    collects bounded span counts (per call, not per matrix element)."""
    stack = _stack()
    with recording() as rec:
        characterize_ensemble(stack)
    # One ensemble span + one batched-sinkhorn span + one batched SVD —
    # a handful of events regardless of N.
    assert 1 <= len(rec.events) <= 10
    names = {e.name for e in rec.events}
    assert "batch.characterize_ensemble" in names
    assert "sinkhorn.batched" in names
    write_result(
        "obs_enabled_spans",
        f"({N_SLICES}, {N_TASKS}, {N_MACHINES}) ensemble run: "
        f"{len(rec.events)} spans ({', '.join(sorted(names))}); "
        f"event count is O(calls), not O(matrix elements)",
    )
