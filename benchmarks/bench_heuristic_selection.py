"""E12 — heuristic selection vs heterogeneity (intro application [3]).

Regenerates the makespan-ratio table of eight mapping heuristics across
generated environments spanning the (MPH, TMA) plane, asserting the
qualitative pattern the selection literature reports: load-blind MET is
punished hardest when machines are heterogeneous but affinity is low,
and batch heuristics (Min-min / Sufferage / Duplex) stay near the
front everywhere.
"""

from repro.scheduling import selection_study

GRID = dict(
    n_tasks=8,
    n_machines=5,
    instances_per_type=4,
    mph_values=(0.3, 0.9),
    tdh_values=(0.6,),
    tma_values=(0.0, 0.5),
    jitter=0.2,
    seed=0,
)


def test_heuristic_selection_table(benchmark, write_result):
    results = benchmark(lambda: selection_study(**GRID))
    names = sorted(results[0].makespans)
    lines = [
        "MPH   TDH   TMA   best        "
        + "  ".join(f"{n:>9}" for n in names)
    ]
    for r in results:
        ratios = r.ratios
        lines.append(
            f"{r.spec.mph:.1f}   {r.spec.tdh:.1f}   {r.spec.tma:.1f}   "
            f"{r.best:<10}  "
            + "  ".join(f"{ratios[n]:9.2f}" for n in names)
        )
    write_result("heuristic_selection", "\n".join(lines))

    by_spec = {(r.spec.mph, r.spec.tma): r for r in results}
    # MET's penalty shrinks when affinity spreads tasks' best machines.
    assert (
        by_spec[(0.9, 0.0)].ratios["met"]
        > by_spec[(0.9, 0.5)].ratios["met"]
    )
    # Batch heuristics competitive in every regime.
    for r in results:
        assert min(
            r.ratios["min_min"], r.ratios["sufferage"], r.ratios["duplex"]
        ) < 1.5
    # Random is never the winner.
    assert all(r.best != "random" for r in results)
