"""E14 (extension) — online mapping policies across load regimes.

Extends the heuristic-selection application to the dynamic setting the
paper's references [5]/[18] study: Poisson arrivals over the CINT task
mix, immediate-mode policies (MCT / MET / OLB / KPB / the
heterogeneity-aware auto policy), swept across arrival rates.
"""

from repro.scheduling import (
    expand_workload,
    poisson_arrivals,
    simulate_online,
)
from repro.spec import cint2006rate

RATES = (0.002, 0.01, 0.05)
POLICIES = ("mct", "met", "olb", "kpb", "auto")
N_TASKS = 80


def _sweep():
    workload = expand_workload(cint2006rate(), total=N_TASKS, seed=0)
    out = {}
    for rate in RATES:
        arrivals = poisson_arrivals(N_TASKS, rate=rate, seed=1)
        out[rate] = {
            policy: simulate_online(
                workload, arrivals, policy=policy, k=0.4, seed=2
            )
            for policy in POLICIES
        }
    return out


def test_dynamic_mapping_table(benchmark, write_result):
    results = benchmark(_sweep)
    lines = [
        "rate     policy   makespan     mean-response  max-utilization"
    ]
    for rate, by_policy in results.items():
        for policy, res in by_policy.items():
            lines.append(
                f"{rate:<7.3f}  {policy:<7}  {res.makespan:10.1f}  "
                f"{res.mean_response:12.1f}   {res.utilization.max():.3f}"
            )
    write_result("dynamic_mapping", "\n".join(lines))

    for rate, by_policy in results.items():
        # MCT dominates queue-blind MET at every load level.
        assert by_policy["mct"].makespan <= by_policy["met"].makespan
        # The heterogeneity-aware policy never loses badly to MCT.
        assert (
            by_policy["auto"].makespan
            <= 1.2 * by_policy["mct"].makespan
        )
    # Response time grows with load for every policy.
    for policy in POLICIES:
        responses = [results[r][policy].mean_response for r in RATES]
        assert responses[0] < responses[-1]
