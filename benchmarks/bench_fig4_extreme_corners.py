"""E4 — Paper Fig. 4: eight extreme 2×2 matrices at the measure corners.

Regenerates the (MPH, TDH, TMA) triple for each reconstructed matrix
A–H and asserts the paper's statements: A–D have TMA = 1, E–H have
TMA = 0, the MPH/TDH high-low pattern holds, and A, B, D converge (in
the eq.-9 limit) to the standard form of C.
"""

import numpy as np
import pytest

from repro.measures import characterize
from repro.normalize import standardize

MATRICES = {
    "A": np.array([[10.0, 0.0], [9.0, 1.0]]),
    "B": np.array([[1.0, 0.0], [10.0, 100.0]]),
    "C": np.array([[1.0, 0.0], [0.0, 1.0]]),
    "D": np.array([[1.0, 0.0], [9.0, 10.0]]),
    "E": np.array([[1.0, 10.0], [1.0, 10.0]]),
    "F": np.array([[0.1, 1.0], [1.0, 10.0]]),
    "G": np.array([[1.0, 1.0], [1.0, 1.0]]),
    "H": np.array([[0.1, 0.1], [1.0, 1.0]]),
}

EXPECT = {  # (mph_high, tdh_high, tma_high) per the paper's text
    "A": (False, True, True),
    "B": (False, False, True),
    "C": (True, True, True),
    "D": (True, False, True),
    "E": (False, True, False),
    "F": (False, False, False),
    "G": (True, True, False),
    "H": (True, False, False),
}


def _profiles():
    return {k: characterize(m) for k, m in MATRICES.items()}


def test_fig4_corner_table(benchmark, write_result):
    profiles = benchmark(_profiles)
    lines = ["matrix  MPH     TDH     TMA     corner(paper)"]
    for key, profile in profiles.items():
        mph_high, tdh_high, tma_high = EXPECT[key]
        lines.append(
            f"{key}       {profile.mph:.4f}  {profile.tdh:.4f}  "
            f"{profile.tma:.4f}  "
            f"MPH{'↑' if mph_high else '↓'} TDH{'↑' if tdh_high else '↓'} "
            f"TMA{'↑' if tma_high else '↓'}"
        )
        assert (profile.mph > 0.5) == mph_high, key
        assert (profile.tdh > 0.5) == tdh_high, key
        assert (profile.tma > 0.5) == tma_high, key
    for key in "ABCD":
        assert profiles[key].tma == pytest.approx(1.0, abs=1e-6)
    for key in "EFGH":
        assert profiles[key].tma == pytest.approx(0.0, abs=1e-6)
    write_result("fig4_extreme_corners", "\n".join(lines))


def test_fig4_abd_standard_form_convergence(benchmark):
    target = standardize(MATRICES["C"]).matrix

    def limits():
        return {
            key: standardize(MATRICES[key], zeros="limit").matrix
            for key in "ABD"
        }

    results = benchmark(limits)
    for key, matrix in results.items():
        np.testing.assert_allclose(matrix, target, atol=1e-8)
