"""Log-additive ETC generation with controlled correlations.

The range-based and CVB generators control *spread*; a complementary
line of work (e.g. Canon & Jeannot's cost-matrix correlation studies,
in the tradition of the paper's reference [8]) controls *correlation* —
how similarly two task types rank the machines, which is the
distributional counterpart of task-machine affinity.

This module uses a transparent log-additive model::

    log ETC(i, j) = mu + a_i + b_j + e_ij,
    a_i ~ N(0, s_task²),  b_j ~ N(0, s_mach²),  e_ij ~ N(0, s_noise²)

With everything Gaussian in log space the population correlation
between two task rows (across machines) is::

    rho_rows = s_mach² / (s_mach² + s_noise²)

and symmetrically for columns with ``s_task``.  :func:`correlated`
takes the target correlations directly and solves for the component
variances.  ``rho_rows → 1`` forces a consistent, rank-1-like matrix
(TMA → 0); lowering it injects independent noise, i.e. affinity — the
generator therefore sweeps the same axis as TMA from the distributional
side, which the tests verify empirically.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_positive_scalar
from ..core.environment import ETCMatrix
from ..exceptions import GenerationError
from ._rng import resolve_rng

__all__ = ["correlated"]


def correlated(
    n_tasks: int,
    n_machines: int,
    *,
    rho_rows: float = 0.8,
    rho_cols: float = 0.8,
    sigma: float = 0.5,
    mean_time: float = 1000.0,
    seed=None,
) -> ETCMatrix:
    """Generate an ETC matrix with target row/column log-correlations.

    Parameters
    ----------
    n_tasks, n_machines : int
        Matrix dimensions.
    rho_rows : float in [0, 1)
        Target correlation between any two task rows' log-times across
        machines (how consistently the machines are ranked).  1 would
        require zero noise; values are capped below 1.
    rho_cols : float in [0, 1)
        Target correlation between any two machine columns' log-times
        across tasks.
    sigma : float
        Total log-space standard deviation of the varying part
        (``sqrt(s_task² + s_mach² + s_noise²)``); sets the overall
        spread (0.5 ≈ factor-of-e·ish variation).
    mean_time : float
        Geometric mean execution time.
    seed : int, Generator or None

    Notes
    -----
    Solving the two correlation equations under the fixed total
    variance requires ``rho_rows + rho_cols <= 1 + rho_rows*rho_cols``
    — always true for values below 1 — but the noise share
    ``1 - s_task'² - s_mach'²`` (in normalized units) must stay
    positive, which bounds ``rho_rows + rho_cols`` away from ~2.  An
    unsatisfiable pair raises :class:`~repro.exceptions.GenerationError`.

    Examples
    --------
    >>> etc = correlated(20, 8, rho_rows=0.9, rho_cols=0.5, seed=0)
    >>> etc.shape
    (20, 8)
    """
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    sigma = check_positive_scalar(sigma, name="sigma")
    mean_time = check_positive_scalar(mean_time, name="mean_time")
    for name, value in (("rho_rows", rho_rows), ("rho_cols", rho_cols)):
        if not 0.0 <= value < 1.0:
            raise GenerationError(f"{name} must be in [0, 1), got {value}")

    # Normalized variance shares: rows correlate through the shared
    # machine component, columns through the shared task component.
    #   rho_rows = v_mach / (v_mach + v_noise)
    #   rho_cols = v_task / (v_task + v_noise)
    #   v_task + v_mach + v_noise = 1
    # Solve: with n = v_noise,
    #   v_mach = n * rho_rows / (1 - rho_rows)
    #   v_task = n * rho_cols / (1 - rho_cols)
    #   n * (1 + r + c) = 1  where r, c are the odds ratios.
    odds_r = rho_rows / (1.0 - rho_rows)
    odds_c = rho_cols / (1.0 - rho_cols)
    v_noise = 1.0 / (1.0 + odds_r + odds_c)
    v_mach = v_noise * odds_r
    v_task = v_noise * odds_c
    if min(v_noise, v_mach, v_task) < 0:  # pragma: no cover - impossible
        raise GenerationError("unsatisfiable correlation pair")

    rng = resolve_rng(seed)
    a = rng.normal(0.0, np.sqrt(v_task) * sigma, size=(n_tasks, 1))
    b = rng.normal(0.0, np.sqrt(v_mach) * sigma, size=(1, n_machines))
    e = rng.normal(0.0, np.sqrt(v_noise) * sigma,
                   size=(n_tasks, n_machines))
    log_etc = np.log(mean_time) + a + b + e
    return ETCMatrix(np.exp(log_etc))
