"""ETC-matrix generators for simulation studies.

The paper's introduction lists "generating ETC matrices for simulation
studies that span the entire range of heterogeneities" as a primary
application of the measures (reference [2]).  This package implements
the three families of generators the literature uses:

* :func:`range_based` — the Ali/Siegel/Maheswaran/Hensgen range-based
  method (reference [4]), the most widely used ETC generator: task and
  machine heterogeneity are uniform ranges multiplied together, with
  consistent / inconsistent / partially-consistent variants.
* :func:`cvb` — the coefficient-of-variation-based method (gamma
  distributions parameterized by task/machine COV), the companion
  method from the same line of work.
* :func:`from_targets` — the measure-driven generator: produce a matrix
  whose MPH, TDH and TMA *exactly* equal requested targets, using the
  diagonal-scaling invariance of TMA (Theorem 1) plus margin Sinkhorn
  scaling.  This is the constructive inverse of the paper's measures
  and the tool behind the independence experiments (E9 in DESIGN.md).
* :mod:`repro.generate.ensembles` — grids/sweeps of generated
  environments for the analysis benchmarks.
"""

from .range_based import range_based, make_consistent, make_partially_consistent
from .cvb import cvb
from .target_driven import (
    from_targets,
    affinity_core,
    margins_for_homogeneity,
    TargetSpec,
)
from .braun import BRAUN_CASES, braun_case, braun_suite
from .correlated import correlated
from .ensembles import (
    heterogeneity_grid,
    random_ecs,
    random_ecs_stack,
    random_ecs_store,
    EnsembleMember,
    perturb,
    perturb_stack,
)

__all__ = [
    "range_based",
    "make_consistent",
    "make_partially_consistent",
    "cvb",
    "from_targets",
    "affinity_core",
    "margins_for_homogeneity",
    "TargetSpec",
    "BRAUN_CASES",
    "braun_case",
    "braun_suite",
    "correlated",
    "heterogeneity_grid",
    "random_ecs",
    "random_ecs_stack",
    "random_ecs_store",
    "EnsembleMember",
    "perturb",
    "perturb_stack",
]
