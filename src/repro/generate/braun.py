"""The Braun et al. twelve-case ETC benchmark suite (paper reference [6]).

"A comparison of eleven static heuristics ..." standardized twelve ETC
classes — the cross product of task heterogeneity {high, low}, machine
heterogeneity {high, low}, and consistency {consistent, semi,
inconsistent} — generated with the range-based method of reference [4].
Those classes became the de-facto benchmark for mapping-heuristic
papers; this module ships them as named presets so studies in this
repository can cite a case by its conventional name (e.g. ``hihi-c``).

Naming: ``<task-het><machine-het>-<consistency>`` with ``hi``/``lo``
and ``c``/``s``/``i``, e.g. ``hilo-s`` = high task heterogeneity, low
machine heterogeneity, semi-consistent.

Classic range parameters: task 3000 (hi) / 100 (lo); machine 1000 (hi)
/ 10 (lo).
"""

from __future__ import annotations

from ..core.environment import ETCMatrix
from ..exceptions import GenerationError
from .range_based import range_based

__all__ = ["BRAUN_CASES", "braun_case", "braun_suite"]

_TASK_RANGE = {"hi": 3000.0, "lo": 100.0}
_MACHINE_RANGE = {"hi": 1000.0, "lo": 10.0}
_CONSISTENCY = {"c": "consistent", "s": "partially", "i": "inconsistent"}

#: The twelve conventional case names, in the order papers tabulate them.
BRAUN_CASES: tuple[str, ...] = tuple(
    f"{t}{m}-{c}"
    for t in ("hi", "lo")
    for m in ("hi", "lo")
    for c in ("c", "s", "i")
)


def braun_case(
    name: str,
    *,
    n_tasks: int = 512,
    n_machines: int = 16,
    seed=None,
) -> ETCMatrix:
    """Generate one of the twelve Braun et al. ETC classes by name.

    The classic study used 512 tasks × 16 machines; override the shape
    for faster experiments.

    Examples
    --------
    >>> etc = braun_case("hihi-c", n_tasks=32, n_machines=8, seed=0)
    >>> etc.shape
    (32, 8)
    >>> bool((etc.values[:, :-1] <= etc.values[:, 1:]).all())   # consistent
    True
    """
    key = name.lower()
    if key not in BRAUN_CASES:
        raise GenerationError(
            f"unknown Braun case {name!r}; valid names: "
            f"{', '.join(BRAUN_CASES)}"
        )
    het, consistency = key.split("-")
    return range_based(
        n_tasks,
        n_machines,
        task_range=_TASK_RANGE[het[:2]],
        machine_range=_MACHINE_RANGE[het[2:]],
        consistency=_CONSISTENCY[consistency],
        consistent_fraction=0.5,
        seed=seed,
    )


def braun_suite(
    *, n_tasks: int = 512, n_machines: int = 16, seed=None
) -> dict[str, ETCMatrix]:
    """All twelve cases, keyed by conventional name.

    A single ``seed`` derives one sub-seed per case, so the suite is
    reproducible as a whole.
    """
    from ._rng import resolve_rng

    rng = resolve_rng(seed)
    return {
        name: braun_case(
            name,
            n_tasks=n_tasks,
            n_machines=n_machines,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        for name in BRAUN_CASES
    }
