"""Range-based ETC generation (paper reference [4]).

Ali, Siegel, Maheswaran, Hensgen & Ali, "Representing task and machine
heterogeneities for heterogeneous computing systems" (2000) — the
generator the paper's related-work section says "has been used widely".

The method draws a baseline vector ``q`` of task weights from
``U(1, R_task)`` and, for each task, a row of machine multipliers from
``U(1, R_mach)``::

    ETC(i, j) = q_i * r_ij,   q_i ~ U(1, R_task),  r_ij ~ U(1, R_mach)

``R_task`` (task heterogeneity range) and ``R_mach`` (machine
heterogeneity range) control the spread of task and machine
heterogeneity; classic HiHi/HiLo/LoHi/LoLo cases use ranges like
3000/1000 (high) and 100/10 (low).

Consistency structure:

* **inconsistent** — rows left as drawn (machine A may beat machine B
  on one task type and lose on another): nonzero TMA.
* **consistent** — every row sorted the same way, so one machine
  dominates everywhere: affinity approaches zero.
* **partially consistent** — a fraction of the columns consistent, the
  rest inconsistent.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_positive_scalar, check_probability
from ..core.environment import ETCMatrix
from ..exceptions import GenerationError
from ._rng import resolve_rng

__all__ = ["range_based", "make_consistent", "make_partially_consistent"]


def range_based(
    n_tasks: int,
    n_machines: int,
    *,
    task_range: float = 3000.0,
    machine_range: float = 1000.0,
    consistency: str = "inconsistent",
    consistent_fraction: float = 0.5,
    seed=None,
) -> ETCMatrix:
    """Generate an ETC matrix with the range-based method of [4].

    Parameters
    ----------
    n_tasks, n_machines : int
        Matrix dimensions (T × M).
    task_range : float
        Upper bound of the task-heterogeneity uniform range
        ``U(1, task_range)``; must be > 1.
    machine_range : float
        Upper bound of the machine-heterogeneity range
        ``U(1, machine_range)``; must be > 1.
    consistency : {"inconsistent", "consistent", "partially"}
        Consistency structure (see module docstring).
    consistent_fraction : float
        Fraction of columns kept consistent for ``"partially"``.
    seed : int, numpy.random.Generator or None
        Randomness source.

    Returns
    -------
    ETCMatrix

    Examples
    --------
    >>> etc = range_based(8, 4, task_range=100, machine_range=10, seed=7)
    >>> etc.shape
    (8, 4)
    >>> bool((etc.values >= 1.0).all())
    True
    """
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    task_range = check_positive_scalar(task_range, name="task_range")
    machine_range = check_positive_scalar(machine_range, name="machine_range")
    if task_range <= 1.0 or machine_range <= 1.0:
        raise GenerationError(
            "task_range and machine_range must exceed 1 (ranges are "
            "U(1, R))"
        )
    rng = resolve_rng(seed)
    q = rng.uniform(1.0, task_range, size=n_tasks)
    r = rng.uniform(1.0, machine_range, size=(n_tasks, n_machines))
    etc = q[:, None] * r
    if consistency == "consistent":
        etc = make_consistent(etc)
    elif consistency == "partially":
        etc = make_partially_consistent(
            etc, consistent_fraction, rng=rng
        )
    elif consistency != "inconsistent":
        raise GenerationError(
            "consistency must be 'inconsistent', 'consistent' or "
            f"'partially', got {consistency!r}"
        )
    return ETCMatrix(etc)


def make_consistent(etc) -> np.ndarray:
    """Sort every row ascending: machine ``j`` beats ``j+1`` on all tasks.

    A consistent matrix has (near-)rank-1 affinity structure, so TMA is
    driven toward zero — useful as the zero-affinity anchor in sweeps.
    """
    arr = np.array(etc, dtype=np.float64, copy=True)
    arr.sort(axis=1)
    return arr


def make_partially_consistent(
    etc, fraction: float = 0.5, *, rng=None, seed=None
) -> np.ndarray:
    """Make a random subset of columns consistent, leave the rest.

    ``fraction`` of the columns (at least one when ``fraction > 0``) are
    chosen at random; within those columns every row is sorted the same
    way, reproducing the "partially consistent" case of [4].
    """
    fraction = check_probability(fraction, name="fraction")
    arr = np.array(etc, dtype=np.float64, copy=True)
    if fraction == 0.0:
        return arr
    rng = resolve_rng(rng if rng is not None else seed)
    n_cols = arr.shape[1]
    count = max(1, int(round(fraction * n_cols)))
    cols = np.sort(rng.choice(n_cols, size=count, replace=False))
    sub = arr[:, cols]
    sub.sort(axis=1)
    arr[:, cols] = sub
    return arr
