"""Coefficient-of-variation-based ETC generation.

The CVB method (Ali et al., from the same line of work as the paper's
reference [4]) parameterizes heterogeneity by the coefficient of
variation of gamma distributions rather than by uniform ranges, which
decouples the *spread* of the values from their *mean*:

* task vector:     ``q_i ~ Gamma(alpha_task,  mean_task / alpha_task)``
  with ``alpha_task = 1 / v_task**2``,
* machine rows:    ``ETC(i, j) ~ Gamma(alpha_mach, q_i / alpha_mach)``
  with ``alpha_mach = 1 / v_mach**2``,

so ``v_task`` is the COV of the task baseline and ``v_mach`` the COV of
each row around its baseline.  The same consistent / inconsistent /
partially-consistent post-processing as the range-based method applies.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_positive_scalar, check_probability
from ..core.environment import ETCMatrix
from ..exceptions import GenerationError
from ._rng import resolve_rng
from .range_based import make_consistent, make_partially_consistent

__all__ = ["cvb"]


def cvb(
    n_tasks: int,
    n_machines: int,
    *,
    task_cov: float = 0.6,
    machine_cov: float = 0.35,
    mean_task: float = 1000.0,
    consistency: str = "inconsistent",
    consistent_fraction: float = 0.5,
    seed=None,
) -> ETCMatrix:
    """Generate an ETC matrix with the COV-based method.

    Parameters
    ----------
    n_tasks, n_machines : int
        Matrix dimensions.
    task_cov, machine_cov : float
        Coefficients of variation for task and machine heterogeneity
        (strictly positive; typical "high" values ≈ 0.6–0.9, "low"
        ≈ 0.1–0.3).
    mean_task : float
        Mean of the task baseline execution time (time units).
    consistency, consistent_fraction, seed
        As in :func:`repro.generate.range_based`.

    Examples
    --------
    >>> etc = cvb(10, 5, task_cov=0.3, machine_cov=0.2, seed=11)
    >>> etc.shape
    (10, 5)
    """
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    task_cov = check_positive_scalar(task_cov, name="task_cov")
    machine_cov = check_positive_scalar(machine_cov, name="machine_cov")
    mean_task = check_positive_scalar(mean_task, name="mean_task")
    check_probability(consistent_fraction, name="consistent_fraction")
    rng = resolve_rng(seed)

    alpha_task = 1.0 / task_cov**2
    alpha_mach = 1.0 / machine_cov**2
    q = rng.gamma(shape=alpha_task, scale=mean_task / alpha_task, size=n_tasks)
    # Gamma draws can underflow to ~0 for extreme COVs; clamp to keep
    # the ETC matrix strictly positive as required by the model.
    q = np.maximum(q, np.finfo(np.float64).tiny * 1e16)
    etc = rng.gamma(
        shape=alpha_mach,
        scale=(q / alpha_mach)[:, None],
        size=(n_tasks, n_machines),
    )
    etc = np.maximum(etc, np.finfo(np.float64).tiny * 1e16)

    if consistency == "consistent":
        etc = make_consistent(etc)
    elif consistency == "partially":
        etc = make_partially_consistent(etc, consistent_fraction, rng=rng)
    elif consistency != "inconsistent":
        raise GenerationError(
            "consistency must be 'inconsistent', 'consistent' or "
            f"'partially', got {consistency!r}"
        )
    return ETCMatrix(etc)
