"""Seed/generator handling shared by every stochastic routine.

All generators in this library take a ``seed`` argument that accepts an
``int``, ``numpy.random.Generator``, or ``None`` and is resolved through
:func:`resolve_rng`.  Determinism contract: the same seed always yields
the same environment on the same numpy version.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng"]


def resolve_rng(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
