"""Ensembles and sweeps of generated environments.

Helpers used by the independence study (DESIGN.md experiment E9), the
heuristic-selection study (E12) and the property-based tests: grids of
measure targets, plain random ECS samplers, and multiplicative
perturbation for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .._validation import check_positive_int, check_probability, check_positive_scalar
from ..core.environment import ECSMatrix
from ..exceptions import GenerationError
from ._rng import resolve_rng
from .target_driven import TargetSpec, from_targets

__all__ = [
    "EnsembleMember",
    "heterogeneity_grid",
    "random_ecs",
    "random_ecs_stack",
    "random_ecs_store",
    "perturb",
    "perturb_stack",
]


@dataclass(frozen=True)
class EnsembleMember:
    """One generated environment with the targets it was built for."""

    spec: TargetSpec
    ecs: ECSMatrix


def heterogeneity_grid(
    n_tasks: int,
    n_machines: int,
    *,
    mph_values: Sequence[float] = (0.3, 0.6, 0.9),
    tdh_values: Sequence[float] = (0.3, 0.6, 0.9),
    tma_values: Sequence[float] = (0.0, 0.3, 0.6),
    jitter: float = 0.0,
    seed=None,
) -> Iterator[EnsembleMember]:
    """Yield environments covering the Cartesian grid of measure targets.

    This realizes the paper's "span the entire range of heterogeneities"
    application: every combination of the requested MPH × TDH × TMA
    values is generated with :func:`repro.generate.from_targets`.

    Yields
    ------
    EnsembleMember
        In row-major (mph, tdh, tma) order; lazy, so large grids can be
        streamed.
    """
    rng = resolve_rng(seed)
    for mph_t in mph_values:
        for tdh_t in tdh_values:
            for tma_t in tma_values:
                spec = TargetSpec(float(mph_t), float(tdh_t), float(tma_t))
                member_seed = int(rng.integers(0, 2**63 - 1))
                yield EnsembleMember(
                    spec=spec,
                    ecs=from_targets(
                        n_tasks,
                        n_machines,
                        spec,
                        jitter=jitter,
                        seed=member_seed,
                    ),
                )


def random_ecs(
    n_tasks: int,
    n_machines: int,
    *,
    zero_fraction: float = 0.0,
    spread: float = 10.0,
    seed=None,
) -> ECSMatrix:
    """Sample a log-uniform random ECS matrix.

    Parameters
    ----------
    n_tasks, n_machines : int
        Dimensions.
    zero_fraction : float
        Probability of marking an entry incompatible (zero).  Draws that
        would produce an all-zero row or column are repaired by
        reinstating one random entry, so the result is always a valid
        ECS matrix.
    spread : float
        Entries are ``exp(U(-log s, log s))``, i.e. span a factor of
        ``s**2``.
    seed : int, Generator or None
    """
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    zero_fraction = check_probability(zero_fraction, name="zero_fraction")
    spread = check_positive_scalar(spread, name="spread")
    if spread <= 1.0:
        raise GenerationError("spread must exceed 1")
    rng = resolve_rng(seed)
    log_s = np.log(spread)
    values = np.exp(rng.uniform(-log_s, log_s, size=(n_tasks, n_machines)))
    if zero_fraction > 0.0:
        mask = rng.random(values.shape) < zero_fraction
        # Repair all-zero lines: keep the largest entry of any line the
        # mask would wipe out.
        for axis in (1, 0):
            wiped = mask.all(axis=axis)
            if wiped.any():
                idx = np.argmax(values, axis=axis)
                for line in np.nonzero(wiped)[0]:
                    if axis == 1:
                        mask[line, idx[line]] = False
                    else:
                        mask[idx[line], line] = False
        values = np.where(mask, 0.0, values)
    return ECSMatrix(values)


def random_ecs_stack(
    n_matrices: int,
    n_tasks: int,
    n_machines: int,
    *,
    zero_fraction: float = 0.0,
    spread: float = 10.0,
    seed=None,
) -> np.ndarray:
    """Sample an ``(N, T, M)`` stack of log-uniform random ECS matrices.

    Slice ``i`` is exactly :func:`random_ecs` called with the ``i``-th
    child seed derived from ``seed``, so a stack and a per-item loop
    over the same master seed see identical matrices — the invariant
    that lets the batched study paths (e.g.
    :func:`repro.analysis.measure_correlations`) reproduce the scalar
    results bit for bit.  The stack feeds
    :func:`repro.batch.characterize_ensemble` directly.

    Examples
    --------
    >>> random_ecs_stack(4, 3, 2, seed=0).shape
    (4, 3, 2)
    """
    n_matrices = check_positive_int(n_matrices, name="n_matrices")
    rng = resolve_rng(seed)
    return np.stack(
        [
            random_ecs(
                n_tasks,
                n_machines,
                zero_fraction=zero_fraction,
                spread=spread,
                seed=int(rng.integers(0, 2**63 - 1)),
            ).values
            for _ in range(n_matrices)
        ]
    )


def random_ecs_store(
    path,
    n_matrices: int,
    n_tasks: int,
    n_machines: int,
    *,
    zero_fraction: float = 0.0,
    spread: float = 10.0,
    seed=None,
    dtype: str = "float64",
    write_chunk: int = 4096,
):
    """Stream a random ECS ensemble straight to an on-disk stack store.

    Member ``i`` is exactly :func:`random_ecs` called with the ``i``-th
    child seed derived from ``seed`` — the same invariant as
    :func:`random_ecs_stack`, so ``open_store(path).memmap()`` equals
    ``random_ecs_stack(...)`` bit for bit while only ``write_chunk``
    members ever live on the heap.  This is how atlas-scale ensembles
    (millions of members) are materialized for
    :func:`repro.shard.characterize_store`.

    Parameters
    ----------
    path : path-like
        Store directory to create (must not already hold a store).
    n_matrices, n_tasks, n_machines, zero_fraction, spread, seed
        As :func:`random_ecs_stack`.
    dtype : {"float64", "float32"}
        On-disk element type (float32 halves the footprint).
    write_chunk : int
        Members buffered per write; bounds the generator's peak memory.

    Returns
    -------
    repro.shard.StackStore
        The finalized, readable store.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "ens")
    >>> store = random_ecs_store(path, 10, 3, 2, seed=0)
    >>> store.shape
    (10, 3, 2)
    >>> bool(np.array_equal(
    ...     store.memmap(), random_ecs_stack(10, 3, 2, seed=0)))
    True
    """
    from ..shard.store import create_store

    n_matrices = check_positive_int(n_matrices, name="n_matrices")
    write_chunk = check_positive_int(write_chunk, name="write_chunk")
    rng = resolve_rng(seed)
    with create_store(
        path, n_tasks=n_tasks, n_machines=n_machines, dtype=dtype
    ) as writer:
        buffer = []
        for _ in range(n_matrices):
            buffer.append(
                random_ecs(
                    n_tasks,
                    n_machines,
                    zero_fraction=zero_fraction,
                    spread=spread,
                    seed=int(rng.integers(0, 2**63 - 1)),
                ).values
            )
            if len(buffer) >= write_chunk:
                writer.append(np.stack(buffer))
                buffer = []
        if buffer:
            writer.append(np.stack(buffer))
    from ..shard.store import StackStore

    return StackStore(path)


def perturb(matrix, rel_noise: float, *, seed=None) -> np.ndarray:
    """Multiplicatively perturb positive entries: ``x * exp(N(0, σ))``.

    ``rel_noise`` is the log-space standard deviation σ; zeros
    (incompatible pairs) stay zero.  Used by the sensitivity tests to
    check the measures vary continuously with the data.
    """
    rel_noise = check_positive_scalar(rel_noise, name="rel_noise", allow_zero=True)
    arr = np.array(matrix, dtype=np.float64, copy=True)
    if rel_noise == 0.0:
        return arr
    rng = resolve_rng(seed)
    factors = np.exp(rng.normal(0.0, rel_noise, size=arr.shape))
    return np.where(arr > 0, arr * factors, 0.0)


def perturb_stack(
    matrix, rel_noise: float, n_draws: int, *, seed=None
) -> np.ndarray:
    """Stack ``n_draws`` independent :func:`perturb` draws of ``matrix``.

    Returns an ``(N, T, M)`` array; draw ``i`` uses the ``i``-th child
    seed derived from ``seed``, so the stack matches a per-draw loop
    over the same master seed exactly (the sensitivity study relies on
    this to keep its batched and scalar paths interchangeable).

    Examples
    --------
    >>> import numpy as np
    >>> perturb_stack(np.ones((3, 2)), 0.1, n_draws=5, seed=0).shape
    (5, 3, 2)
    """
    n_draws = check_positive_int(n_draws, name="n_draws")
    rng = resolve_rng(seed)
    return np.stack(
        [
            perturb(
                matrix, rel_noise, seed=int(rng.integers(0, 2**63 - 1))
            )
            for _ in range(n_draws)
        ]
    )
