"""Measure-driven ETC generation: hit exact (MPH, TDH, TMA) targets.

The paper's reference [2] motivates generating environments "that span
the entire range of heterogeneities".  With the standard form in hand
this can be done *constructively* rather than by rejection sampling:

1. **TMA** — build an affinity core by blending a flat matrix (zero
   affinity) with a block task→machine assignment pattern (maximal
   affinity) and bisect the blend weight until the standardized core's
   TMA hits the target.  Optionally a random positive matrix is mixed
   in for ensemble variety.
2. **MPH / TDH** — geometric margin vectors with common ratio equal to
   the target homogeneity have an average adjacent ratio *exactly*
   equal to that target.  Imposing them with
   :func:`repro.normalize.scale_to_margins` fixes MPH and TDH exactly
   while — by Theorem 1's uniqueness of the standard form —
   **leaving TMA unchanged**, because any two matrices related by
   diagonal scalings share the same standard form.

The result is an ECS matrix whose three measures equal the requested
targets up to the Sinkhorn/bisection tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_probability
from ..core.environment import ECSMatrix
from ..exceptions import GenerationError
from ..measures.affinity import tma as _tma
from ..normalize.sinkhorn import scale_to_margins
from ._rng import resolve_rng

__all__ = [
    "TargetSpec",
    "margins_for_homogeneity",
    "affinity_core",
    "from_targets",
]


@dataclass(frozen=True)
class TargetSpec:
    """A requested (MPH, TDH, TMA) triple for a T × M environment."""

    mph: float
    tdh: float
    tma: float

    def __post_init__(self) -> None:
        for name, value in (("mph", self.mph), ("tdh", self.tdh)):
            if not 0.0 < value <= 1.0:
                raise GenerationError(
                    f"{name} target must be in (0, 1], got {value}"
                )
        if not 0.0 <= self.tma < 1.0:
            raise GenerationError(
                f"tma target must be in [0, 1), got {self.tma} (exactly 1 "
                "requires zero entries and is shape-dependent)"
            )


def margins_for_homogeneity(
    count: int, homogeneity: float, *, total: float = 1.0
) -> np.ndarray:
    """Ascending geometric margin vector with exact adjacent-ratio mean.

    Returns ``v`` with ``v[k] = ratio ** (count - 1 - k)`` scaled to sum
    to ``total``; every adjacent ratio ``v[k] / v[k+1]`` equals
    ``homogeneity``, so the MPH/TDH of any matrix with these column/row
    sums is exactly ``homogeneity``.

    Examples
    --------
    >>> margins_for_homogeneity(3, 0.5, total=7.0)
    array([1., 2., 4.])
    """
    count = check_positive_int(count, name="count")
    if not 0.0 < homogeneity <= 1.0:
        raise GenerationError(
            f"homogeneity must be in (0, 1], got {homogeneity}"
        )
    v = homogeneity ** np.arange(count - 1, -1, -1, dtype=np.float64)
    return v * (total / v.sum())


def _assignment_pattern(n_tasks: int, n_machines: int) -> np.ndarray:
    """Balanced 0/1 task→machine block pattern (the max-affinity anchor).

    Task ``i`` is assigned to machine ``i * M // T`` when ``T >= M``
    (contiguous near-equal groups); when ``T < M``, machines are grouped
    onto tasks symmetrically.  The standardized pattern's non-maximum
    singular values approach 1, i.e. the TMA → 1 corner.
    """
    pattern = np.zeros((n_tasks, n_machines), dtype=np.float64)
    if n_tasks >= n_machines:
        owners = (np.arange(n_tasks) * n_machines) // n_tasks
        pattern[np.arange(n_tasks), owners] = 1.0
    else:
        owners = (np.arange(n_machines) * n_tasks) // n_machines
        pattern[owners, np.arange(n_machines)] = 1.0
    return pattern


def affinity_core(
    n_tasks: int,
    n_machines: int,
    theta: float,
    *,
    jitter: float = 0.0,
    seed=None,
) -> np.ndarray:
    """Blend the flat and block anchors: ``(1-θ)·base + θ·K``.

    ``θ = 0`` gives a flat (plus optional random jitter) matrix with
    near-zero TMA; ``θ → 1`` approaches the block assignment pattern
    with TMA near 1.  ``jitter`` in [0, 1) mixes a positive random
    matrix into the flat anchor for ensemble diversity.
    """
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    theta = check_probability(theta, name="theta")
    jitter = check_probability(jitter, name="jitter")
    base = np.ones((n_tasks, n_machines), dtype=np.float64)
    if jitter > 0.0:
        rng = resolve_rng(seed)
        noise = rng.uniform(0.2, 1.8, size=base.shape)
        base = (1.0 - jitter) * base + jitter * noise
    base /= base.mean()
    block = _assignment_pattern(n_tasks, n_machines) * (
        n_tasks * n_machines / _assignment_pattern(n_tasks, n_machines).sum()
    )
    core = (1.0 - theta) * base + theta * block
    if theta >= 1.0:
        # Pure pattern has zeros; keep strict positivity for Sinkhorn.
        core = np.maximum(core, 1e-12)
    return core


def _bisect_theta(
    n_tasks: int,
    n_machines: int,
    target: float,
    jitter: float,
    seed,
    *,
    tol: float,
    max_steps: int = 60,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Find the blend weight whose core TMA equals ``target``.

    ``mask`` marks incompatible (forced-zero) entries; it is applied to
    every candidate core, so the bisection optimizes the TMA *of the
    masked environment* and the achievable range shifts accordingly
    (a zero pattern carries affinity of its own).
    """
    rng = resolve_rng(seed)
    # One fixed jittered base per call: re-seeding inside the loop would
    # change the function being bisected.
    state = rng.integers(0, 2**63 - 1)

    def apply_mask(core: np.ndarray) -> np.ndarray:
        if mask is not None:
            core = np.where(mask, 0.0, core)
        return core

    def core_at(theta: float) -> np.ndarray:
        return apply_mask(
            affinity_core(
                n_tasks,
                n_machines,
                theta,
                jitter=jitter,
                seed=np.random.default_rng(int(state)),
            )
        )

    def f(theta: float) -> float:
        return _tma(core_at(theta), method="standard")

    # With forced zeros the θ→1 corner combines the mask with the
    # near-zero off-block blend, which makes σ₂ → 1 and Sinkhorn
    # arbitrarily slow; capping θ keeps every evaluation cheap at the
    # cost of a slightly smaller achievable TMA range.
    lo, hi = 0.0, (0.995 if mask is not None else 1.0 - 1e-9)
    f_lo, f_hi = f(lo), f(hi)
    if target <= f_lo:
        if f_lo - target <= tol or (jitter == 0.0 and mask is None):
            return core_at(lo)
        if jitter == 0.0:
            raise GenerationError(
                f"the zero pattern alone forces TMA >= {f_lo:.4f}, above "
                f"the target {target:.4f}"
            )
        # The jittered base already exceeds the target: fade the jitter
        # toward the flat matrix instead (TMA → 0 as phi → 0).
        flat = np.ones((n_tasks, n_machines), dtype=np.float64)

        def faded(phi: float) -> np.ndarray:
            return apply_mask((1.0 - phi) * flat + phi * core_at(0.0))

        p_lo, p_hi = 0.0, 1.0
        f_flat = _tma(faded(0.0), method="standard")
        if target < f_flat - max(tol, 1e-6):
            raise GenerationError(
                f"the zero pattern alone forces TMA >= {f_flat:.4f}, "
                f"above the target {target:.4f}"
            )
        for _ in range(max_steps):
            mid = 0.5 * (p_lo + p_hi)
            f_mid = _tma(faded(mid), method="standard")
            if abs(f_mid - target) <= tol:
                return faded(mid)
            if f_mid < target:
                p_lo = mid
            else:
                p_hi = mid
        return faded(0.5 * (p_lo + p_hi))
    if target >= f_hi:
        if target - f_hi > max(tol, 5e-3):
            raise GenerationError(
                f"TMA target {target:.4f} exceeds the maximum achievable "
                f"{f_hi:.4f} for shape ({n_tasks}, {n_machines})"
            )
        return core_at(hi)
    for _ in range(max_steps):
        mid = 0.5 * (lo + hi)
        f_mid = f(mid)
        if abs(f_mid - target) <= tol:
            return core_at(mid)
        if f_mid < target:
            lo = mid
        else:
            hi = mid
    return core_at(0.5 * (lo + hi))


def from_targets(
    n_tasks: int,
    n_machines: int,
    targets: TargetSpec | tuple[float, float, float],
    *,
    jitter: float = 0.0,
    seed=None,
    tma_tol: float = 1e-6,
    zero_pattern=None,
) -> ECSMatrix:
    """Generate an ECS matrix whose (MPH, TDH, TMA) equal ``targets``.

    Parameters
    ----------
    n_tasks, n_machines : int
        Environment dimensions.
    targets : TargetSpec or (mph, tdh, tma) tuple
        Requested measure values; MPH/TDH in (0, 1], TMA in [0, 1).
    jitter : float
        Randomness blended into the affinity core for ensemble variety
        (0 gives the deterministic canonical construction).  Large
        jitter can raise the minimum achievable TMA.
    seed : int, Generator or None
        Randomness source (only used when ``jitter > 0``).
    tma_tol : float
        Bisection tolerance on the achieved TMA.
    zero_pattern : array-like of bool, optional
        Incompatible (task, machine) pairs to force to zero speed.  The
        pattern must admit a standard form
        (:func:`repro.structure.is_normalizable`), and it carries
        affinity of its own, so the minimum achievable TMA rises with
        it (an unreachable low target raises
        :class:`~repro.exceptions.GenerationError`).

    Returns
    -------
    ECSMatrix
        MPH and TDH are exact (geometric margins); TMA is within
        ``tma_tol`` of the target.

    Examples
    --------
    >>> from repro.measures import mph, tdh, tma
    >>> env = from_targets(6, 4, (0.7, 0.9, 0.3))
    >>> round(mph(env), 6), round(tdh(env), 6)
    (0.7, 0.9)
    >>> abs(tma(env) - 0.3) < 1e-4
    True
    """
    if not isinstance(targets, TargetSpec):
        targets = TargetSpec(*targets)
    n_tasks = check_positive_int(n_tasks, name="n_tasks")
    n_machines = check_positive_int(n_machines, name="n_machines")
    if (n_tasks == 1 or n_machines == 1) and targets.tma > 0.0:
        raise GenerationError(
            "a single-row or single-column matrix always has TMA = 0"
        )
    mask = None
    if zero_pattern is not None:
        mask = np.asarray(zero_pattern, dtype=bool)
        if mask.shape != (n_tasks, n_machines):
            raise GenerationError(
                f"zero_pattern must have shape ({n_tasks}, {n_machines}), "
                f"got {mask.shape}"
            )
        if mask.any():
            from ..structure import is_normalizable

            if not is_normalizable(~mask):
                raise GenerationError(
                    "zero_pattern admits no standard form (it is "
                    "decomposable in the Section-VI sense); repair it "
                    "first — see repro.structure.suggest_repairs"
                )
        else:
            mask = None
    core = _bisect_theta(
        n_tasks, n_machines, targets.tma, jitter, seed, tol=tma_tol,
        mask=mask,
    )
    total = float(n_tasks * n_machines)
    row_margins = margins_for_homogeneity(n_tasks, targets.tdh, total=total)
    col_margins = margins_for_homogeneity(n_machines, targets.mph, total=total)
    scaled = scale_to_margins(core, row_margins, col_margins, tol=1e-12)
    return ECSMatrix(scaled.matrix)
