"""Vectorized MPH / TDH / TMA over ``(N, T, M)`` ensemble stacks.

Each function computes the same quantity as its scalar counterpart in
:mod:`repro.measures`, for every slice of the stack at once.  MPH and
TDH are sorted-adjacent-ratio reductions (eqs. 3 and 7) over stacked
row/column sums; TMA (eq. 8) rides on ``numpy.linalg.svd``'s stacked
matrix support, which dispatches the whole ensemble through one LAPACK
loop instead of N Python calls.

The differential harness in ``tests/batch/`` holds these to ≤ 1e-10
agreement with the scalar implementations per slice.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_weights
from ..exceptions import MatrixValueError
from ..normalize.standard_form import DEFAULT_TOL
from ..obs import span as _obs_span
from ._stack import as_ecs_stack
from .sinkhorn import standardize_batched

__all__ = [
    "average_adjacent_ratio_batched",
    "machine_performance_batched",
    "task_difficulty_batched",
    "mph_batched",
    "tdh_batched",
    "standard_singular_values_batched",
    "tma_batched",
]


def average_adjacent_ratio_batched(values) -> np.ndarray:
    """Row-wise mean ratio of each sorted value to its successor.

    ``values`` is an ``(N, K)`` array of strictly positive vectors; the
    return is ``(N,)``, one eq. 3/7 homogeneity per row.  ``K = 1``
    rows are defined as perfectly homogeneous (1.0), matching
    :func:`repro.measures.average_adjacent_ratio`.

    Examples
    --------
    >>> average_adjacent_ratio_batched([[1.0, 2.0, 4.0, 8.0, 16.0]])
    array([0.5])
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise MatrixValueError(
            f"values must be a non-empty 2-D (N, K) array, got shape {arr.shape}"
        )
    if not np.isfinite(arr).all() or (arr <= 0).any():
        raise MatrixValueError("values must be strictly positive and finite")
    if arr.shape[1] == 1:
        return np.ones(arr.shape[0], dtype=np.float64)
    ordered = np.sort(arr, axis=1)
    return (ordered[:, :-1] / ordered[:, 1:]).mean(axis=1)


def _stack_and_weights(stack, task_weights, machine_weights):
    arr = as_ecs_stack(stack)
    w_t = check_weights(task_weights, arr.shape[1], name="task_weights")
    w_m = check_weights(machine_weights, arr.shape[2], name="machine_weights")
    return arr, w_t, w_m


def machine_performance_batched(
    stack, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Per-slice machine performance vectors, shape ``(N, M)``.

    Slice ``i`` equals :func:`repro.measures.machine_performance` of
    ``stack[i]`` (eq. 2 / weighted eq. 4).

    Examples
    --------
    >>> ecs = [[4., 8., 5.], [5., 9., 4.], [6., 5., 2.], [2., 1., 3.]]
    >>> machine_performance_batched([ecs])
    array([[17., 23., 14.]])
    """
    arr, w_t, w_m = _stack_and_weights(stack, task_weights, machine_weights)
    return w_m[None, :] * (w_t @ arr)


def task_difficulty_batched(
    stack, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Per-slice task difficulty vectors, shape ``(N, T)`` (eq. 6).

    Examples
    --------
    >>> ecs = [[4., 8., 5.], [5., 9., 4.], [6., 5., 2.], [2., 1., 3.]]
    >>> task_difficulty_batched([ecs])
    array([[17., 18., 13.,  6.]])
    """
    arr, w_t, w_m = _stack_and_weights(stack, task_weights, machine_weights)
    return w_t[None, :] * (arr @ w_m)


def mph_batched(
    stack, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Machine performance homogeneity of every slice, shape ``(N,)``.

    Examples
    --------
    >>> import numpy as np
    >>> mph_batched(np.diag([1.0, 2.0, 4.0, 8.0, 16.0])[None, :, :])
    array([0.5])
    """
    return average_adjacent_ratio_batched(
        machine_performance_batched(
            stack, task_weights=task_weights, machine_weights=machine_weights
        )
    )


def tdh_batched(
    stack, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Task difficulty homogeneity of every slice, shape ``(N,)``.

    Examples
    --------
    >>> tdh_batched([[[1.0, 2.0], [2.0, 1.0]]])
    array([1.])
    """
    return average_adjacent_ratio_batched(
        task_difficulty_batched(
            stack, task_weights=task_weights, machine_weights=machine_weights
        )
    )


def standard_singular_values_batched(
    stack,
    *,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
) -> np.ndarray:
    """Singular values of every standard-form slice, shape
    ``(N, min(T, M))``, descending per slice.

    By Theorem 2 column 0 is ≈ 1 for every converged slice.  The SVD of
    the whole standardized stack is computed in one
    ``numpy.linalg.svd`` call (stacked-matrix support, values only).
    """
    standard = standardize_batched(
        stack,
        tol=tol,
        max_iterations=max_iterations,
        require_convergence=require_convergence,
    )
    shape = standard.matrix.shape
    with _obs_span(
        "svd.batched", slices=shape[0], rows=shape[1], cols=shape[2]
    ):
        return np.linalg.svd(standard.matrix, compute_uv=False)


def tma_batched(
    stack,
    *,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
) -> np.ndarray:
    """Task-machine affinity of every slice (eq. 8), shape ``(N,)``.

    Values are clamped into ``[0, 1]`` exactly like the scalar
    :func:`repro.measures.tma`; stacks whose slices have a single row
    or column get 0 (no non-maximum singular values).  Zero-patterned
    slices with no standard form surface as
    :class:`~repro.exceptions.ConvergenceError` (or best-iterate values
    under ``require_convergence=False``); route those through the
    scalar path for the Section-VI limit semantics.

    Examples
    --------
    >>> import numpy as np
    >>> stack = np.array([[[2.0, 2.0], [1.0, 1.0]],
    ...                   [[1.0, 0.0], [0.0, 1.0]]])
    >>> np.round(tma_batched(stack), 9)
    array([0., 1.])
    """
    values = standard_singular_values_batched(
        stack,
        tol=tol,
        max_iterations=max_iterations,
        require_convergence=require_convergence,
    )
    if values.shape[1] < 2:
        return np.zeros(values.shape[0], dtype=np.float64)
    # sigma_1 == 1 by Theorem 2 (up to tol); eq. 8 drops the 1/sigma_1.
    raw = values[:, 1:].sum(axis=1) / (values.shape[1] - 1)
    return np.clip(raw, 0.0, 1.0)
