"""Validation and coercion for ``(N, T, M)`` ensemble stacks.

The batched kernels assume clean, C-contiguous ``float64`` stacks the
same way the scalar kernels assume clean matrices (see
``repro._validation``).  A *stack* bundles N same-shape ECS matrices
along a leading ensemble axis; slice ``stack[i]`` is one environment.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MatrixShapeError, MatrixValueError

__all__ = ["as_float_stack", "as_ecs_stack", "stack_environments"]


def as_float_stack(
    values, *, name: str = "stack", allow_nan: bool = False
) -> np.ndarray:
    """Coerce ``values`` to a 3-D C-contiguous float64 array.

    Raises :class:`MatrixShapeError` for non-3D or empty input and
    :class:`MatrixValueError` for NaN entries.  ``allow_nan=True``
    skips the NaN screen — the robust pipeline coerces corrupt stacks
    deliberately so it can quarantine the offending slices per member
    instead of rejecting the whole stack.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 3:
        raise MatrixShapeError(
            f"{name} must be 3-D (N, T, M), got ndim={arr.ndim} "
            f"(shape {arr.shape})"
        )
    if arr.size == 0:
        raise MatrixShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    if not allow_nan and np.isnan(arr).any():
        raise MatrixValueError(f"{name} contains NaN entries")
    return arr


def as_ecs_stack(values, *, name: str = "ECS stack") -> np.ndarray:
    """Validate a stack of ECS matrices.

    Entries must be finite and non-negative; no slice may contain an
    all-zero row or column (the same per-matrix rule as
    :func:`repro._validation.as_ecs_array`, reported with the offending
    slice index).
    """
    arr = as_float_stack(values, name=name)
    if np.isinf(arr).any():
        raise MatrixValueError(
            f"{name} contains infinite entries; infinities belong in the "
            "ETC representation (use zero ECS for incompatible pairs)"
        )
    if (arr < 0).any():
        raise MatrixValueError(f"{name} contains negative entries")
    zero_rows = ~(arr > 0).any(axis=2)
    zero_cols = ~(arr > 0).any(axis=1)
    if zero_rows.any() or zero_cols.any():
        bad = sorted(
            set(np.nonzero(zero_rows.any(axis=1))[0])
            | set(np.nonzero(zero_cols.any(axis=1))[0])
        )
        raise MatrixValueError(
            f"{name} has an all-zero row or column in slice(s) "
            f"{bad[:5]}{'...' if len(bad) > 5 else ''}"
        )
    return arr


def stack_environments(environments) -> np.ndarray | None:
    """Stack same-shape environments into an ``(N, T, M)`` array.

    Each element may be a raw array, an :class:`~repro.core.ECSMatrix`
    (weighting factors folded in) or an :class:`~repro.core.ETCMatrix`
    (converted through paper eq. 1 first) — the same coercion every
    scalar measure applies.  Returns ``None`` when the shapes are ragged
    (the caller should fall back to the scalar path) and raises on an
    empty sequence.

    Examples
    --------
    >>> import numpy as np
    >>> stack_environments([np.ones((2, 3)), 2 * np.ones((2, 3))]).shape
    (2, 2, 3)
    >>> stack_environments([np.ones((2, 3)), np.ones((4, 3))]) is None
    True
    """
    from ..normalize.standard_form import _coerce_ecs

    arrays = [_coerce_ecs(env) for env in environments]
    if not arrays:
        raise MatrixShapeError("cannot stack an empty environment sequence")
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays[1:]):
        return None
    return np.stack(arrays)
