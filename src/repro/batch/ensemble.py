"""One-call columnar characterization of matrix ensembles.

:func:`characterize_ensemble` is the batched sibling of
:func:`repro.measures.characterize_many`: it takes an ``(N, T, M)``
stack (or any sequence of environments) and returns the three paper
measures for every member as flat arrays instead of N profile objects.

Dispatch rules (documented in ``docs/BATCHED.md``):

* all slices share a shape and are strictly positive → fully batched
  kernels (stacked Sinkhorn + one stacked SVD);
* zero-patterned slices → scalar :func:`repro.measures.characterize`
  per slice, so the Section-VI ``tma_fallback`` semantics
  (strict/limit/column) are honoured exactly;
* ragged shapes, or ``batched=False`` → the scalar path for everything,
  optionally across a process pool (``n_jobs``).

Either way the returned columns line up with the input order, and the
batched and scalar paths agree to ≤ 1e-10 on convergent slices (the
differential harness in ``tests/batch/`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MatrixShapeError, MatrixValueError, WeightError
from ..normalize.standard_form import DEFAULT_TOL
from ..obs import current_recorder, metrics as _metrics, traced
from ._stack import as_ecs_stack, stack_environments

__all__ = ["EnsembleCharacterization", "characterize_ensemble"]

#: Structured dtype of :meth:`EnsembleCharacterization.records`.
ENSEMBLE_DTYPE = np.dtype(
    [
        ("mph", np.float64),
        ("tdh", np.float64),
        ("tma", np.float64),
        ("iterations", np.int64),
        ("converged", np.bool_),
        ("batched", np.bool_),
    ]
)


@dataclass(frozen=True)
class EnsembleCharacterization:
    """Columnar measures of an ensemble (one row per environment).

    Attributes
    ----------
    mph, tdh, tma : numpy.ndarray, shape (N,)
        The paper's three measures per member.
    iterations : numpy.ndarray of int, shape (N,)
        Standard-form Sinkhorn iterations; ``-1`` where no standard
        form was computed (eq. 5 column fallback).
    converged : numpy.ndarray of bool, shape (N,)
        Whether the standard-form iteration reached tolerance.
    batched : numpy.ndarray of bool, shape (N,)
        Which members took the batched kernels (False = scalar
        fallback — zero-patterned slice, ragged input, or
        ``batched=False``).
    n_tasks, n_machines : int or None
        Common slice dimensions; ``None`` when the input was ragged.
    """

    mph: np.ndarray
    tdh: np.ndarray
    tma: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    batched: np.ndarray
    n_tasks: int | None
    n_machines: int | None

    def __len__(self) -> int:
        return self.mph.shape[0]

    @property
    def measures(self) -> np.ndarray:
        """The ``(N, 3)`` array of (MPH, TDH, TMA) rows."""
        return np.column_stack([self.mph, self.tdh, self.tma])

    def records(self) -> np.ndarray:
        """The full result as a structured array (``ENSEMBLE_DTYPE``)."""
        out = np.empty(len(self), dtype=ENSEMBLE_DTYPE)
        out["mph"] = self.mph
        out["tdh"] = self.tdh
        out["tma"] = self.tma
        out["iterations"] = self.iterations
        out["converged"] = self.converged
        out["batched"] = self.batched
        return out

    def summary(self) -> str:
        """One-line mean ± std digest of the ensemble."""
        m = self.measures
        mean, std = m.mean(axis=0), m.std(axis=0)
        shape = (
            f"{self.n_tasks}x{self.n_machines}"
            if self.n_tasks is not None
            else "ragged"
        )
        return (
            f"{len(self)} environments ({shape}): "
            f"MPH {mean[0]:.3f}±{std[0]:.3f}  "
            f"TDH {mean[1]:.3f}±{std[1]:.3f}  "
            f"TMA {mean[2]:.3f}±{std[2]:.3f}  "
            f"[{int(self.batched.sum())} batched, "
            f"{int((~self.converged).sum())} non-converged]"
        )


def _characterize_columns(args: tuple) -> tuple:
    """Module-level worker (picklable): scalar columns of one member."""
    from ..measures.report import characterize

    matrix, tol, tma_fallback, backend, precision = args
    profile = characterize(
        matrix,
        tol=tol,
        tma_fallback=tma_fallback,
        backend=backend,
        precision=precision,
    )
    iterations = (
        profile.sinkhorn_iterations
        if profile.sinkhorn_iterations is not None
        else -1
    )
    converged = (
        profile.sinkhorn_residual is not None
        and profile.sinkhorn_residual <= tol
    )
    return (profile.mph, profile.tdh, profile.tma, iterations, converged)


def _coerce_input(
    environments, task_weights=None, machine_weights=None
) -> tuple[np.ndarray | None, list | None]:
    """Shared input coercion for the plain and robust pipelines.

    Returns ``(stack, members)``: a weighted ``(N, T, M)`` float stack
    (and ``members=None``) when the input stacks, or ``stack=None`` and
    the list of coerced 2-D member arrays when the shapes are ragged.
    """
    if isinstance(environments, np.ndarray) and environments.ndim == 3:
        stack = as_ecs_stack(environments)
    elif isinstance(environments, np.ndarray):
        raise MatrixShapeError(
            "array input must be a 3-D (N, T, M) stack, got ndim="
            f"{environments.ndim} (shape {environments.shape}); wrap a "
            "single matrix as matrix[None, :, :] or pass a list"
        )
    else:
        from ..core.environment import ECSMatrix, ETCMatrix

        environments = list(environments)
        if any(
            isinstance(env, (ECSMatrix, ETCMatrix)) for env in environments
        ) and (task_weights is not None or machine_weights is not None):
            raise WeightError(
                "explicit task_weights/machine_weights require raw-array "
                "environments (matrix wrappers carry their own weights)"
            )
        stack = stack_environments(environments)

    if stack is not None and (
        task_weights is not None or machine_weights is not None
    ):
        from .._validation import check_weights

        w_t = check_weights(task_weights, stack.shape[1], name="task_weights")
        w_m = check_weights(
            machine_weights, stack.shape[2], name="machine_weights"
        )
        stack = w_t[None, :, None] * w_m[None, None, :] * stack

    if stack is None:
        from ..normalize.standard_form import _coerce_ecs

        return None, [_coerce_ecs(env) for env in environments]
    return stack, None


def _characterize_stack_batched(
    sub: np.ndarray,
    *,
    tol: float,
    max_iterations: int,
    deadline_s: float | None = None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched (MPH, TDH, TMA, iterations, converged) columns of a
    strictly positive sub-stack.

    The same reductions :func:`repro.measures.characterize` performs on
    the weighted matrix, lifted one axis: MP is the column-sum rows, TD
    the row-sum rows, TMA the mean trailing singular value of the
    standard form (eq. 8).  Per-slice results are independent of which
    other slices share the stack, which is what lets the robust
    pipeline promise bit-identical healthy members.  The whole pass is
    one fused backend call (:mod:`repro.backends`).
    """
    from ..backends import resolve_backend

    return resolve_backend(backend).fused_standard_measures(
        sub,
        tol=tol,
        max_iterations=max_iterations,
        deadline_s=deadline_s,
        warm_start=warm_start,
        precision=precision,
    )


@traced(name="batch.characterize_ensemble")
def characterize_ensemble(
    environments=None,
    *,
    store=None,
    memory_budget_mb: float | None = None,
    chunk_size: int | None = None,
    task_weights=None,
    machine_weights=None,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    tma_fallback: str = "limit",
    batched: bool = True,
    n_jobs: int | None = None,
    policy: str = "raise",
    budget=None,
    fault_plan=None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> EnsembleCharacterization:
    """Characterize a whole ensemble of environments in one call.

    Parameters
    ----------
    environments : numpy.ndarray of shape (N, T, M), or sequence
        A pre-built stack, or any sequence of raw arrays /
        :class:`~repro.core.ECSMatrix` / :class:`~repro.core.ETCMatrix`
        (wrapper weighting factors are folded in, as everywhere else).
        Same-shape sequences are stacked automatically; ragged ones
        fall back to the scalar path.  Omit it (and pass ``store``) to
        stream a disk-backed ensemble instead.
    store : repro.shard.StackStore or path, optional
        An on-disk stack to characterize out-of-core with flat peak
        memory — the call is delegated to
        :func:`repro.shard.characterize_store` and the result is
        bit-identical to loading the whole stack.  Mutually exclusive
        with ``environments`` (and with weights/``warm_start``, which
        the streamed path does not support).
    memory_budget_mb, chunk_size : optional
        Streaming controls for the ``store`` path (peak working-set
        budget in MiB, or an explicit members-per-chunk); invalid
        without ``store``.
    task_weights, machine_weights : array-like, optional
        Weighting factors applied to every member.  Only valid for
        raw-array input (wrappers carry their own weights; mixing the
        two would double-weight).
    tol, max_iterations
        Sinkhorn controls for the standard form.
    tma_fallback : {"limit", "column", "raise"}
        Section-VI handling for zero-patterned members (these always
        take the scalar path; see :func:`repro.measures.characterize`).
    batched : bool
        Force the scalar path with ``False`` (useful for differential
        testing and for memory-constrained very large stacks — the
        batched path materializes the full ``(N, T, M)`` standard-form
        copy).
    n_jobs : int, optional
        Process-pool width for the scalar path (ignored on the batched
        path, which needs no pool).
    policy : {"raise", "quarantine", "repair"}
        Fault handling (see :mod:`repro.robust`).  ``"raise"`` (the
        default) propagates the first member failure, aborting the
        whole call — the historical behavior.  ``"quarantine"``
        isolates failing members into a structured
        :class:`~repro.robust.QuarantineReport` (their result rows are
        NaN-masked) while every healthy member completes with
        bit-identical results; ``"repair"`` additionally retries
        quarantined members through the
        :mod:`repro.robust.repair` ladder.  Both return a
        :class:`~repro.robust.RobustEnsembleCharacterization`.
    budget : repro.robust.Budget, optional
        Wall-clock / retry budgets; only valid with a robust policy.
    fault_plan : repro.robust.FaultPlan, optional
        Fault injection for chaos drills.  Data faults are applied
        under any policy (so a drill can also demonstrate the
        ``"raise"`` crash); ``stall`` faults need a robust policy,
        whose worker path hosts the injected sleep.
    backend, precision
        Kernel backend and float32 fast-path selection, threaded into
        every Sinkhorn/SVD call on both the batched and scalar paths
        (see :mod:`repro.backends`).
    warm_start : ScalingOutcome or (row_scale, col_scale), optional
        Previous standard-form scaling vectors applied before
        iterating — the incremental re-characterization path for
        ``perturb_stack``-style what-if resubmissions (a scalar result
        on the base matrix broadcasts to every slice).  Requires the
        default ``policy="raise"`` and the batched path (stacked,
        strictly positive input).

    Examples
    --------
    >>> import numpy as np
    >>> stack = np.stack([np.ones((2, 2)), np.eye(2) + 0.01])
    >>> result = characterize_ensemble(stack)
    >>> [round(float(v), 2) for v in result.tma]
    [0.0, 0.98]
    >>> bool(result.batched.all()), bool(result.converged.all())
    (True, True)
    """
    if store is not None:
        if environments is not None:
            raise MatrixValueError(
                "pass either environments or store=, not both (a store "
                "IS the ensemble; there is nothing to combine)"
            )
        if task_weights is not None or machine_weights is not None:
            raise WeightError(
                "task_weights/machine_weights are not supported on the "
                "store path (bake weights in when writing the store)"
            )
        if warm_start is not None:
            raise MatrixValueError(
                "warm_start is not supported on the store path (chunks "
                "stream through; there is no stable slice identity to "
                "warm from)"
            )
        from ..shard.engine import characterize_store

        return characterize_store(
            store,
            memory_budget_mb=memory_budget_mb,
            chunk_size=chunk_size,
            tol=tol,
            max_iterations=max_iterations,
            tma_fallback=tma_fallback,
            batched=batched,
            n_jobs=n_jobs,
            policy=policy,
            budget=budget,
            fault_plan=fault_plan,
            backend=backend,
            precision=precision,
        )
    if environments is None:
        raise MatrixValueError(
            "characterize_ensemble needs environments (in-memory) or "
            "store= (out-of-core)"
        )
    if memory_budget_mb is not None or chunk_size is not None:
        raise MatrixValueError(
            "memory_budget_mb/chunk_size only apply to the store path; "
            "in-memory input is characterized in one pass (write the "
            "stack with repro.shard.write_store to stream it)"
        )
    if tma_fallback not in ("limit", "column", "raise"):
        raise MatrixValueError(
            f"tma_fallback must be 'limit', 'column' or 'raise', got "
            f"{tma_fallback!r}"
        )
    if policy not in ("raise", "quarantine", "repair"):
        raise MatrixValueError(
            f"policy must be 'raise', 'quarantine' or 'repair', got "
            f"{policy!r}"
        )
    if policy != "raise":
        if warm_start is not None:
            raise MatrixValueError(
                "warm_start requires policy='raise' (the robust "
                "pipeline re-orders and repairs slices, so previous "
                "scaling vectors cannot be matched up safely)"
            )
        from ..robust.ensemble import characterize_ensemble_robust

        return characterize_ensemble_robust(
            environments,
            task_weights=task_weights,
            machine_weights=machine_weights,
            tol=tol,
            max_iterations=max_iterations,
            tma_fallback=tma_fallback,
            batched=batched,
            n_jobs=n_jobs,
            policy=policy,
            budget=budget,
            fault_plan=fault_plan,
            backend=backend,
            precision=precision,
        )
    if budget is not None:
        raise MatrixValueError(
            "budget requires policy='quarantine' or policy='repair'"
        )
    stack, members = _coerce_input(environments, task_weights, machine_weights)
    if fault_plan is not None:
        if stack is not None:
            stack = fault_plan.apply(stack)
        else:
            members = [
                fault_plan.apply_member(i, m) for i, m in enumerate(members)
            ]

    if stack is None:
        # Ragged shapes: scalar path for every member.
        if warm_start is not None:
            raise MatrixValueError(
                "warm_start requires a stacked (N, T, M) input (ragged "
                "members take the scalar path)"
            )
        from .._parallel import parallel_map

        rec = current_recorder()
        if rec is not None:
            rec.counter("ensemble.slices", len(members))
            rec.counter("ensemble.fallback_slices", len(members))
        _metrics.count_ensemble_members(fallback=len(members))
        items = [
            (member, tol, tma_fallback, backend, precision)
            for member in members
        ]
        columns = parallel_map(_characterize_columns, items, n_jobs=n_jobs)
        return _from_columns(columns, n_tasks=None, n_machines=None)

    n_slices, n_tasks, n_machines = stack.shape
    positive = (stack > 0).all(axis=(1, 2))
    if not batched:
        positive = np.zeros(n_slices, dtype=bool)
    warm_rows = warm_cols = None
    if warm_start is not None:
        if not positive.all():
            raise MatrixValueError(
                "warm_start requires batched=True and a strictly "
                "positive stack (zero-patterned slices take the scalar "
                "path, which cannot reuse scaling vectors)"
            )
        from ..backends.base import coerce_warm_start_batched

        warm_rows, warm_cols = coerce_warm_start_batched(
            warm_start, n_slices, n_tasks, n_machines
        )
    rec = current_recorder()
    if rec is not None:
        rec.counter("ensemble.slices", n_slices)
        rec.counter("ensemble.batched_slices", int(positive.sum()))
        rec.counter("ensemble.fallback_slices", int((~positive).sum()))
    _metrics.count_ensemble_members(
        batched=int(positive.sum()), fallback=int((~positive).sum())
    )

    mph = np.empty(n_slices, dtype=np.float64)
    tdh = np.empty(n_slices, dtype=np.float64)
    tma = np.empty(n_slices, dtype=np.float64)
    iterations = np.empty(n_slices, dtype=np.int64)
    converged = np.zeros(n_slices, dtype=bool)

    if positive.any():
        (
            mph[positive],
            tdh[positive],
            tma[positive],
            iterations[positive],
            converged[positive],
        ) = _characterize_stack_batched(
            stack[positive],
            tol=tol,
            max_iterations=max_iterations,
            backend=backend,
            precision=precision,
            warm_start=(
                None
                if warm_rows is None
                else (warm_rows[positive], warm_cols[positive])
            ),
        )

    fallback = ~positive
    if fallback.any():
        from .._parallel import parallel_map

        items = [
            (stack[i], tol, tma_fallback, backend, precision)
            for i in np.nonzero(fallback)[0]
        ]
        columns = parallel_map(_characterize_columns, items, n_jobs=n_jobs)
        for i, (m, t, a, its, conv) in zip(np.nonzero(fallback)[0], columns):
            mph[i], tdh[i], tma[i] = m, t, a
            iterations[i] = its
            converged[i] = conv

    return EnsembleCharacterization(
        mph=mph,
        tdh=tdh,
        tma=tma,
        iterations=iterations,
        converged=converged,
        batched=positive,
        n_tasks=n_tasks,
        n_machines=n_machines,
    )


def _from_columns(
    columns, *, n_tasks: int | None, n_machines: int | None
) -> EnsembleCharacterization:
    """Assemble a columnar result from per-member scalar tuples."""
    arr = np.array(columns, dtype=np.float64).reshape(-1, 5)
    return EnsembleCharacterization(
        mph=arr[:, 0].copy(),
        tdh=arr[:, 1].copy(),
        tma=arr[:, 2].copy(),
        iterations=arr[:, 3].astype(np.int64),
        converged=arr[:, 4].astype(bool),
        batched=np.zeros(arr.shape[0], dtype=bool),
        n_tasks=n_tasks,
        n_machines=n_machines,
    )
