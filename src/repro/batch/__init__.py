"""Batched ensemble kernels over ``(N, T, M)`` matrix stacks.

Every study layer in this library (sensitivity trials, independence
ensembles, generator regime sweeps) characterizes many same-shape ETC
matrices.  The paper's kernels are pure row/column reductions plus one
SVD, so they batch naturally along a leading ensemble axis; this
package provides that stacked evaluation path:

* :func:`sinkhorn_knopp_batched` / :func:`standardize_batched` —
  broadcast row/column scaling with per-slice convergence masks and
  residual histories (paper eq. 9, Theorems 1–2);
* :func:`mph_batched` / :func:`tdh_batched` / :func:`tma_batched` —
  the three measures vectorized over the stack, TMA through
  ``numpy.linalg.svd``'s stacked-matrix support;
* :func:`characterize_ensemble` — one-call columnar characterization
  (structured arrays of MPH/TDH/TMA, iteration counts, converged
  flags) with automatic scalar fallback for zero-patterned slices and
  ragged inputs.

The batched and scalar paths agree to ≤ 1e-10 per slice on convergent
stacks; the differential and property-based harness in ``tests/batch/``
enforces this, and ``benchmarks/bench_batched_pipeline.py`` records the
scalar-vs-batched throughput.  See ``docs/BATCHED.md`` for the
dispatch rules and the memory trade-off of materializing full stacks.
"""

from ._stack import as_ecs_stack, as_float_stack, stack_environments
from .sinkhorn import (
    BatchNormalizationResult,
    sinkhorn_knopp_batched,
    standardize_batched,
)
from .measures import (
    average_adjacent_ratio_batched,
    machine_performance_batched,
    task_difficulty_batched,
    mph_batched,
    tdh_batched,
    standard_singular_values_batched,
    tma_batched,
)
from .ensemble import (
    ENSEMBLE_DTYPE,
    EnsembleCharacterization,
    characterize_ensemble,
)

__all__ = [
    "as_float_stack",
    "as_ecs_stack",
    "stack_environments",
    "BatchNormalizationResult",
    "sinkhorn_knopp_batched",
    "standardize_batched",
    "average_adjacent_ratio_batched",
    "machine_performance_batched",
    "task_difficulty_batched",
    "mph_batched",
    "tdh_batched",
    "standard_singular_values_batched",
    "tma_batched",
    "ENSEMBLE_DTYPE",
    "EnsembleCharacterization",
    "characterize_ensemble",
]
