"""Batched alternating row/column scaling over ``(N, T, M)`` stacks.

:func:`sinkhorn_knopp_batched` runs the paper's eq. (9) iteration on a
whole ensemble of same-shape matrices at once: one iteration is two
broadcast sums and two broadcast multiplies over the full stack, so the
per-matrix Python overhead of the scalar loop disappears.  Slices
converge independently — a per-slice *active mask* freezes a slice the
moment its residual drops below ``tol``, which keeps every slice's
iterate sequence identical to what the scalar
:func:`repro.normalize.sinkhorn_knopp` would produce on that matrix
alone (the differential harness in ``tests/batch/`` pins this to
≤ 1e-10).

:func:`standardize_batched` applies the Theorem-2 targets
(rows ``sqrt(M/T)``, columns ``sqrt(T/M)``) to a stack.  Unlike the
scalar :func:`repro.normalize.standardize` it performs **no** Menon
normalizability pre-test: zero-patterned slices that admit no standard
form simply fail to converge and are reported through the ``converged``
mask (or a :class:`~repro.exceptions.ConvergenceError` naming the
slices when ``require_convergence=True``).  Callers that need the
Section-VI limit semantics should route zero-containing slices through
the scalar path — :func:`repro.batch.characterize_ensemble` does
exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_scalar
from ..backends import resolve_backend
from ..backends.base import (
    check_precision,
    coerce_warm_start_batched,
    run_sinkhorn_batched,
)
from ..exceptions import ConvergenceError, MatrixValueError
from ..normalize.outcome import _removed_alias
from ..normalize.sinkhorn import (
    NormalizationResult,
    _check_deadline,
    convergence_message,
)
from ..obs import current_recorder, metrics as _metrics, span as _obs_span
from ..normalize.standard_form import standard_targets
from ._stack import as_float_stack

__all__ = [
    "BatchNormalizationResult",
    "sinkhorn_knopp_batched",
    "standardize_batched",
]


@dataclass(frozen=True)
class BatchNormalizationResult:
    """Columnar outcome of the batched alternating-scaling iteration.

    Field names follow the :class:`~repro.normalize.ScalingOutcome`
    protocol shared with the scalar results — ``matrix`` is the whole
    scaled stack here, and the diagnostics are per-slice arrays instead
    of scalars.  The pre-1.1 names ``matrices`` and
    ``residual_histories`` were removed after their deprecation cycle;
    accessing them raises :class:`AttributeError` naming the
    replacement field.

    Attributes
    ----------
    matrix : numpy.ndarray, shape (N, T, M)
        The scaled stack; slice ``i`` is ``D1_i @ A_i @ D2_i``.
    row_scale : numpy.ndarray, shape (N, T)
        Per-slice diagonals of ``D1``.
    col_scale : numpy.ndarray, shape (N, M)
        Per-slice diagonals of ``D2``.
    converged : numpy.ndarray of bool, shape (N,)
        Per-slice convergence mask.
    iterations : numpy.ndarray of int, shape (N,)
        Full (column pass + row pass) iterations each slice ran before
        freezing.
    residual : numpy.ndarray, shape (N,)
        Final per-slice residual (largest absolute row/column-sum
        deviation from its target).
    residual_history : tuple of tuple of float
        Per-slice residual trace; entry 0 of each is the residual of
        the *input* slice, matching the scalar result's convention.
    row_target, col_target : float
        The target sums the iteration aimed for.
    """

    matrix: np.ndarray
    row_scale: np.ndarray
    col_scale: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    residual: np.ndarray
    residual_history: tuple[tuple[float, ...], ...] = field(repr=False)
    row_target: float = 1.0
    col_target: float = 1.0

    matrices = _removed_alias("matrices", "matrix")
    residual_histories = _removed_alias(
        "residual_histories", "residual_history"
    )

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def slice(self, index: int) -> NormalizationResult:
        """The scalar-compatible :class:`NormalizationResult` of slice
        ``index`` (a bridge for code written against the scalar API)."""
        return NormalizationResult(
            matrix=self.matrix[index].copy(),
            row_scale=self.row_scale[index].copy(),
            col_scale=self.col_scale[index].copy(),
            converged=bool(self.converged[index]),
            iterations=int(self.iterations[index]),
            residual=float(self.residual[index]),
            residual_history=self.residual_history[index],
            row_target=self.row_target,
            col_target=self.col_target,
        )


def _residuals(stack: np.ndarray, row_target: float, col_target: float) -> np.ndarray:
    """Per-slice residual of an (n, T, M) stack."""
    row_err = np.abs(stack.sum(axis=2) - row_target).max(axis=1)
    col_err = np.abs(stack.sum(axis=1) - col_target).max(axis=1)
    return np.maximum(row_err, col_err)


def sinkhorn_knopp_batched(
    stack,
    *,
    row_target: float = 1.0,
    col_target: float | None = None,
    tol: float = 1e-8,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
    deadline_s: float | None = None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> BatchNormalizationResult:
    """Scale every slice of ``stack`` so rows sum to ``row_target`` and
    columns to ``col_target``.

    Semantics per slice are identical to the scalar
    :func:`repro.normalize.sinkhorn_knopp` (same validation, same
    column-then-row pass order, same joint stopping rule); the batching
    is purely an execution strategy.  A slice stops iterating the
    moment it converges, so already-converged slices are not perturbed
    while stragglers continue.

    Parameters
    ----------
    stack : array-like, shape (N, T, M)
        Stack of non-negative matrices, none with an all-zero row or
        column.
    row_target, col_target, tol, max_iterations
        As in the scalar kernel; ``col_target`` defaults to the unique
        consistent value ``T * row_target / M``.
    require_convergence : bool
        When True (default) a :class:`~repro.exceptions.ConvergenceError`
        is raised if *any* slice misses the tolerance, naming the
        offending slice indices; when False the best iterates are
        returned with the per-slice ``converged`` mask.
    deadline_s : float or None
        Wall-clock budget in seconds (checked once per iteration over
        the whole stack).  When it expires, still-active slices freeze
        as non-converged — graceful degradation instead of burning the
        full iteration budget on a straggling slice.  ``None`` (the
        default) means unbounded.
    backend, precision
        Kernel backend and float32 fast-path selection, exactly as in
        the scalar kernel (see :mod:`repro.backends`).
    warm_start : ScalingOutcome or (row_scale, col_scale), optional
        Previous scaling vectors applied before iterating.  A single
        ``(T,)``/``(M,)`` pair (e.g. from the unperturbed base matrix
        of a what-if stack) broadcasts to every slice; per-slice
        ``(N, T)``/``(N, M)`` arrays — e.g. a previous
        :class:`BatchNormalizationResult` — warm each slice
        individually.

    Examples
    --------
    >>> import numpy as np
    >>> stack = np.array([[[1.0, 2.0], [3.0, 4.0]],
    ...                   [[5.0, 1.0], [1.0, 5.0]]])
    >>> result = sinkhorn_knopp_batched(stack)
    >>> bool(result.converged.all())
    True
    >>> np.round(result.matrix.sum(axis=2), 6)
    array([[1., 1.],
           [1., 1.]])
    """
    be = resolve_backend(backend)
    precision = check_precision(precision)
    work = as_float_stack(stack, name="stack").copy()
    if np.isinf(work).any():
        raise MatrixValueError("stack must be finite (got inf entries)")
    if (work < 0).any():
        raise MatrixValueError("stack must be non-negative")
    n_slices, n_rows, n_cols = work.shape
    row_target = check_positive_scalar(row_target, name="row_target")
    implied = n_rows * row_target / n_cols
    if col_target is None:
        col_target = implied
    else:
        col_target = check_positive_scalar(col_target, name="col_target")
        if not np.isclose(col_target, implied, rtol=1e-12, atol=0.0):
            raise MatrixValueError(
                "inconsistent targets: need T*row_target == M*col_target "
                f"({n_rows}*{row_target} != {n_cols}*{col_target})"
            )
    zero_line = (work.sum(axis=2) == 0).any(axis=1) | (
        work.sum(axis=1) == 0
    ).any(axis=1)
    if zero_line.any():
        bad = np.nonzero(zero_line)[0]
        raise MatrixValueError(
            "stack has an all-zero row or column in slice(s) "
            f"{bad[:5].tolist()}{'...' if bad.size > 5 else ''}; "
            "no scaling can fix that"
        )

    row_scale = np.ones((n_slices, n_rows), dtype=np.float64)
    col_scale = np.ones((n_slices, n_cols), dtype=np.float64)
    if warm_start is not None:
        warm_rows, warm_cols = coerce_warm_start_batched(
            warm_start, n_slices, n_rows, n_cols
        )
        work = warm_rows[:, :, None] * work * warm_cols[:, None, :]
        row_scale = warm_rows.copy()
        col_scale = warm_cols.copy()
    residual = _residuals(work, row_target, col_target)
    histories: list[list[float]] = [[float(r)] for r in residual]
    converged = residual <= tol
    iterations = np.zeros(n_slices, dtype=np.int64)
    active = ~converged
    it = 0
    t_end = _check_deadline(deadline_s)
    timed_out = False
    precision_outcome = None
    rec = current_recorder()
    with _obs_span(
        "sinkhorn.batched", slices=n_slices, rows=n_rows, cols=n_cols
    ) as sp:
        if rec is not None:
            # Active-mask occupancy: how many slices still iterate.
            def on_progress(active_count: int) -> None:
                sp.sample("active_slices", active_count)
        else:
            on_progress = None
        if active.any():
            it, timed_out, precision_outcome = run_sinkhorn_batched(
                be,
                work,
                row_target,
                col_target,
                tol=tol,
                max_iterations=max_iterations,
                row_scale=row_scale,
                col_scale=col_scale,
                histories=histories,
                iterations=iterations,
                residual=residual,
                converged=converged,
                active=active,
                t_end=t_end,
                precision=precision,
                on_progress=on_progress,
            )
        sp.note(
            iterations=int(it),
            converged_slices=int(converged.sum()),
            max_residual=float(residual.max()),
            timed_out=timed_out,
        )
    _metrics.observe_sinkhorn_batch(
        "batched",
        iterations=iterations,
        residual=residual,
        converged=converged,
    )
    _metrics.count_backend_dispatch(be.name, "sinkhorn_batched")
    if precision_outcome is not None:
        _metrics.count_backend_precision(be.name, precision_outcome)
    if warm_start is not None:
        _metrics.count_warm_start(
            "sinkhorn_batched",
            "converged" if bool(converged.all()) else "pending",
        )
    if active.any() and require_convergence:
        bad = np.nonzero(active)[0]
        raise ConvergenceError(
            convergence_message(
                f"{bad.size} of {n_slices} slices",
                tol=tol,
                iterations=int(it),
                residual=float(residual[bad].max()),
                failing=bad[:5].tolist(),
                deadline_s=deadline_s if timed_out else None,
            ),
            iterations=int(it),
            residual=float(residual[bad].max()),
        )
    return BatchNormalizationResult(
        matrix=work,
        row_scale=row_scale,
        col_scale=col_scale,
        converged=converged,
        iterations=iterations,
        residual=residual,
        residual_history=tuple(tuple(h) for h in histories),
        row_target=row_target,
        col_target=col_target,
    )


def standardize_batched(
    stack,
    *,
    tol: float = 1e-8,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
    deadline_s: float | None = None,
    policy: str = "raise",
    budget=None,
    fault_plan=None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> BatchNormalizationResult:
    """Convert every slice of a stack to the standard ECS form.

    Applies the Theorem-2 targets (rows ``sqrt(M/T)``, columns
    ``sqrt(T/M)``) so the largest singular value of every converged
    slice is 1.  No Menon pre-test is performed: slices whose zero
    pattern admits no standard form show up as non-converged (see the
    module docstring for the fallback rules).

    ``policy`` selects the fault semantics: ``"raise"`` (default) is
    the historical behavior described above; ``"quarantine"`` /
    ``"repair"`` delegate to
    :func:`repro.robust.standardize_batched_robust`, which isolates
    corrupt or structurally hopeless slices into a
    :class:`~repro.robust.QuarantineReport` (NaN result rows) instead
    of rejecting the whole stack, honouring the optional ``budget``
    and applying the optional chaos ``fault_plan``.

    ``backend``/``precision``/``warm_start`` behave exactly as in
    :func:`sinkhorn_knopp_batched`; ``warm_start`` requires the default
    ``policy="raise"`` (the robust pipeline re-orders slices, so stale
    scaling vectors cannot be matched up safely).

    Examples
    --------
    >>> import numpy as np
    >>> result = standardize_batched(np.array([[[1.0, 0.0], [0.0, 3.0]]]))
    >>> np.round(result.matrix[0], 6)
    array([[1., 0.],
           [0., 1.]])
    """
    if policy not in ("raise", "quarantine", "repair"):
        raise MatrixValueError(
            f"policy must be 'raise', 'quarantine' or 'repair', got "
            f"{policy!r}"
        )
    if policy != "raise":
        if warm_start is not None:
            raise MatrixValueError(
                "warm_start requires policy='raise' (the robust "
                "pipeline re-orders and repairs slices, so previous "
                "scaling vectors cannot be matched up safely)"
            )
        from ..robust.ensemble import standardize_batched_robust

        return standardize_batched_robust(
            stack,
            tol=tol,
            max_iterations=max_iterations,
            policy=policy,
            budget=budget,
            fault_plan=fault_plan,
            backend=backend,
            precision=precision,
        )
    if budget is not None or fault_plan is not None:
        raise MatrixValueError(
            "budget/fault_plan require policy='quarantine' or "
            "policy='repair'"
        )
    work = as_float_stack(stack, name="stack")
    row_target, col_target = standard_targets(work.shape[1], work.shape[2])
    return sinkhorn_knopp_batched(
        work,
        row_target=row_target,
        col_target=col_target,
        tol=tol,
        max_iterations=max_iterations,
        require_convergence=require_convergence,
        deadline_s=deadline_s,
        backend=backend,
        precision=precision,
        warm_start=warm_start,
    )
