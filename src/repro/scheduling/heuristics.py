"""Batch-mode mapping heuristics (paper reference [6], Braun et al.).

All heuristics take the per-instance ETC array (or a
:class:`~repro.scheduling.Workload`) and return a
:class:`~repro.scheduling.Mapping`.  ``inf`` entries mark incompatible
task/machine pairs and are never selected.

Immediate mode (one pass in arrival order): OLB, MET, MCT, random.
Batch mode (consider all unmapped tasks each step): Min-min, Max-min,
Sufferage, Duplex.  ``ga`` refines Min-min with a small steady-state
genetic algorithm.

The batch kernels are vectorized over machines and over the unmapped
set: each of the N steps does O(U·M) numpy work instead of Python-level
scanning, following the repo's vectorization rule.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import SchedulingError
from ..generate._rng import resolve_rng
from ..obs import current_recorder, span as _obs_span
from .mapping import Mapping, evaluate_mapping
from .workload import Workload

__all__ = [
    "HEURISTICS",
    "olb",
    "met",
    "mct",
    "min_min",
    "max_min",
    "sufferage",
    "duplex",
    "ga",
    "random_mapping",
    "run_heuristic",
]


def _coerce(etc) -> np.ndarray:
    if isinstance(etc, Workload):
        etc = etc.etc_instances
    arr = np.asarray(etc, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise SchedulingError("per-instance ETC must be a non-empty 2-D array")
    if (np.nan_to_num(arr, posinf=1.0) <= 0).any():
        raise SchedulingError("ETC values must be positive (inf = incompatible)")
    if np.isinf(arr).all(axis=1).any():
        raise SchedulingError("some task instance is incompatible with every machine")
    return arr


def olb(etc, *, seed=None) -> Mapping:
    """Opportunistic Load Balancing: next task goes to the machine with
    the lightest current load, ignoring the task's own ETC there
    (compatible machines only)."""
    arr = _coerce(etc)
    n_tasks, n_machines = arr.shape
    loads = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.intp)
    for k in range(n_tasks):
        masked = np.where(np.isfinite(arr[k]), loads, np.inf)
        m = int(np.argmin(masked))
        assignment[k] = m
        loads[m] += arr[k, m]
    return evaluate_mapping(arr, assignment, heuristic="olb")


def met(etc, *, seed=None) -> Mapping:
    """Minimum Execution Time: each task to its fastest machine,
    ignoring load (prone to overloading the best machine)."""
    arr = _coerce(etc)
    assignment = np.argmin(arr, axis=1)
    return evaluate_mapping(arr, assignment, heuristic="met")


def mct(etc, *, seed=None) -> Mapping:
    """Minimum Completion Time: next task to the machine where it
    finishes earliest given current loads."""
    arr = _coerce(etc)
    n_tasks, n_machines = arr.shape
    loads = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.intp)
    for k in range(n_tasks):
        m = int(np.argmin(loads + arr[k]))
        assignment[k] = m
        loads[m] += arr[k, m]
    return evaluate_mapping(arr, assignment, heuristic="mct")


def random_mapping(etc, *, seed=None) -> Mapping:
    """Uniform random compatible machine per task (baseline)."""
    arr = _coerce(etc)
    rng = resolve_rng(seed)
    n_tasks, n_machines = arr.shape
    assignment = np.empty(n_tasks, dtype=np.intp)
    for k in range(n_tasks):
        compatible = np.nonzero(np.isfinite(arr[k]))[0]
        assignment[k] = int(rng.choice(compatible))
    return evaluate_mapping(arr, assignment, heuristic="random")


def _batch_kernel(
    arr: np.ndarray, select: str, initial_loads=None
) -> np.ndarray:
    """Shared Min-min / Max-min / Sufferage loop.

    Each step computes, for every unmapped task, the machine minimizing
    its completion time; ``select`` picks which task commits first:
    the smallest best completion (min), the largest (max), or the
    largest best-vs-second-best gap (sufferage).  ``initial_loads``
    seeds the machine ready times (used by the batch-mode dynamic
    simulator, where machines carry work from earlier regenerations).
    """
    n_tasks, n_machines = arr.shape
    loads = (
        np.zeros(n_machines)
        if initial_loads is None
        else np.asarray(initial_loads, dtype=np.float64).copy()
    )
    assignment = np.empty(n_tasks, dtype=np.intp)
    remaining = np.arange(n_tasks)
    while remaining.size:
        completion = loads[None, :] + arr[remaining]  # (U, M)
        best_machine = np.argmin(completion, axis=1)
        best_value = completion[np.arange(remaining.size), best_machine]
        if select == "min":
            pick = int(np.argmin(best_value))
        elif select == "max":
            pick = int(np.argmax(best_value))
        else:  # sufferage
            if n_machines == 1:
                pick = int(np.argmin(best_value))
            else:
                tmp = completion.copy()
                tmp[np.arange(remaining.size), best_machine] = np.inf
                second = tmp.min(axis=1)
                gap = np.where(np.isfinite(second), second - best_value,
                               np.inf)
                pick = int(np.argmax(gap))
        task = int(remaining[pick])
        machine = int(best_machine[pick])
        assignment[task] = machine
        loads[machine] += arr[task, machine]
        remaining = np.delete(remaining, pick)
    return assignment


def min_min(etc, *, seed=None) -> Mapping:
    """Min-min: repeatedly commit the (task, machine) pair with the
    globally smallest completion time.  The strongest simple heuristic
    of Braun et al.'s study in most heterogeneity regimes."""
    arr = _coerce(etc)
    return evaluate_mapping(arr, _batch_kernel(arr, "min"), heuristic="min_min")


def max_min(etc, *, seed=None) -> Mapping:
    """Max-min: commit the task whose *best* completion time is largest
    (long tasks first); wins when a few dominant tasks exist."""
    arr = _coerce(etc)
    return evaluate_mapping(arr, _batch_kernel(arr, "max"), heuristic="max_min")


def sufferage(etc, *, seed=None) -> Mapping:
    """Sufferage: commit the task that would suffer most if denied its
    best machine (largest best/second-best completion gap)."""
    arr = _coerce(etc)
    return evaluate_mapping(
        arr, _batch_kernel(arr, "sufferage"), heuristic="sufferage"
    )


def duplex(etc, *, seed=None) -> Mapping:
    """Duplex: run Min-min and Max-min, keep the better makespan."""
    arr = _coerce(etc)
    a = min_min(arr)
    b = max_min(arr)
    best = a if a.makespan <= b.makespan else b
    return evaluate_mapping(arr, best.assignment, heuristic="duplex")


def ga(
    etc,
    *,
    population: int = 24,
    generations: int = 60,
    mutation_rate: float = 0.08,
    seed=None,
) -> Mapping:
    """Genetic-algorithm refinement seeded with Min-min.

    A compact steady-state GA over assignment chromosomes: tournament
    selection, uniform crossover, per-gene reassignment mutation
    restricted to compatible machines, elitism of one.  Never returns a
    mapping worse than its Min-min seed.
    """
    arr = _coerce(etc)
    rng = resolve_rng(seed)
    n_tasks, n_machines = arr.shape
    finite = np.isfinite(arr)
    compatible = [np.nonzero(finite[k])[0] for k in range(n_tasks)]

    def makespan_of(chrom: np.ndarray) -> float:
        times = arr[np.arange(n_tasks), chrom]
        return float(
            np.bincount(chrom, weights=times, minlength=n_machines).max()
        )

    seed_chrom = min_min(arr).assignment.astype(np.intp)
    pop = [seed_chrom.copy()]
    for _ in range(population - 1):
        chrom = seed_chrom.copy()
        flips = rng.random(n_tasks) < 0.3
        for k in np.nonzero(flips)[0]:
            chrom[k] = int(rng.choice(compatible[k]))
        pop.append(chrom)
    fitness = np.array([makespan_of(c) for c in pop])

    for _ in range(generations):
        # Tournament parents.
        idx = rng.integers(0, population, size=4)
        p1 = pop[idx[0]] if fitness[idx[0]] <= fitness[idx[1]] else pop[idx[1]]
        p2 = pop[idx[2]] if fitness[idx[2]] <= fitness[idx[3]] else pop[idx[3]]
        mask = rng.random(n_tasks) < 0.5
        child = np.where(mask, p1, p2).astype(np.intp)
        for k in np.nonzero(rng.random(n_tasks) < mutation_rate)[0]:
            child[k] = int(rng.choice(compatible[k]))
        child_fit = makespan_of(child)
        worst = int(np.argmax(fitness))
        if child_fit < fitness[worst]:
            pop[worst] = child
            fitness[worst] = child_fit
    best = pop[int(np.argmin(fitness))]
    return evaluate_mapping(arr, best, heuristic="ga")


#: Registry used by :func:`run_heuristic` and the selection study.
HEURISTICS: dict[str, Callable[..., Mapping]] = {
    "olb": olb,
    "met": met,
    "mct": mct,
    "min_min": min_min,
    "max_min": max_min,
    "sufferage": sufferage,
    "duplex": duplex,
    "ga": ga,
    "random": random_mapping,
}


def run_heuristic(name: str, etc, *, seed=None, **kwargs) -> Mapping:
    """Run a heuristic by registry name.

    Examples
    --------
    >>> run_heuristic("min_min", [[1.0, 2.0], [2.0, 1.0]]).makespan
    1.0
    """
    name = name.lower()
    try:
        fn = HEURISTICS[name]
    except KeyError:
        raise SchedulingError(
            f"unknown heuristic {name!r}; available: "
            f"{', '.join(sorted(HEURISTICS))}"
        ) from None
    with _obs_span(f"scheduling.{name}") as sp:
        mapping = fn(etc, seed=seed, **kwargs)
        sp.note(
            tasks=int(mapping.assignment.shape[0]),
            makespan=mapping.makespan,
        )
    rec = current_recorder()
    if rec is not None:
        rec.counter("scheduling.decisions", int(mapping.assignment.shape[0]))
    return mapping
