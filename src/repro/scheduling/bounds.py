"""Makespan bounds for static mappings.

Certifying heuristic quality needs reference points that do not depend
on any heuristic.  Two classical lower bounds and one trivial upper
bound, all computable directly from the per-instance ETC array:

* ``max_i min_j ETC[i, j]`` — some task must run somewhere, and it
  cannot beat its own best machine;
* ``(Σ_i min_j ETC[i, j]) / M`` — even perfectly divisible best-case
  work shared by all machines takes this long (a valid relaxation even
  under heterogeneity, since every task is credited its fastest time);
* serial upper bound ``Σ_i max_j ETC[i, j]`` — the worst machine for
  every task, all on one queue.

``optimal_makespan`` solves small instances exactly by branch and
bound (used by the test suite to certify Min-min & friends on
paper-scale matrices).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SchedulingError
from .workload import Workload

__all__ = [
    "makespan_lower_bound",
    "makespan_upper_bound",
    "optimal_makespan",
]


def _coerce(etc) -> np.ndarray:
    if isinstance(etc, Workload):
        etc = etc.etc_instances
    arr = np.asarray(etc, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise SchedulingError("per-instance ETC must be a non-empty 2-D array")
    if np.isinf(arr).all(axis=1).any():
        raise SchedulingError(
            "some task instance is incompatible with every machine"
        )
    return arr


def makespan_lower_bound(etc) -> float:
    """The larger of the two classical lower bounds (module docstring).

    Examples
    --------
    >>> makespan_lower_bound([[4.0, 9.0], [1.0, 1.0], [1.0, 1.0]])
    4.0
    >>> makespan_lower_bound([[2.0, 2.0], [2.0, 2.0], [2.0, 2.0],
    ...                       [2.0, 2.0]])
    4.0
    """
    arr = _coerce(etc)
    best = np.where(np.isfinite(arr), arr, np.inf).min(axis=1)
    return float(max(best.max(), best.sum() / arr.shape[1]))


def makespan_upper_bound(etc) -> float:
    """Serial worst-machine schedule: valid for any assignment.

    Incompatible entries are excluded (the bound uses each task's worst
    *compatible* machine).
    """
    arr = _coerce(etc)
    worst = np.where(np.isfinite(arr), arr, -np.inf).max(axis=1)
    return float(worst.sum())


#: Guard for the exact solver: branch-and-bound explores up to M^N
#: assignments in the worst case.
_MAX_EXACT_CELLS = 10**7


def optimal_makespan(etc) -> float:
    """Exact minimum makespan by depth-first branch and bound.

    Tasks are ordered by decreasing best execution time (strong
    branching), machines are pruned with the running best makespan and
    the remaining-best-work relaxation.  Intended for the small
    instances the test oracles use; raises for problems whose
    worst-case search would be unreasonable.

    Examples
    --------
    >>> optimal_makespan([[3.0, 1.0], [2.0, 4.0]])
    2.0
    """
    arr = _coerce(etc)
    n_tasks, n_machines = arr.shape
    if n_machines**n_tasks > _MAX_EXACT_CELLS:
        raise SchedulingError(
            f"exact search infeasible for {n_tasks} tasks on "
            f"{n_machines} machines; use the heuristics instead"
        )
    best_times = np.where(np.isfinite(arr), arr, np.inf).min(axis=1)
    order = np.argsort(-best_times, kind="stable")
    ordered = arr[order]
    suffix_best = np.concatenate(
        [np.cumsum(best_times[order][::-1])[::-1], [0.0]]
    )

    from .heuristics import min_min

    incumbent = min_min(arr).makespan  # warm start
    loads = np.zeros(n_machines)

    def dfs(idx: int, current_max: float) -> None:
        nonlocal incumbent
        if idx == n_tasks:
            incumbent = min(incumbent, current_max)
            return
        # Relaxation: remaining best work shared perfectly.
        relaxed = max(
            current_max,
            (loads.sum() + suffix_best[idx]) / n_machines,
        )
        if relaxed >= incumbent - 1e-12:
            return
        row = ordered[idx]
        candidates = np.argsort(loads + np.where(np.isfinite(row), row, np.inf))
        for machine in candidates:
            time = row[machine]
            if not np.isfinite(time):
                continue
            new_max = max(current_max, loads[machine] + time)
            if new_max >= incumbent - 1e-12:
                continue
            loads[machine] += time
            dfs(idx + 1, new_max)
            loads[machine] -= time
    dfs(0, 0.0)
    return float(incumbent)
