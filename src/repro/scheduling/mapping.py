"""Task→machine assignments and their quality metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SchedulingError

__all__ = ["Mapping", "evaluate_mapping"]


@dataclass(frozen=True)
class Mapping:
    """A static assignment of task instances to machines.

    Attributes
    ----------
    assignment : numpy.ndarray of int, shape (N,)
        ``assignment[k]`` is the machine index running task instance
        ``k``.
    machine_loads : numpy.ndarray, shape (M,)
        Total execution time assigned to each machine.
    makespan : float
        ``machine_loads.max()`` — the batch completion time, the metric
        the mapping-heuristic literature minimizes.
    flowtime : float
        Sum of per-task completion times under in-assignment-order
        execution on each machine (a secondary quality metric).
    heuristic : str
        Name of the heuristic that produced the mapping.
    """

    assignment: np.ndarray
    machine_loads: np.ndarray
    makespan: float
    flowtime: float
    heuristic: str

    def __post_init__(self) -> None:
        self.assignment.setflags(write=False)
        self.machine_loads.setflags(write=False)


def evaluate_mapping(
    etc_instances: np.ndarray, assignment, *, heuristic: str = "custom"
) -> Mapping:
    """Build a :class:`Mapping` (with metrics) from a raw assignment.

    Parameters
    ----------
    etc_instances : numpy.ndarray, shape (N, M)
        Per-instance execution times (``inf`` marks incompatibility).
    assignment : array-like of int, shape (N,)
        Machine index per task instance.
    heuristic : str
        Label recorded on the mapping.

    Raises
    ------
    SchedulingError
        If any task is assigned to an incompatible machine or the
        assignment is malformed.
    """
    etc_instances = np.asarray(etc_instances, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.intp).reshape(-1)
    n_tasks, n_machines = etc_instances.shape
    if assignment.shape[0] != n_tasks:
        raise SchedulingError(
            f"assignment length {assignment.shape[0]} != {n_tasks} tasks"
        )
    if ((assignment < 0) | (assignment >= n_machines)).any():
        raise SchedulingError("assignment contains out-of-range machine indices")
    times = etc_instances[np.arange(n_tasks), assignment]
    if not np.isfinite(times).all():
        bad = int(np.nonzero(~np.isfinite(times))[0][0])
        raise SchedulingError(
            f"task {bad} assigned to machine {int(assignment[bad])} it "
            "cannot execute on"
        )
    loads = np.bincount(assignment, weights=times, minlength=n_machines)
    # Flowtime: tasks on one machine run in assignment order, so task k's
    # completion is the cumulative time of earlier tasks on its machine.
    order_loads = np.zeros(n_machines)
    flowtime = 0.0
    for k in range(n_tasks):
        m = assignment[k]
        order_loads[m] += times[k]
        flowtime += order_loads[m]
    return Mapping(
        assignment=assignment.copy(),
        machine_loads=loads,
        makespan=float(loads.max()),
        flowtime=float(flowtime),
        heuristic=heuristic,
    )
