"""Text timelines (Gantt-style) for simulation results.

Turning an :class:`~repro.scheduling.OnlineResult` into something a
human can eyeball: one row per machine, time binned into fixed-width
character cells, each busy cell showing the running task's label.  Used
by the examples and handy when debugging policies; pure presentation,
no numerics.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SchedulingError
from .dynamic import OnlineResult

__all__ = ["gantt_text"]


def gantt_text(
    result: OnlineResult,
    *,
    width: int = 72,
    machine_names=None,
    task_labels=None,
) -> str:
    """Render a simulation result as a fixed-width text Gantt chart.

    Parameters
    ----------
    result : OnlineResult
        From :func:`~repro.scheduling.simulate_online` or
        :func:`~repro.scheduling.simulate_batch_mode`.
    width : int
        Character cells spanning [0, makespan].
    machine_names : sequence of str, optional
        Row labels (default ``m1..mM``).
    task_labels : sequence of str, optional
        One character is taken per task (default: digits/letters cycling
        by task index).

    Returns
    -------
    str
        One row per machine plus a time axis.  A cell shows the label
        of the task occupying the majority of that time slice, ``.`` for
        idle time.

    Examples
    --------
    >>> from repro.scheduling import simulate_online
    >>> res = simulate_online([[2.0, 9.0], [9.0, 2.0]], [0.0, 0.0])
    >>> print(gantt_text(res, width=8))
    m1 | 00000000
    m2 | 11111111
    t = 0 .. 2
    """
    if width < 4:
        raise SchedulingError("width must be at least 4 characters")
    n_machines = result.utilization.shape[0]
    if machine_names is None:
        machine_names = [f"m{j + 1}" for j in range(n_machines)]
    machine_names = [str(m) for m in machine_names]
    if len(machine_names) != n_machines:
        raise SchedulingError(
            f"need {n_machines} machine names, got {len(machine_names)}"
        )
    n_tasks = result.assignment.shape[0]
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
    if task_labels is None:
        task_labels = [alphabet[k % len(alphabet)] for k in range(n_tasks)]
    task_labels = [str(t)[0] if str(t) else "?" for t in task_labels]
    if len(task_labels) != n_tasks:
        raise SchedulingError(
            f"need {n_tasks} task labels, got {len(task_labels)}"
        )

    makespan = result.makespan
    if makespan <= 0:  # pragma: no cover - empty schedules are rejected
        raise SchedulingError("empty schedule")
    edges = np.linspace(0.0, makespan, width + 1)
    rows = []
    label_width = max(len(m) for m in machine_names)
    for machine in range(n_machines):
        cells = []
        mask = result.assignment == machine
        starts = result.start_times[mask]
        ends = result.completion_times[mask]
        labels = [task_labels[k] for k in np.nonzero(mask)[0]]
        for c in range(width):
            lo, hi = edges[c], edges[c + 1]
            # Task covering the majority of this slice, if any.
            overlap = np.minimum(ends, hi) - np.maximum(starts, lo)
            if overlap.size and overlap.max() > 0.5 * (hi - lo):
                cells.append(labels[int(np.argmax(overlap))])
            elif overlap.size and overlap.max() > 0:
                cells.append(labels[int(np.argmax(overlap))])
            else:
                cells.append(".")
        rows.append(
            f"{machine_names[machine].ljust(label_width)} | "
            + "".join(cells)
        )
    rows.append(f"t = 0 .. {makespan:g}")
    return "\n".join(rows)
