"""Heterogeneity-aware heuristic selection (paper application [3]).

:func:`compare_heuristics` scores every registered heuristic on one
environment; :func:`selection_study` sweeps a grid of generated
environments and records which heuristic wins in each heterogeneity
regime — the study that motivates measuring MPH/TDH/TMA before picking
a mapper (benchmark E12 regenerates its table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..generate.ensembles import heterogeneity_grid
from ..generate.target_driven import TargetSpec
from .heuristics import HEURISTICS, run_heuristic
from .workload import expand_workload

__all__ = [
    "HeuristicComparison",
    "compare_heuristics",
    "selection_study",
    "recommend_heuristic",
    "recommend_from_measures",
]


@dataclass(frozen=True)
class HeuristicComparison:
    """Makespans of several heuristics on one environment.

    ``makespans`` maps heuristic name → makespan; ``best`` is the
    winning name and ``ratios`` normalizes every makespan by the best
    (1.0 = winner), the presentation used in the Braun et al. study.
    """

    makespans: dict[str, float]
    spec: TargetSpec | None = None

    @property
    def best(self) -> str:
        return min(self.makespans, key=self.makespans.get)

    @property
    def ratios(self) -> dict[str, float]:
        floor = min(self.makespans.values())
        return {name: value / floor for name, value in self.makespans.items()}


def compare_heuristics(
    etc,
    *,
    heuristics: Sequence[str] | None = None,
    counts=None,
    total: int | None = None,
    seed=None,
) -> HeuristicComparison:
    """Run a set of heuristics on one environment and collect makespans.

    Parameters
    ----------
    etc : ETCMatrix, ECSMatrix or array-like
        The environment (task types × machines).
    heuristics : sequence of str, optional
        Registry names; defaults to every registered heuristic except
        the expensive ``ga``.
    counts, total, seed
        Passed to :func:`repro.scheduling.expand_workload`; the same
        expanded workload is fed to every heuristic.
    """
    if heuristics is None:
        heuristics = tuple(name for name in HEURISTICS if name != "ga")
    workload = expand_workload(etc, counts=counts, total=total, seed=seed)
    makespans = {
        name: run_heuristic(name, workload, seed=seed).makespan
        for name in heuristics
    }
    return HeuristicComparison(makespans=makespans)


def selection_study(
    *,
    n_tasks: int = 10,
    n_machines: int = 6,
    instances_per_type: int = 5,
    mph_values: Iterable[float] = (0.3, 0.9),
    tdh_values: Iterable[float] = (0.3, 0.9),
    tma_values: Iterable[float] = (0.0, 0.5),
    heuristics: Sequence[str] | None = None,
    jitter: float = 0.2,
    seed=0,
) -> list[HeuristicComparison]:
    """Sweep generated environments and score heuristics in each regime.

    Returns one :class:`HeuristicComparison` per grid point, each
    carrying the :class:`~repro.generate.TargetSpec` it was generated
    for, so callers can tabulate winner-vs-heterogeneity.

    Notes
    -----
    The qualitative expectation from the literature (and what the E12
    benchmark asserts): load-blind MET collapses when machine
    performance is heterogeneous *and* affinity is low (every task
    chases the one fast machine), while it becomes competitive in
    high-affinity regimes where "each task's best machine" spreads
    across the machine set; Min-min/Sufferage stay near the front
    throughout.
    """
    rng = np.random.default_rng(seed)
    results: list[HeuristicComparison] = []
    for member in heterogeneity_grid(
        n_tasks,
        n_machines,
        mph_values=tuple(mph_values),
        tdh_values=tuple(tdh_values),
        tma_values=tuple(tma_values),
        jitter=jitter,
        seed=seed,
    ):
        counts = np.full(n_tasks, instances_per_type, dtype=np.intp)
        comparison = compare_heuristics(
            member.ecs.to_etc(),
            heuristics=heuristics,
            counts=counts,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        results.append(
            HeuristicComparison(makespans=comparison.makespans, spec=member.spec)
        )
    return results


@dataclass(frozen=True)
class _Measures:
    """The three-measure view the recommendation rule reads."""

    mph: float
    tdh: float
    tma: float


def recommend_heuristic(profile_or_env) -> tuple[str, str]:
    """Rule-based mapper recommendation from the heterogeneity measures.

    Distills the selection_study regularities (and the Braun et al.
    findings they reproduce) into a decision rule:

    * homogeneous machines and tasks → load balancing is the whole
      game: MCT (OLB-like behaviour with ETC awareness);
    * significant affinity → Sufferage (its best/second-best gap is
      precisely an affinity signal);
    * heterogeneous machines without affinity → Min-min (committing
      cheap work first protects the scarce fast machines);
    * very heterogeneous task difficulty → Duplex (Max-min's
      long-task-first complements Min-min when a few giants dominate).

    Returns ``(heuristic_name, reason)``.  The paper's application [3]
    in one call: measure first, then map.

    Examples
    --------
    >>> import numpy as np
    >>> recommend_heuristic(np.ones((4, 4)))[0]
    'mct'
    """
    from ..measures.report import HeterogeneityProfile, characterize

    if isinstance(profile_or_env, HeterogeneityProfile):
        profile = profile_or_env
    else:
        profile = characterize(profile_or_env)
    return recommend_from_measures(profile.mph, profile.tdh, profile.tma)


def recommend_from_measures(
    mph: float, tdh: float, tma: float
) -> tuple[str, str]:
    """The :func:`recommend_heuristic` rule on bare (MPH, TDH, TMA).

    The characterization service answers ``recommend-heuristic``
    requests from already-computed (possibly batched or cached)
    measures, so the decision rule is exposed without requiring a full
    :class:`~repro.measures.HeterogeneityProfile`.

    Examples
    --------
    >>> recommend_from_measures(0.9, 0.9, 0.0)[0]
    'mct'
    >>> recommend_from_measures(0.5, 0.8, 0.6)[0]
    'sufferage'
    """
    profile = _Measures(float(mph), float(tdh), float(tma))
    if profile.tma >= 0.25:
        return (
            "sufferage",
            f"significant task-machine affinity (TMA={profile.tma:.2f}): "
            "the sufferage gap identifies the tasks that must win their "
            "preferred machines",
        )
    if profile.mph >= 0.8 and profile.tdh >= 0.8:
        return (
            "mct",
            f"near-homogeneous environment (MPH={profile.mph:.2f}, "
            f"TDH={profile.tdh:.2f}): immediate load balancing is "
            "sufficient and cheapest",
        )
    if profile.tdh < 0.4:
        return (
            "duplex",
            f"a few dominant task types (TDH={profile.tdh:.2f}): Max-min's "
            "long-task-first placement can beat Min-min, so run both",
        )
    return (
        "min_min",
        f"heterogeneous machines (MPH={profile.mph:.2f}) without strong "
        "affinity: Min-min protects the fast machines",
    )
