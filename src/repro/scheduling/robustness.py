"""Mapping robustness against ETC estimation error (FePIA-style).

The authors' research program pairs heterogeneity characterization with
*robust* resource allocation (paper refs. [7], [11]; the robustness
radius formulation of Ali, Maciejewski, Siegel & Kim).  Given a static
mapping, the system-level performance feature is the makespan; the
perturbation parameters are the actual task execution times, which may
deviate from their ETC estimates.  The **robustness radius** of a
machine is the smallest (ℓ₂) deviation of its tasks' execution times
that pushes the makespan past a tolerance `β`; the **robustness
metric** of the mapping is the smallest radius over machines:

    r_j = (β − L_j) / sqrt(n_j)        (n_j tasks mapped to machine j)
    robustness(mapping, β) = min_j r_j

A mapping that achieves its makespan by loading one machine with many
tasks right at the limit is fragile (small radius) even if its nominal
makespan is good — the trade-off :func:`robustness_comparison`
tabulates for the batch heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_positive_scalar
from ..exceptions import SchedulingError
from .heuristics import HEURISTICS, run_heuristic
from .mapping import Mapping
from .workload import expand_workload

__all__ = [
    "RobustnessReport",
    "robustness_radius",
    "robustness_comparison",
]


@dataclass(frozen=True)
class RobustnessReport:
    """Robustness of one mapping at tolerance ``beta``.

    Attributes
    ----------
    radius : float
        The robustness metric: the smallest per-machine radius.  Larger
        is more robust; 0 means some machine is already at the limit.
    per_machine : numpy.ndarray, shape (M,)
        Individual machine radii (``inf`` for idle machines — they
        cannot violate the constraint).
    critical_machine : int
        The machine attaining the minimum.
    beta : float
        The makespan tolerance the radii are measured against.
    """

    radius: float
    per_machine: np.ndarray
    critical_machine: int
    beta: float

    def __post_init__(self) -> None:
        self.per_machine.setflags(write=False)


def robustness_radius(
    mapping: Mapping,
    *,
    beta: float | None = None,
    slack: float = 1.2,
) -> RobustnessReport:
    """FePIA robustness radius of a static mapping.

    Parameters
    ----------
    mapping : Mapping
        The assignment to analyse (its ``machine_loads`` are the
        nominal feature values).
    beta : float, optional
        Absolute makespan tolerance.  Default: ``slack * makespan``.
    slack : float
        Relative tolerance used when ``beta`` is omitted (1.2 = the
        conventional "120 % of the nominal makespan").

    Examples
    --------
    >>> import numpy as np
    >>> from repro.scheduling import evaluate_mapping
    >>> etc = np.array([[2.0, 9.0], [2.0, 9.0], [9.0, 4.0]])
    >>> mapping = evaluate_mapping(etc, [0, 0, 1])
    >>> report = robustness_radius(mapping, beta=6.0)
    >>> round(report.radius, 4)                 # machine 0: (6-4)/sqrt(2)
    1.4142
    >>> report.critical_machine
    0
    """
    if beta is None:
        slack = check_positive_scalar(slack, name="slack")
        if slack <= 1.0:
            raise SchedulingError("slack must exceed 1 (beta > makespan)")
        beta = slack * mapping.makespan
    beta = check_positive_scalar(beta, name="beta")
    if beta < mapping.makespan:
        raise SchedulingError(
            f"beta ({beta:g}) must be >= the nominal makespan "
            f"({mapping.makespan:g}); the constraint is already violated"
        )
    counts = np.bincount(
        mapping.assignment, minlength=mapping.machine_loads.shape[0]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        radii = np.where(
            counts > 0,
            (beta - mapping.machine_loads) / np.sqrt(np.maximum(counts, 1)),
            np.inf,
        )
    critical = int(np.argmin(radii))
    return RobustnessReport(
        radius=float(radii[critical]),
        per_machine=radii,
        critical_machine=critical,
        beta=float(beta),
    )


def robustness_comparison(
    etc,
    *,
    heuristics: Sequence[str] | None = None,
    slack: float = 1.2,
    counts=None,
    total: int | None = None,
    seed=None,
) -> dict[str, tuple[float, float]]:
    """Makespan vs robustness trade-off across heuristics.

    Runs each heuristic on the same expanded workload and reports
    ``{name: (makespan, robustness_radius)}`` where every radius is
    measured against a *common* tolerance ``beta = slack * best
    makespan`` so the numbers are comparable (heuristics whose nominal
    makespan already exceeds the common beta get radius 0 — they are
    fragile by construction).
    """
    if heuristics is None:
        heuristics = tuple(name for name in HEURISTICS if name != "ga")
    workload = expand_workload(etc, counts=counts, total=total, seed=seed)
    mappings = {
        name: run_heuristic(name, workload, seed=seed)
        for name in heuristics
    }
    best = min(m.makespan for m in mappings.values())
    beta = slack * best
    out = {}
    for name, mapping in mappings.items():
        if mapping.makespan > beta:
            out[name] = (mapping.makespan, 0.0)
        else:
            report = robustness_radius(mapping, beta=beta)
            out[name] = (mapping.makespan, report.radius)
    return out
