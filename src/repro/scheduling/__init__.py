"""Static mapping heuristics for HC environments.

The paper's introduction motivates the heterogeneity measures with the
application of "selecting appropriate heuristics to use in an HC
environment based on its heterogeneity" (reference [3]).  This package
supplies that substrate: the classic batch-mode mapping heuristics of
Braun et al. (paper reference [6]) operating on ETC matrices —

* immediate heuristics: :func:`olb`, :func:`met`, :func:`mct`,
  :func:`random_mapping`,
* batch heuristics: :func:`min_min`, :func:`max_min`, :func:`sufferage`,
  :func:`duplex`,
* a light genetic-algorithm refiner :func:`ga` seeded with Min-min,

plus :class:`Mapping` (assignment + makespan/flowtime accounting),
workload expansion from task types to task instances, and the
heterogeneity-aware heuristic-selection study used by benchmark E12.
"""

from .mapping import Mapping, evaluate_mapping
from .workload import Workload, expand_workload
from .heuristics import (
    HEURISTICS,
    olb,
    met,
    mct,
    min_min,
    max_min,
    sufferage,
    duplex,
    ga,
    random_mapping,
    run_heuristic,
)
from .selection import (
    HeuristicComparison,
    compare_heuristics,
    recommend_from_measures,
    recommend_heuristic,
    selection_study,
)
from .bounds import (
    makespan_lower_bound,
    makespan_upper_bound,
    optimal_makespan,
)
from .timeline import gantt_text
from .robustness import (
    RobustnessReport,
    robustness_comparison,
    robustness_radius,
)
from .dynamic import (
    BATCH_SELECT_RULES,
    ONLINE_POLICIES,
    OnlineResult,
    poisson_arrivals,
    simulate_batch_mode,
    simulate_online,
)

__all__ = [
    "Mapping",
    "evaluate_mapping",
    "Workload",
    "expand_workload",
    "HEURISTICS",
    "olb",
    "met",
    "mct",
    "min_min",
    "max_min",
    "sufferage",
    "duplex",
    "ga",
    "random_mapping",
    "run_heuristic",
    "HeuristicComparison",
    "compare_heuristics",
    "recommend_heuristic",
    "recommend_from_measures",
    "selection_study",
    "ONLINE_POLICIES",
    "BATCH_SELECT_RULES",
    "OnlineResult",
    "poisson_arrivals",
    "simulate_online",
    "simulate_batch_mode",
    "makespan_lower_bound",
    "makespan_upper_bound",
    "optimal_makespan",
    "RobustnessReport",
    "robustness_radius",
    "robustness_comparison",
    "gantt_text",
]
