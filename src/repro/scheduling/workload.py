"""Workloads: from task *types* to task *instances*.

The paper distinguishes a task type (an executable program) from a task
(one execution of it).  Mapping heuristics operate on task instances;
:func:`expand_workload` turns a T × M ETC matrix plus per-type instance
counts — or the type weighting factors interpreted as execution
frequencies, one of the interpretations eq. 4 mentions — into the
N × M per-instance ETC array the heuristics consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.environment import ECSMatrix, ETCMatrix
from ..exceptions import SchedulingError
from ..generate._rng import resolve_rng

__all__ = ["Workload", "expand_workload"]


@dataclass(frozen=True)
class Workload:
    """A batch of task instances over a machine set.

    Attributes
    ----------
    etc_instances : numpy.ndarray, shape (N, M)
        Per-instance execution-time rows (``inf`` = incompatible).
    type_of : numpy.ndarray of int, shape (N,)
        Task-type index of each instance.
    machine_names : tuple of str
    """

    etc_instances: np.ndarray
    type_of: np.ndarray
    machine_names: tuple[str, ...]

    def __post_init__(self) -> None:
        self.etc_instances.setflags(write=False)
        self.type_of.setflags(write=False)

    @property
    def n_instances(self) -> int:
        return self.etc_instances.shape[0]

    @property
    def n_machines(self) -> int:
        return self.etc_instances.shape[1]


def expand_workload(
    etc,
    counts=None,
    *,
    total: int | None = None,
    shuffle: bool = True,
    seed=None,
) -> Workload:
    """Expand a task-type ETC matrix into a batch of task instances.

    Parameters
    ----------
    etc : ETCMatrix, ECSMatrix or array-like
        The environment (arrays are interpreted as ETC).
    counts : array-like of int, optional
        Instances per task type.  Default: when ``total`` is given,
        instances are drawn with probabilities proportional to the
        matrix's task weights (eq. 4's frequency interpretation);
        otherwise one instance per type.
    total : int, optional
        Total batch size for the weighted-draw default.
    shuffle : bool
        Shuffle instance order (heuristics like OLB/MCT are
        order-sensitive; the literature maps batches in arrival order).
    seed : int, Generator or None

    Examples
    --------
    >>> w = expand_workload([[1.0, 2.0], [3.0, 1.0]], counts=[2, 3])
    >>> w.n_instances, w.n_machines
    (5, 2)
    """
    if isinstance(etc, ECSMatrix):
        etc = etc.to_etc()
    if isinstance(etc, ETCMatrix):
        matrix = etc
    else:
        matrix = ETCMatrix(etc)
    rng = resolve_rng(seed)
    n_types = matrix.n_tasks
    if counts is None:
        if total is None:
            counts = np.ones(n_types, dtype=np.intp)
        else:
            if total < 1:
                raise SchedulingError("total must be >= 1")
            probs = matrix.task_weights / matrix.task_weights.sum()
            counts = np.bincount(
                rng.choice(n_types, size=int(total), p=probs),
                minlength=n_types,
            )
    counts = np.asarray(counts, dtype=np.intp).reshape(-1)
    if counts.shape[0] != n_types:
        raise SchedulingError(
            f"counts must have one entry per task type ({n_types}), got "
            f"{counts.shape[0]}"
        )
    if (counts < 0).any() or counts.sum() == 0:
        raise SchedulingError("counts must be non-negative and not all zero")
    type_of = np.repeat(np.arange(n_types, dtype=np.intp), counts)
    if shuffle:
        rng.shuffle(type_of)
    return Workload(
        etc_instances=matrix.values[type_of, :].copy(),
        type_of=type_of,
        machine_names=matrix.machine_names,
    )
