"""Dynamic (online) mapping simulation.

The batch heuristics of :mod:`repro.scheduling.heuristics` assume all
tasks are known up front.  Real HC systems map tasks *as they arrive*;
this module provides the standard event-driven model from the dynamic
matching-and-scheduling literature the paper builds on (its refs. [5],
[18]): tasks arrive over time, each is assigned to a machine the moment
it arrives, and machines execute their queues in FIFO order.

Immediate-mode policies:

* ``"mct"`` — minimum completion time given current queues,
* ``"met"`` — minimum execution time (queue-blind),
* ``"olb"`` — earliest-ready machine (ETC-blind),
* ``"kpb"`` — k-percent best: restrict to the task's best ``k`` fraction
  of machines by ETC, then pick minimum completion time among them
  (Maheswaran et al.'s compromise between MET and MCT),
* ``"auto"`` — heterogeneity-aware: measures the environment's TMA once
  and picks KPB's ``k`` from it (high affinity → each task has a small
  set of good machines worth insisting on; low affinity → fall back to
  plain MCT).  This operationalizes the paper's "select heuristics by
  heterogeneity" application in the online setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_scalar, check_probability
from ..exceptions import SchedulingError
from ..generate._rng import resolve_rng
from ..obs import span as _obs_span
from .workload import Workload

__all__ = [
    "OnlineResult",
    "poisson_arrivals",
    "simulate_online",
    "simulate_batch_mode",
    "ONLINE_POLICIES",
    "BATCH_SELECT_RULES",
]

ONLINE_POLICIES = ("mct", "met", "olb", "kpb", "auto")
BATCH_SELECT_RULES = ("min", "max", "sufferage")


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of one online-mapping simulation.

    Attributes
    ----------
    assignment : numpy.ndarray of int, shape (N,)
        Machine chosen for each task, in arrival order.
    start_times, completion_times : numpy.ndarray, shape (N,)
        FIFO execution windows on the chosen machines.
    makespan : float
        Latest completion.
    mean_response : float
        Mean of (completion - arrival): the user-visible latency.
    utilization : numpy.ndarray, shape (M,)
        Busy time of each machine divided by the makespan.
    policy : str
        Policy name (``"auto"`` resolves to ``auto[k=...]``).
    """

    assignment: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    makespan: float
    mean_response: float
    utilization: np.ndarray
    policy: str

    def __post_init__(self) -> None:
        self.assignment.setflags(write=False)
        self.start_times.setflags(write=False)
        self.completion_times.setflags(write=False)
        self.utilization.setflags(write=False)


def poisson_arrivals(count: int, rate: float, *, seed=None) -> np.ndarray:
    """Arrival times of a Poisson process with the given rate (tasks per
    unit time), starting at the first inter-arrival gap.

    Examples
    --------
    >>> times = poisson_arrivals(100, rate=2.0, seed=0)
    >>> times.shape, bool((np.diff(times) >= 0).all())
    ((100,), True)
    """
    if count < 1:
        raise SchedulingError("count must be >= 1")
    rate = check_positive_scalar(rate, name="rate")
    rng = resolve_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=count))


def _kpb_candidates(etc_row: np.ndarray, k: float) -> np.ndarray:
    """Indices of the best ``ceil(k * compatible)`` machines by ETC."""
    compatible = np.nonzero(np.isfinite(etc_row))[0]
    keep = max(1, int(np.ceil(k * compatible.size)))
    order = compatible[np.argsort(etc_row[compatible], kind="stable")]
    return order[:keep]


def simulate_online(
    workload,
    arrival_times,
    *,
    policy: str = "mct",
    k: float = 0.25,
    seed=None,
) -> OnlineResult:
    """Run the event-driven online mapping simulation.

    Parameters
    ----------
    workload : Workload or array-like, shape (N, M)
        Per-instance ETC rows in arrival order (``inf`` marks
        incompatible machines).
    arrival_times : array-like, shape (N,)
        Non-decreasing arrival instants (e.g. from
        :func:`poisson_arrivals`).
    policy : {"mct", "met", "olb", "kpb", "auto"}
        Immediate-mode assignment rule (see module docstring).
    k : float
        KPB's best-fraction (0 < k <= 1); ignored by other policies.
    seed : int, Generator or None
        Used only to break OLB ties randomly like the literature does.

    Examples
    --------
    >>> etc = [[1.0, 5.0], [5.0, 1.0], [1.0, 5.0], [5.0, 1.0]]
    >>> res = simulate_online(etc, [0.0, 0.0, 0.0, 0.0], policy="mct")
    >>> res.makespan
    2.0
    """
    if isinstance(workload, Workload):
        etc = workload.etc_instances
    else:
        etc = np.asarray(workload, dtype=np.float64)
    if etc.ndim != 2 or etc.size == 0:
        raise SchedulingError("workload must be a non-empty (N, M) array")
    if np.isinf(etc).all(axis=1).any():
        raise SchedulingError(
            "some task instance is incompatible with every machine"
        )
    arrivals = np.asarray(arrival_times, dtype=np.float64).reshape(-1)
    if arrivals.shape[0] != etc.shape[0]:
        raise SchedulingError(
            f"need one arrival time per task ({etc.shape[0]}), got "
            f"{arrivals.shape[0]}"
        )
    if (np.diff(arrivals) < 0).any():
        raise SchedulingError("arrival times must be non-decreasing")
    if (arrivals < 0).any():
        raise SchedulingError("arrival times must be non-negative")
    k = check_probability(k, name="k")
    if policy not in ONLINE_POLICIES:
        raise SchedulingError(
            f"unknown policy {policy!r}; available: {ONLINE_POLICIES}"
        )

    label = policy
    if policy == "auto":
        # Measure the environment once (its distinct task-type rows)
        # and translate affinity into KPB's selectivity: high TMA means
        # a task's few best machines matter, so keep the candidate set
        # small; low TMA degenerates to plain MCT (k = 1).
        from ..measures.affinity import tma as _tma

        finite = np.where(np.isfinite(etc), etc, 0.0)
        with np.errstate(divide="ignore"):
            ecs = np.where(finite > 0, 1.0 / np.where(finite > 0, finite, 1.0), 0.0)
        unique_rows = np.unique(ecs, axis=0)
        affinity = (
            _tma(unique_rows, method="column")
            if unique_rows.shape[0] > 1
            else 0.0
        )
        k = float(np.clip(1.0 - affinity, 0.25, 1.0))
        policy = "mct" if k >= 1.0 else "kpb"
        label = f"auto[k={k:.2f}]"

    rng = resolve_rng(seed)
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    busy = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.intp)
    starts = np.empty(n_tasks)
    completions = np.empty(n_tasks)

    with _obs_span(
        "scheduling.online", policy=label, tasks=n_tasks, machines=n_machines
    ) as sp:
        for i in range(n_tasks):
            row = etc[i]
            compatible = np.isfinite(row)
            if policy == "met":
                choice = int(np.argmin(np.where(compatible, row, np.inf)))
            elif policy == "olb":
                candidates = np.where(compatible, ready, np.inf)
                best = np.nonzero(candidates == candidates.min())[0]
                choice = int(best[0] if best.size == 1 else rng.choice(best))
            elif policy == "kpb":
                cands = _kpb_candidates(row, k)
                finish = np.maximum(ready[cands], arrivals[i]) + row[cands]
                choice = int(cands[np.argmin(finish)])
            else:  # mct
                finish = np.where(
                    compatible, np.maximum(ready, arrivals[i]) + row, np.inf
                )
                choice = int(np.argmin(finish))
            start = max(ready[choice], arrivals[i])
            end = start + row[choice]
            ready[choice] = end
            busy[choice] += row[choice]
            assignment[i] = choice
            starts[i] = start
            completions[i] = end

        makespan = float(completions.max())
        sp.note(makespan=makespan)
    return OnlineResult(
        assignment=assignment,
        start_times=starts,
        completion_times=completions,
        makespan=makespan,
        mean_response=float(np.mean(completions - arrivals)),
        utilization=busy / makespan if makespan > 0 else busy,
        policy=label,
    )


def simulate_batch_mode(
    workload,
    arrival_times,
    *,
    interval: float,
    rule: str = "min",
) -> OnlineResult:
    """Batch-mode dynamic mapping with fixed regeneration intervals.

    The other classic dynamic strategy (Maheswaran et al.): instead of
    committing each task the instant it arrives, arrivals accumulate
    and, every ``interval`` time units, the whole pending batch is
    mapped together with a Min-min-family heuristic seeded with the
    machines' current ready times.  Batching lets the mapper see
    same-epoch tasks jointly — the reason batch heuristics beat
    immediate ones under bursty load — at the cost of queueing delay
    for early arrivals in each epoch.

    Parameters
    ----------
    workload : Workload or array-like, shape (N, M)
        Per-instance ETC rows in arrival order.
    arrival_times : array-like, shape (N,)
        Non-decreasing arrival instants.
    interval : float
        Regeneration period; every multiple of it, pending tasks are
        mapped (a final regeneration after the last arrival drains the
        queue).
    rule : {"min", "max", "sufferage"}
        Which Braun-family batch selector maps each epoch's batch.

    Examples
    --------
    >>> import numpy as np
    >>> etc = [[1.0, 5.0], [5.0, 1.0], [1.0, 5.0], [5.0, 1.0]]
    >>> res = simulate_batch_mode(etc, [0.0, 0.1, 0.2, 0.3], interval=1.0)
    >>> res.policy
    'batch[min, interval=1]'
    >>> res.makespan
    3.0
    """
    from .heuristics import _batch_kernel

    if isinstance(workload, Workload):
        etc = workload.etc_instances
    else:
        etc = np.asarray(workload, dtype=np.float64)
    if etc.ndim != 2 or etc.size == 0:
        raise SchedulingError("workload must be a non-empty (N, M) array")
    if np.isinf(etc).all(axis=1).any():
        raise SchedulingError(
            "some task instance is incompatible with every machine"
        )
    arrivals = np.asarray(arrival_times, dtype=np.float64).reshape(-1)
    if arrivals.shape[0] != etc.shape[0]:
        raise SchedulingError(
            f"need one arrival time per task ({etc.shape[0]}), got "
            f"{arrivals.shape[0]}"
        )
    if (np.diff(arrivals) < 0).any() or (arrivals < 0).any():
        raise SchedulingError(
            "arrival times must be non-negative and non-decreasing"
        )
    interval = check_positive_scalar(interval, name="interval")
    if rule not in BATCH_SELECT_RULES:
        raise SchedulingError(
            f"unknown rule {rule!r}; available: {BATCH_SELECT_RULES}"
        )

    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    busy = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.intp)
    starts = np.empty(n_tasks)
    completions = np.empty(n_tasks)

    # Epoch boundaries: the first multiple of `interval` at/after each
    # arrival (tasks arriving exactly on a boundary map at it).
    epochs = np.ceil(arrivals / interval) * interval
    epochs = np.where(np.isclose(epochs, arrivals), arrivals, epochs)
    mapped = 0
    for boundary in np.unique(epochs):
        batch = np.nonzero(epochs == boundary)[0]
        sub_etc = etc[batch]
        # Machines cannot start epoch work before the boundary.
        seed_loads = np.maximum(ready, boundary)
        local = _batch_kernel(sub_etc, rule, initial_loads=seed_loads)
        # Replay the batch assignment in Min-min commit order is not
        # tracked; FIFO-replay within the batch per machine keeps the
        # completion bookkeeping simple and matches the kernel's loads.
        for offset, task in enumerate(batch):
            machine = int(local[offset])
            start = max(ready[machine], boundary)
            end = start + sub_etc[offset, machine]
            ready[machine] = end
            busy[machine] += sub_etc[offset, machine]
            assignment[task] = machine
            starts[task] = start
            completions[task] = end
        mapped += batch.size
    assert mapped == n_tasks

    makespan = float(completions.max())
    interval_label = (
        f"{interval:g}" if interval != int(interval) else f"{int(interval)}"
    )
    return OnlineResult(
        assignment=assignment,
        start_times=starts,
        completion_times=completions,
        makespan=makespan,
        mean_response=float(np.mean(completions - arrivals)),
        utilization=busy / makespan if makespan > 0 else busy,
        policy=f"batch[{rule}, interval={interval_label}]",
    )
