"""Fault-tolerant ensemble characterization (quarantine, repair, chaos).

A production characterization service meets ensemble members that are
corrupt (NaN/inf profiling data), structurally hopeless (Section-VI
zero patterns), numerically stubborn (non-convergent Sinkhorn) or
simply slow (straggling workers).  This package makes every such
failure a *per-member* event instead of a whole-call crash:

* :mod:`~repro.robust.taxonomy` — the stable fault vocabulary
  (:data:`FAULT_CATEGORIES`), per-member :class:`MemberFault` records
  and the :class:`QuarantineReport` returned by the robust policies;
* :mod:`~repro.robust.budget` — wall-clock deadlines, per-member
  worker timeouts and repair-attempt budgets (:class:`Budget`);
* :mod:`~repro.robust.repair` — the retry-with-repair ladder
  (:func:`repair_member`, :func:`repaired_matrix`);
* :mod:`~repro.robust.chaos` — seedable fault injection
  (:class:`FaultPlan`) for drills and the chaos test suite;
* :mod:`~repro.robust.ensemble` — the pipeline itself
  (:func:`characterize_ensemble_robust`,
  :func:`standardize_batched_robust`), normally reached through the
  ``policy=`` knob of :func:`repro.batch.characterize_ensemble` /
  :func:`repro.batch.standardize_batched`.
"""

from .budget import DEFAULT_BUDGET, Budget, Deadline
from .chaos import FAULT_KINDS, KIND_CATEGORY, FaultPlan, FaultSpec
from .ensemble import (
    RobustBatchNormalizationResult,
    RobustEnsembleCharacterization,
    characterize_ensemble_robust,
    standardize_batched_robust,
)
from .repair import MemberRecovery, repair_member, repaired_matrix
from .taxonomy import (
    FAULT_CATEGORIES,
    UNREPAIRABLE_CATEGORIES,
    MemberFault,
    QuarantineReport,
    classify_exception,
    classify_matrix,
)

__all__ = [
    "Budget",
    "Deadline",
    "DEFAULT_BUDGET",
    "FAULT_CATEGORIES",
    "FAULT_KINDS",
    "KIND_CATEGORY",
    "UNREPAIRABLE_CATEGORIES",
    "FaultPlan",
    "FaultSpec",
    "MemberFault",
    "MemberRecovery",
    "QuarantineReport",
    "RobustBatchNormalizationResult",
    "RobustEnsembleCharacterization",
    "characterize_ensemble_robust",
    "classify_exception",
    "classify_matrix",
    "repair_member",
    "repaired_matrix",
    "standardize_batched_robust",
]
