"""The fault-tolerant ensemble pipeline (quarantine / repair policies).

:func:`characterize_ensemble_robust` is the robust sibling of
:func:`repro.batch.characterize_ensemble` (which delegates here when
``policy != "raise"``).  The contract:

* **healthy members are untouched** — every member that carries no
  fault completes with results *bit-identical* to a fault-free run,
  because the batched kernels are per-slice independent and the scalar
  path characterizes each member in isolation;
* **faulty members are isolated** — pre-screened data corruption
  (NaN/inf/negative entries, empty lines, Section-VI zero patterns
  under ``tma_fallback="raise"``), Sinkhorn non-convergence, worker
  crashes and worker timeouts each quarantine only the member that
  exhibits them, NaN-masking its result row and recording a
  :class:`~repro.robust.MemberFault` with a stable category slug;
* **repair is explicit** — ``policy="repair"`` additionally walks the
  :mod:`repro.robust.repair` ladder for every repairable fault, and
  repaired members carry their repair description in the report.

Wall-clock budgets (:class:`~repro.robust.Budget`) bound every failure
mode: the batched Sinkhorn stops at the run deadline, stragglers are
abandoned at ``member_timeout_s``, and the repair ladder stops
escalating when the deadline is spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._parallel import WorkerFailure, parallel_map, resolve_n_jobs
from ..batch._stack import as_float_stack
from ..batch.ensemble import (
    EnsembleCharacterization,
    _characterize_columns,
    _characterize_stack_batched,
)
from ..batch.sinkhorn import BatchNormalizationResult, standardize_batched
from ..exceptions import (
    MatrixShapeError,
    MatrixValueError,
    ReproError,
    WeightError,
)
from ..normalize.standard_form import DEFAULT_TOL, _coerce_ecs, standardize
from ..obs import current_recorder, metrics as _metrics, traced
from .budget import DEFAULT_BUDGET, Budget
from .chaos import FaultPlan
from .repair import repair_member, repaired_matrix
from .taxonomy import (
    MemberFault,
    QuarantineReport,
    classify_exception,
    classify_matrix,
)

__all__ = [
    "RobustEnsembleCharacterization",
    "RobustBatchNormalizationResult",
    "characterize_ensemble_robust",
    "standardize_batched_robust",
]


@dataclass(frozen=True)
class RobustEnsembleCharacterization(EnsembleCharacterization):
    """An ensemble characterization plus its quarantine report.

    Quarantined members have NaN measures, ``iterations == -1`` and
    ``converged == False``; repaired members carry their recovered
    measures and show up in ``report.repaired``.
    """

    report: QuarantineReport

    @property
    def healthy_mask(self) -> np.ndarray:
        """Boolean mask of members with a usable result row (healthy or
        repaired)."""
        mask = np.ones(len(self), dtype=bool)
        for index in self.report.quarantined:
            mask[index] = False
        return mask

    def member_payload(self, index: int) -> dict:
        """JSON-safe serving row for member ``index``.

        Healthy members get their measure columns; repaired members
        additionally carry their fault record (``repaired=True``);
        quarantined members get *only* the fault record — the
        characterization service turns that into a structured error
        response without touching the NaN-masked measure row.
        """
        fault = None
        try:
            fault = self.report.fault(index)
        except KeyError:
            pass
        if fault is not None and not fault.repaired:
            return {"fault": fault.to_payload()}
        payload = {
            "mph": float(self.mph[index]),
            "tdh": float(self.tdh[index]),
            "tma": float(self.tma[index]),
            "iterations": int(self.iterations[index]),
            "converged": bool(self.converged[index]),
            "batched": bool(self.batched[index]),
        }
        if fault is not None:
            payload["fault"] = fault.to_payload()
        return payload

    def summary(self) -> str:
        """Digest over *usable* rows (quarantined NaNs excluded)."""
        usable = self.measures[self.healthy_mask]
        shape = (
            f"{self.n_tasks}x{self.n_machines}"
            if self.n_tasks is not None
            else "ragged"
        )
        if usable.shape[0] == 0:
            stats = "no usable members"
        else:
            mean, std = usable.mean(axis=0), usable.std(axis=0)
            stats = (
                f"MPH {mean[0]:.3f}±{std[0]:.3f}  "
                f"TDH {mean[1]:.3f}±{std[1]:.3f}  "
                f"TMA {mean[2]:.3f}±{std[2]:.3f}"
            )
        return (
            f"{len(self)} environments ({shape}): {stats}  "
            f"[{int(self.batched.sum())} batched, "
            f"{len(self.report.quarantined)} quarantined, "
            f"{len(self.report.repaired)} repaired]"
        )


@dataclass(frozen=True)
class RobustBatchNormalizationResult(BatchNormalizationResult):
    """A batched normalization result plus its quarantine report.

    Quarantined slices have NaN ``matrix``/scale rows; non-convergent
    slices keep their best partial iterate (graceful degradation) but
    are still recorded as faults.
    """

    report: QuarantineReport | None = None


def _robust_worker(args: tuple) -> tuple:
    """Module-level worker (picklable): one member's scalar columns,
    optionally delayed by an injected chaos stall."""
    matrix, tol, tma_fallback, backend, precision, stall_s = args
    if stall_s > 0:
        time.sleep(stall_s)
    return _characterize_columns((matrix, tol, tma_fallback, backend, precision))


def _lenient_member(env):
    """Best-effort member coercion: the strict path first, a raw float
    view when validation rejects the data (the pre-screen will name the
    corruption), ``None`` when it isn't array-like at all."""
    try:
        return _coerce_ecs(env)
    # Raw TypeError/ValueError covers data numpy cannot even coerce
    # (e.g. a string member) — validation never gets to wrap those.
    except (ReproError, TypeError, ValueError):
        from ..core.environment import ECSMatrix, ETCMatrix

        base = env
        if isinstance(base, ETCMatrix):
            try:
                base = base.to_ecs()
            except ReproError:
                pass
        if isinstance(base, (ECSMatrix, ETCMatrix)):
            base = base.values
        try:
            return np.asarray(base, dtype=np.float64)
        except (TypeError, ValueError):
            return None


def _coerce_input_lenient(
    environments, task_weights, machine_weights
) -> tuple[np.ndarray | None, list]:
    """The robust twin of ``repro.batch.ensemble._coerce_input``.

    Same shapes and weight rules, but *member data* is never rejected
    here — corrupt members flow through so the pre-screen can
    quarantine them individually.  Returns ``(stack, members)``; the
    stack is None for ragged (or partly non-array) input, and
    ``members[i]`` is always what the pipeline should screen for
    member ``i``.
    """
    if isinstance(environments, np.ndarray):
        if environments.ndim != 3:
            raise MatrixShapeError(
                "array input must be a 3-D (N, T, M) stack, got ndim="
                f"{environments.ndim} (shape {environments.shape}); wrap "
                "a single matrix as matrix[None, :, :] or pass a list"
            )
        stack = as_float_stack(environments, allow_nan=True)
    else:
        from ..core.environment import ECSMatrix, ETCMatrix

        env_list = list(environments)
        if not env_list:
            raise MatrixShapeError(
                "cannot characterize an empty environment sequence"
            )
        if any(
            isinstance(env, (ECSMatrix, ETCMatrix)) for env in env_list
        ) and (task_weights is not None or machine_weights is not None):
            raise WeightError(
                "explicit task_weights/machine_weights require raw-array "
                "environments (matrix wrappers carry their own weights)"
            )
        members = [_lenient_member(env) for env in env_list]
        stackable = all(
            isinstance(m, np.ndarray) and m.ndim == 2 for m in members
        ) and len({m.shape for m in members}) == 1
        if not stackable:
            # Ragged / malformed input: scalar path, explicit weights
            # cannot apply across differing shapes (same rule as the
            # plain pipeline).
            return None, members
        stack = np.ascontiguousarray(np.stack(members), dtype=np.float64)

    if task_weights is not None or machine_weights is not None:
        from .._validation import check_weights

        w_t = check_weights(task_weights, stack.shape[1], name="task_weights")
        w_m = check_weights(
            machine_weights, stack.shape[2], name="machine_weights"
        )
        stack = w_t[None, :, None] * w_m[None, None, :] * stack
    return stack, [stack[i] for i in range(stack.shape[0])]


def _check_policy(policy: str) -> None:
    if policy not in ("quarantine", "repair"):
        raise MatrixValueError(
            f"robust policy must be 'quarantine' or 'repair', got "
            f"{policy!r}"
        )


def _record_counters(rec, report: QuarantineReport) -> None:
    """Surface quarantine/repair activity in the ambient obs recorder
    and the process-wide metrics registry (outcomes by taxonomy slug)."""
    _metrics.count_member_outcomes(report)
    if rec is None:
        return
    rec.counter("robust.quarantined", len(report.quarantined))
    rec.counter("robust.repaired", len(report.repaired))
    rec.counter("robust.retries", report.attempts)
    for category, indices in report.by_category().items():
        rec.counter(f"robust.fault.{category}", len(indices))


@traced(name="robust.characterize_ensemble")
def characterize_ensemble_robust(
    environments,
    *,
    task_weights=None,
    machine_weights=None,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    tma_fallback: str = "limit",
    batched: bool = True,
    n_jobs: int | None = None,
    policy: str = "quarantine",
    budget: Budget | None = None,
    fault_plan: FaultPlan | None = None,
    backend=None,
    precision: str | None = None,
) -> RobustEnsembleCharacterization:
    """Characterize an ensemble, isolating faulty members.

    Parameters match :func:`repro.batch.characterize_ensemble` plus the
    robust knobs (``policy``, ``budget``, ``fault_plan`` — see the
    module docstring).  Healthy members' results are bit-identical to a
    fault-free run of the same ensemble.  ``backend``/``precision``
    select the kernel backend exactly as in the plain pipeline; the
    repair ladder itself always re-runs on the default backend (a
    repair attempt is already a fallback, so it uses the reference
    kernels).

    Examples
    --------
    >>> import numpy as np
    >>> stack = np.ones((3, 2, 2))
    >>> stack[1, 0, 0] = np.nan
    >>> result = characterize_ensemble_robust(stack, policy="quarantine")
    >>> result.report.quarantined, result.report.categories()
    ((1,), {1: 'nan'})
    >>> bool(np.isnan(result.mph[1])), float(result.mph[0])
    (True, 1.0)
    """
    _check_policy(policy)
    if tma_fallback not in ("limit", "column", "raise"):
        raise MatrixValueError(
            f"tma_fallback must be 'limit', 'column' or 'raise', got "
            f"{tma_fallback!r}"
        )
    budget = DEFAULT_BUDGET if budget is None else budget
    deadline = budget.start()

    stack, members = _coerce_input_lenient(
        environments, task_weights, machine_weights
    )
    if fault_plan is not None:
        for spec in fault_plan.faults:
            if spec.member >= len(members):
                raise MatrixValueError(
                    f"fault targets member {spec.member} but the "
                    f"ensemble has only {len(members)} members"
                )
        if stack is not None:
            stack = fault_plan.apply(stack)
            members = [stack[i] for i in range(stack.shape[0])]
        else:
            members = [
                fault_plan.apply_member(i, m)
                if isinstance(m, np.ndarray) and m.ndim == 2
                else m
                for i, m in enumerate(members)
            ]
    if stack is not None:
        n_tasks, n_machines = int(stack.shape[1]), int(stack.shape[2])
    else:
        n_tasks = n_machines = None
    n = len(members)
    stalled = set(fault_plan.stalled) if fault_plan is not None else set()

    # Pre-screen: structural and value corruption quarantines before
    # any kernel runs, so one bad member cannot poison a batched pass.
    faults: dict[int, tuple[str, str]] = {}
    for i, member in enumerate(members):
        verdict = classify_matrix(member, tma_fallback=tma_fallback)
        if verdict is not None:
            faults[i] = verdict

    mph = np.full(n, np.nan)
    tdh = np.full(n, np.nan)
    tma = np.full(n, np.nan)
    iterations = np.full(n, -1, dtype=np.int64)
    converged = np.zeros(n, dtype=bool)
    batched_mask = np.zeros(n, dtype=bool)

    healthy = [i for i in range(n) if i not in faults]
    batch_idx: list[int] = []
    if stack is not None and batched:
        # Stalled members are healthy data but must visit the worker
        # path so their injected straggle is actually exercised.
        batch_idx = [
            i
            for i in healthy
            if i not in stalled and bool((members[i] > 0).all())
        ]
    in_batch = set(batch_idx)
    scalar_idx = [i for i in healthy if i not in in_batch]

    rec = current_recorder()
    if rec is not None:
        rec.counter("ensemble.slices", n)
        rec.counter("ensemble.batched_slices", len(batch_idx))
        rec.counter("ensemble.fallback_slices", len(scalar_idx))

    if batch_idx:
        sub = stack[np.asarray(batch_idx)]
        b_mph, b_tdh, b_tma, b_iter, b_conv = _characterize_stack_batched(
            sub,
            tol=tol,
            max_iterations=max_iterations,
            deadline_s=deadline.remaining(),
            backend=backend,
            precision=precision,
        )
        for pos, i in enumerate(batch_idx):
            if b_conv[pos]:
                mph[i], tdh[i], tma[i] = b_mph[pos], b_tdh[pos], b_tma[pos]
                iterations[i] = b_iter[pos]
                converged[i] = True
                batched_mask[i] = True
            else:
                detail = (
                    f"standard form missed tol={tol:g} after "
                    f"{int(b_iter[pos])} iterations"
                )
                if deadline.expired():
                    detail += (
                        f" (deadline_s={budget.deadline_s:g} expired)"
                    )
                faults[i] = ("non-convergent", detail)

    if scalar_idx:
        jobs = resolve_n_jobs(n_jobs)
        timeout_s = budget.member_timeout_s
        if timeout_s is not None and jobs == 1:
            # An in-process worker cannot be preempted; a timeout
            # implies a pool.
            jobs = 2
        items = [
            (
                members[i],
                tol,
                tma_fallback,
                backend,
                precision,
                fault_plan.stall_seconds(i) if fault_plan is not None else 0.0,
            )
            for i in scalar_idx
        ]
        results = parallel_map(
            _robust_worker,
            items,
            n_jobs=jobs,
            timeout_s=timeout_s,
            return_failures=True,
        )
        for i, result in zip(scalar_idx, results):
            if isinstance(result, WorkerFailure):
                category = classify_exception(result.error)
                faults[i] = (category, str(result.error))
            else:
                mph[i], tdh[i], tma[i] = result[0], result[1], result[2]
                iterations[i] = result[3]
                converged[i] = result[4]

    records: list[MemberFault] = []
    for i in sorted(faults):
        category, detail = faults[i]
        attempts = 0
        repaired = False
        repair_label = None
        if policy == "repair":
            recovery, attempts = repair_member(
                members[i],
                category,
                tol=tol,
                max_iterations=max_iterations,
                budget=budget,
                deadline=deadline,
            )
            if recovery is not None:
                mph[i], tdh[i], tma[i] = recovery.columns[:3]
                iterations[i] = recovery.columns[3]
                converged[i] = recovery.columns[4]
                repaired = True
                repair_label = recovery.repair
                attempts = recovery.attempts
        records.append(
            MemberFault(
                index=i,
                category=category,
                detail=detail,
                attempts=attempts,
                repaired=repaired,
                repair=repair_label,
            )
        )
    report = QuarantineReport(policy=policy, faults=tuple(records))
    _record_counters(rec, report)

    return RobustEnsembleCharacterization(
        mph=mph,
        tdh=tdh,
        tma=tma,
        iterations=iterations,
        converged=converged,
        batched=batched_mask,
        n_tasks=n_tasks,
        n_machines=n_machines,
        report=report,
    )


@traced(name="robust.standardize_batched")
def standardize_batched_robust(
    stack,
    *,
    tol: float = 1e-8,
    max_iterations: int = 100_000,
    policy: str = "quarantine",
    budget: Budget | None = None,
    fault_plan: FaultPlan | None = None,
    backend=None,
    precision: str | None = None,
) -> RobustBatchNormalizationResult:
    """Standardize a stack, isolating slices that cannot be scaled.

    Pre-screened corruption (NaN/inf/negative, empty lines) and
    Section-VI zero patterns quarantine with NaN result rows; slices
    that merely miss the tolerance keep their best partial iterate
    (``converged=False``) but are recorded as ``non-convergent``
    faults.  ``policy="repair"`` retries structural faults through
    :func:`repro.robust.repaired_matrix` and non-convergent slices
    through the tolerance-backoff ladder.  ``backend``/``precision``
    select the kernel backend for the healthy-slice batched pass
    (repair retries always use the reference kernels).

    Examples
    --------
    >>> import numpy as np
    >>> stack = np.ones((2, 2, 2))
    >>> stack[1, 0, 0] = np.nan
    >>> result = standardize_batched_robust(stack)
    >>> result.report.categories()
    {1: 'nan'}
    >>> bool(result.converged[0]), bool(np.isnan(result.matrix[1]).all())
    (True, True)
    """
    _check_policy(policy)
    budget = DEFAULT_BUDGET if budget is None else budget
    deadline = budget.start()
    work = as_float_stack(stack, name="stack", allow_nan=True)
    if fault_plan is not None:
        work = fault_plan.apply(work)
    n_slices, n_rows, n_cols = work.shape

    # Structural screening uses the strict ("raise") semantics: a
    # decomposable slice can never converge to the Theorem-2 margins.
    faults: dict[int, tuple[str, str]] = {}
    for i in range(n_slices):
        verdict = classify_matrix(work[i], tma_fallback="raise")
        if verdict is not None:
            faults[i] = verdict

    matrix = np.full_like(work, np.nan)
    row_scale = np.full((n_slices, n_rows), np.nan)
    col_scale = np.full((n_slices, n_cols), np.nan)
    converged = np.zeros(n_slices, dtype=bool)
    iterations = np.zeros(n_slices, dtype=np.int64)
    residual = np.full(n_slices, np.nan)
    histories: list[tuple[float, ...]] = [() for _ in range(n_slices)]

    healthy = [i for i in range(n_slices) if i not in faults]
    row_target = col_target = 1.0
    if healthy:
        partial = standardize_batched(
            work[np.asarray(healthy)],
            tol=tol,
            max_iterations=max_iterations,
            require_convergence=False,
            deadline_s=deadline.remaining(),
            backend=backend,
            precision=precision,
        )
        row_target = partial.row_target
        col_target = partial.col_target
        for pos, i in enumerate(healthy):
            matrix[i] = partial.matrix[pos]
            row_scale[i] = partial.row_scale[pos]
            col_scale[i] = partial.col_scale[pos]
            converged[i] = partial.converged[pos]
            iterations[i] = partial.iterations[pos]
            residual[i] = partial.residual[pos]
            histories[i] = partial.residual_history[pos]
            if not partial.converged[pos]:
                detail = (
                    f"missed tol={tol:g} after "
                    f"{int(partial.iterations[pos])} iterations "
                    f"(residual={float(partial.residual[pos]):.3e})"
                )
                if deadline.expired():
                    detail += (
                        f" (deadline_s={budget.deadline_s:g} expired)"
                    )
                faults[i] = ("non-convergent", detail)
    else:
        from ..normalize.standard_form import standard_targets

        row_target, col_target = standard_targets(n_rows, n_cols)

    def _splice(i: int, result) -> None:
        matrix[i] = result.matrix
        row_scale[i] = result.normalization.row_scale
        col_scale[i] = result.normalization.col_scale
        converged[i] = True
        iterations[i] = result.iterations
        residual[i] = result.residual
        histories[i] = result.residual_history

    records: list[MemberFault] = []
    for i in sorted(faults):
        category, detail = faults[i]
        attempts = 0
        repaired = False
        repair_label = None
        if policy == "repair" and not deadline.expired():
            if category in ("empty-line", "decomposable", "infeasible"):
                attempts = 1
                try:
                    fixed = repaired_matrix(work[i])
                    result = standardize(
                        fixed,
                        tol=tol,
                        max_iterations=max_iterations,
                        require_convergence=False,
                        zeros="limit",
                        deadline_s=deadline.remaining(),
                    )
                except MatrixValueError:
                    result = None
                if result is not None and result.converged:
                    _splice(i, result)
                    repaired = True
                    changed = int(np.count_nonzero(fixed != work[i]))
                    repair_label = f"pattern:{changed}"
            elif category == "non-convergent":
                for tol_k, iters_k in zip(
                    budget.attempt_tolerances(tol),
                    budget.attempt_iterations(max_iterations),
                ):
                    if deadline.expired():
                        break
                    attempts += 1
                    result = standardize(
                        work[i],
                        tol=tol_k,
                        max_iterations=iters_k,
                        require_convergence=False,
                        zeros="limit",
                        deadline_s=deadline.remaining(),
                    )
                    if result.converged:
                        _splice(i, result)
                        repaired = True
                        repair_label = f"tol-backoff:{tol_k:g}"
                        break
        records.append(
            MemberFault(
                index=i,
                category=category,
                detail=detail,
                attempts=attempts,
                repaired=repaired,
                repair=repair_label,
            )
        )
    report = QuarantineReport(policy=policy, faults=tuple(records))
    _record_counters(current_recorder(), report)

    return RobustBatchNormalizationResult(
        matrix=matrix,
        row_scale=row_scale,
        col_scale=col_scale,
        converged=converged,
        iterations=iterations,
        residual=residual,
        residual_history=tuple(histories),
        row_target=row_target,
        col_target=col_target,
        report=report,
    )
