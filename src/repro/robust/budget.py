"""Wall-clock and retry budgets for graceful degradation.

A production characterization service must bound *every* failure mode
in time: a non-convergent Sinkhorn slice must stop at its deadline
instead of burning the full iteration budget, a straggling worker must
be abandoned at its timeout, and the repair ladder must stop escalating
after a fixed number of attempts.  :class:`Budget` bundles those knobs;
:class:`Deadline` is the started clock the kernels check against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..exceptions import MatrixValueError

__all__ = ["Budget", "Deadline", "DEFAULT_BUDGET"]


class Deadline:
    """A started wall-clock deadline (monotonic; ``None`` = unbounded).

    Examples
    --------
    >>> d = Deadline(None)
    >>> d.expired(), d.remaining() is None
    (False, True)
    >>> Deadline(0.0).expired()
    True
    """

    __slots__ = ("_end",)

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds < 0:
            raise MatrixValueError(
                f"deadline seconds must be >= 0 or None, got {seconds!r}"
            )
        self._end = None if seconds is None else time.monotonic() + seconds

    def remaining(self) -> float | None:
        """Seconds left (never negative), or None when unbounded."""
        if self._end is None:
            return None
        return max(0.0, self._end - time.monotonic())

    def expired(self) -> bool:
        return self._end is not None and time.monotonic() >= self._end

    def clamp(self, seconds: float | None) -> float | None:
        """The tighter of ``seconds`` and this deadline's remainder."""
        left = self.remaining()
        if left is None:
            return seconds
        if seconds is None:
            return left
        return min(seconds, left)


@dataclass(frozen=True)
class Budget:
    """Degradation budgets for one robust ensemble run.

    Attributes
    ----------
    deadline_s : float or None
        Wall-clock budget for the whole call.  The batched Sinkhorn
        kernel checks it every iteration and freezes still-active
        slices as non-converged when it expires; the repair ladder
        stops escalating once it is spent.
    member_timeout_s : float or None
        Per-member wall-clock budget on the worker (scalar fallback)
        path.  Requires a process pool — the robust pipeline raises
        ``n_jobs`` to 2 when a timeout is set on a serial run, because
        an in-process worker cannot be preempted.
    max_attempts : int
        Repair-ladder retries per quarantined member.
    tol_backoff : float
        Exponential residual-tolerance relaxation per attempt: attempt
        ``k`` retries a non-convergent member at ``tol * backoff**k``.
    iteration_growth : float
        Iteration-budget growth per attempt (attempt ``k`` runs
        ``max_iterations * growth**k`` Sinkhorn iterations).

    Examples
    --------
    >>> Budget(max_attempts=2).attempt_tolerances(1e-8)
    [1e-07, 1e-06]
    """

    deadline_s: float | None = None
    member_timeout_s: float | None = None
    max_attempts: int = 3
    tol_backoff: float = 10.0
    iteration_growth: float = 4.0

    def __post_init__(self) -> None:
        for name in ("deadline_s", "member_timeout_s"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0
            ):
                raise MatrixValueError(
                    f"{name} must be a non-negative number or None, got "
                    f"{value!r}"
                )
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise MatrixValueError(
                f"max_attempts must be a positive int, got "
                f"{self.max_attempts!r}"
            )
        if self.tol_backoff < 1.0:
            raise MatrixValueError(
                f"tol_backoff must be >= 1, got {self.tol_backoff!r}"
            )
        if self.iteration_growth < 1.0:
            raise MatrixValueError(
                f"iteration_growth must be >= 1, got "
                f"{self.iteration_growth!r}"
            )

    def start(self) -> Deadline:
        """Start the overall wall clock."""
        return Deadline(self.deadline_s)

    def attempt_tolerances(self, tol: float) -> list[float]:
        """The relaxed tolerance of each repair attempt, in order."""
        return [
            tol * self.tol_backoff**k
            for k in range(1, self.max_attempts + 1)
        ]

    def attempt_iterations(self, max_iterations: int) -> list[int]:
        """The iteration budget of each repair attempt, in order."""
        return [
            max(1, int(max_iterations * self.iteration_growth**k))
            for k in range(1, self.max_attempts + 1)
        ]


#: The default budgets: unbounded wall clock, three repair attempts.
DEFAULT_BUDGET = Budget()
