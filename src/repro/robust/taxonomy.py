"""Fault taxonomy and quarantine reporting for ensemble pipelines.

Section VI of the paper shows that a production characterization
service cannot assume every ensemble member is well behaved: real ETC
matrices carry zeros whose pattern may admit no standard form, profiled
entries may be corrupt (NaN/inf), and iterative normalization may
simply run out of budget.  This module gives every such failure a
stable *category* slug so that quarantine reports, observability
counters and operator tooling all speak the same vocabulary.

Categories
----------
``nan``
    The member contains NaN entries (corrupt profiling data).
``non-finite``
    The member contains infinite entries (infinities belong in the ETC
    representation, never in ECS).
``negative``
    The member contains negative entries.
``empty-line``
    An all-zero row or column — a task no machine can run, or a machine
    that can run nothing (paper Section II-B forbids both).
``decomposable``
    The zero pattern is feasible but decomposable in the
    Marshall–Olkin sense (paper eq. 10): blocking entries prevent any
    exact standard form.
``infeasible``
    The zero pattern admits no equal-margin matrix at all — even the
    eq. 9 limit does not exist.
``non-convergent``
    The Sinkhorn iteration missed its tolerance within the iteration /
    wall-clock budget.
``timeout``
    A worker blew through its per-member wall-clock budget (straggler).
``worker-error``
    Any other exception escaping a per-member worker.
``invalid-shape``
    The member is not a valid 2-D environment matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..exceptions import (
    ConvergenceError,
    EmptyRowColumnError,
    MatrixShapeError,
    MatrixValueError,
    NotNormalizableError,
    ReproError,
)

__all__ = [
    "FAULT_CATEGORIES",
    "UNREPAIRABLE_CATEGORIES",
    "MemberFault",
    "QuarantineReport",
    "classify_exception",
    "classify_matrix",
]

#: Every category a :class:`MemberFault` may carry, in screening order.
FAULT_CATEGORIES = (
    "nan",
    "non-finite",
    "negative",
    "empty-line",
    "decomposable",
    "infeasible",
    "non-convergent",
    "timeout",
    "worker-error",
    "invalid-shape",
)

#: Categories the repair ladder never attempts: corrupt or malformed
#: data has no legitimate numerical fix (``timeout`` members *are*
#: retried — locally, without the straggling worker).
UNREPAIRABLE_CATEGORIES = frozenset(
    {"nan", "non-finite", "negative", "invalid-shape", "worker-error"}
)


@dataclass(frozen=True)
class MemberFault:
    """One quarantined (or repaired) ensemble member.

    Attributes
    ----------
    index : int
        Position of the member in the input ensemble.
    category : str
        One of :data:`FAULT_CATEGORIES`.
    detail : str
        Human-readable diagnosis (original error message, offending
        entry, ...).
    attempts : int
        Repair attempts consumed (0 under ``policy="quarantine"``).
    repaired : bool
        True when a retry produced a usable profile; the member then
        appears in the ensemble result instead of being masked out.
    repair : str or None
        Description of the successful repair (``"drop:2"``,
        ``"add:1"``, ``"tol-backoff:1e-06"``, ``"local-retry"``).
    """

    index: int
    category: str
    detail: str
    attempts: int = 0
    repaired: bool = False
    repair: str | None = None

    def __post_init__(self) -> None:
        if self.category not in FAULT_CATEGORIES:
            raise MatrixValueError(
                f"unknown fault category {self.category!r}; expected one "
                f"of {FAULT_CATEGORIES}"
            )

    def summary(self) -> str:
        state = (
            f"repaired ({self.repair}, {self.attempts} attempt(s))"
            if self.repaired
            else "quarantined"
        )
        return f"member {self.index}: {self.category} — {state}"

    def to_payload(self) -> dict:
        """JSON-safe record (service error bodies, structured logs)."""
        payload: dict = {
            "category": self.category,
            "detail": self.detail,
            "repaired": self.repaired,
        }
        if self.attempts:
            payload["attempts"] = self.attempts
        if self.repair is not None:
            payload["repair"] = self.repair
        return payload


@dataclass(frozen=True)
class QuarantineReport:
    """Structured account of every faulty member of one ensemble run.

    Attributes
    ----------
    policy : str
        The policy that produced the report (``"quarantine"`` or
        ``"repair"``).
    faults : tuple of MemberFault
        One record per faulty member, in member order.  Repaired
        members stay in the report (with ``repaired=True``) so the
        operator sees what was touched.
    """

    policy: str
    faults: tuple[MemberFault, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def quarantined(self) -> tuple[int, ...]:
        """Indices still masked out of the ensemble result."""
        return tuple(f.index for f in self.faults if not f.repaired)

    @property
    def repaired(self) -> tuple[int, ...]:
        """Indices recovered by the repair ladder."""
        return tuple(f.index for f in self.faults if f.repaired)

    @property
    def attempts(self) -> int:
        """Total repair attempts consumed across all members."""
        return sum(f.attempts for f in self.faults)

    def categories(self) -> dict[int, str]:
        """Mapping of member index to fault category."""
        return {f.index: f.category for f in self.faults}

    def by_category(self) -> dict[str, tuple[int, ...]]:
        """Member indices grouped by fault category."""
        groups: dict[str, list[int]] = {}
        for f in self.faults:
            groups.setdefault(f.category, []).append(f.index)
        return {k: tuple(v) for k, v in groups.items()}

    def fault(self, index: int) -> MemberFault:
        """The fault record of member ``index`` (KeyError if healthy)."""
        for f in self.faults:
            if f.index == index:
                return f
        raise KeyError(index)

    def summary(self) -> str:
        """Multi-line operator digest."""
        if not self.faults:
            return "quarantine report: all members healthy"
        lines = [
            f"quarantine report (policy={self.policy}): "
            f"{len(self.quarantined)} quarantined, "
            f"{len(self.repaired)} repaired"
        ]
        lines += [f"  {f.summary()}" for f in self.faults]
        return "\n".join(lines)

    def mark_repaired(
        self, index: int, *, attempts: int, repair: str
    ) -> "QuarantineReport":
        """A copy of the report with member ``index`` marked repaired."""
        faults = tuple(
            replace(f, repaired=True, attempts=attempts, repair=repair)
            if f.index == index
            else f
            for f in self.faults
        )
        return replace(self, faults=faults)


def classify_exception(exc: BaseException) -> str:
    """Map a library exception to its fault category.

    Any :class:`~repro.exceptions.ReproError` (and TimeoutError) has a
    well-defined slot; everything else is a ``worker-error``.

    Examples
    --------
    >>> from repro.exceptions import ConvergenceError
    >>> classify_exception(ConvergenceError("stalled"))
    'non-convergent'
    """
    if isinstance(exc, ConvergenceError):
        return "non-convergent"
    if isinstance(exc, NotNormalizableError):
        return "decomposable"
    if isinstance(exc, EmptyRowColumnError):
        return "empty-line"
    if isinstance(exc, MatrixShapeError):
        return "invalid-shape"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, (MatrixValueError, ReproError)):
        # Value-level corruption reported by validation; the message
        # distinguishes the exact entry, the category stays coarse.
        return "worker-error"
    return "worker-error"


def classify_matrix(
    matrix, *, tma_fallback: str = "limit"
) -> tuple[str, str] | None:
    """Pre-screen one member; return ``(category, detail)`` or None.

    The screen is ordered so the most fundamental corruption wins: a
    slice that is both NaN-ridden and decomposable reports ``nan``.
    Structural (zero-pattern) screening runs only when the member
    contains zeros, and the ``decomposable`` verdict is only a fault
    under ``tma_fallback="raise"`` — the ``"limit"`` and ``"column"``
    fallbacks both produce a legitimate TMA for such members (paper
    Section VI), so they stay healthy.

    Examples
    --------
    >>> import numpy as np
    >>> classify_matrix(np.array([[1.0, float("nan")], [1.0, 1.0]]))
    ('nan', 'member contains NaN entries')
    >>> classify_matrix(np.ones((2, 2))) is None
    True
    """
    try:
        arr = np.asarray(matrix, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        return ("invalid-shape", f"not coercible to a float matrix: {exc}")
    if arr.ndim != 2 or arr.size == 0:
        return (
            "invalid-shape",
            f"environment must be a non-empty 2-D matrix, got shape "
            f"{arr.shape}",
        )
    if np.isnan(arr).any():
        return ("nan", "member contains NaN entries")
    if np.isinf(arr).any():
        return ("non-finite", "member contains infinite entries")
    if (arr < 0).any():
        return ("negative", "member contains negative entries")
    if not (arr > 0).any(axis=1).all() or not (arr > 0).any(axis=0).all():
        return ("empty-line", "member has an all-zero row or column")
    if tma_fallback == "raise" and (arr == 0).any():
        from ..structure import normalizability_report

        report = normalizability_report(arr)
        if not report.feasible:
            return (
                "infeasible",
                "zero pattern admits no equal-margin matrix at all",
            )
        if report.blocking_edges:
            return (
                "decomposable",
                "zero pattern is decomposable (Section VI); blocking "
                f"entries {list(report.blocking_edges)[:4]}",
            )
    return None
