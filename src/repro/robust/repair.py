"""Retry-with-repair for quarantined ensemble members.

The ladder maps each fault category to its recovery move:

* ``timeout`` — the member's data is fine, only its worker straggled:
  recompute locally (the coded-computation move — re-issue the
  straggler's work instead of waiting for it).
* ``empty-line`` / ``decomposable`` / ``infeasible`` — pattern surgery
  via :func:`repro.structure.suggest_repairs`: drop the Marshall–Olkin
  blocking entries (exact submatrix extraction) when the margins are
  feasible, otherwise greedily add compatibilities (zero-fill with a
  plausible speed) until the pattern normalizes.
* ``non-convergent`` — exponential residual-tolerance backoff: attempt
  ``k`` reruns the standard-form iteration at ``tol * backoff**k`` with
  a ``growth**k`` larger iteration budget, so slow-but-convergent
  members recover at a documented, relaxed tolerance.

Corrupt data (``nan``, ``non-finite``, ``negative``, shapes, unknown
worker errors) is never "repaired" — inventing entries would silently
fabricate measures — so those members stay quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MatrixValueError, ReproError
from ..measures.alternatives import average_adjacent_ratio
from ..normalize.standard_form import standardize
from .budget import Budget, Deadline
from .taxonomy import UNREPAIRABLE_CATEGORIES

__all__ = ["MemberRecovery", "repair_member", "repaired_matrix"]


@dataclass(frozen=True)
class MemberRecovery:
    """A successful repair: the recovered profile columns plus how.

    ``columns`` matches the ensemble column layout:
    ``(mph, tdh, tma, iterations, converged)``.
    """

    columns: tuple[float, float, float, int, bool]
    attempts: int
    repair: str


def repaired_matrix(matrix, *, fill: float | None = None) -> np.ndarray:
    """Pattern-repair ``matrix`` into a normalizable copy.

    Tries the exact ``drop`` plan first (unique blocking set,
    Marshall–Olkin submatrix extraction); falls back to the greedy
    ``add`` plan when the margins are infeasible outright (e.g. an
    all-zero row, which only new compatibilities can fix).  Added
    entries are filled with ``fill`` — by default the median positive
    entry, a plausible ECS speed for the new compatibility.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.structure import is_normalizable
    >>> eq10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)
    >>> bool(is_normalizable(repaired_matrix(eq10)))
    True
    """
    from ..structure import suggest_repairs

    arr = np.asarray(matrix, dtype=np.float64)
    if fill is None:
        positive = arr[arr > 0]
        fill = float(np.median(positive)) if positive.size else 1.0
    try:
        plan = suggest_repairs(arr, strategy="drop")
    except MatrixValueError:
        plan = suggest_repairs(arr, strategy="add")
    return plan.apply(arr, fill=fill)


def _columns_from_profile(matrix, *, tol, max_iterations, deadline_s=None):
    """Scalar profile columns with an explicit iteration/deadline budget.

    The ensemble's scalar worker (``repro.measures.characterize``) does
    not expose ``max_iterations``; the repair ladder needs it, so this
    computes the same three measures directly: MPH/TDH from the
    weighted row/column sums, TMA from the standard form (eq. 8).
    Raises any :class:`~repro.exceptions.ReproError` the kernels raise.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    mph = average_adjacent_ratio(arr.sum(axis=0))
    tdh = average_adjacent_ratio(arr.sum(axis=1))
    standard = standardize(
        arr,
        tol=tol,
        max_iterations=max_iterations,
        require_convergence=False,
        zeros="limit",
        deadline_s=deadline_s,
    )
    if not standard.converged:
        return None
    values = np.linalg.svd(standard.matrix, compute_uv=False)
    tma = (
        0.0
        if values.shape[0] < 2
        else float(np.clip(values[1:].sum() / (values.shape[0] - 1), 0.0, 1.0))
    )
    return (mph, tdh, tma, standard.iterations, True)


def repair_member(
    matrix,
    category: str,
    *,
    tol: float,
    max_iterations: int,
    budget: Budget,
    deadline: Deadline | None = None,
) -> tuple[MemberRecovery | None, int]:
    """Attempt to recover one quarantined member.

    Returns ``(recovery, attempts_used)``; ``recovery`` is None when
    the member is unrepairable, every attempt failed, or the deadline
    budget ran out first.  ``matrix`` must be the member's (weighted)
    ECS array as the pipeline saw it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.robust import Budget
    >>> eq10 = np.array([[0, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=float)
    >>> recovery, attempts = repair_member(
    ...     eq10, "decomposable", tol=1e-8, max_iterations=10_000,
    ...     budget=Budget())
    >>> recovery.repair, attempts
    ('drop:1', 1)
    """
    if category in UNREPAIRABLE_CATEGORIES:
        return None, 0
    deadline = deadline if deadline is not None else Deadline(None)

    if category == "timeout":
        # Straggler: the data is healthy, re-run the work locally.
        if deadline.expired():
            return None, 0
        try:
            columns = _columns_from_profile(
                matrix,
                tol=tol,
                max_iterations=max_iterations,
                deadline_s=deadline.remaining(),
            )
        except ReproError:
            return None, 1
        if columns is None:
            return None, 1
        return MemberRecovery(columns, attempts=1, repair="local-retry"), 1

    if category in ("empty-line", "decomposable", "infeasible"):
        if deadline.expired():
            return None, 0
        from ..structure import suggest_repairs

        arr = np.asarray(matrix, dtype=np.float64)
        try:
            try:
                plan = suggest_repairs(arr, strategy="drop")
                strategy = "drop"
            except MatrixValueError:
                plan = suggest_repairs(arr, strategy="add")
                strategy = "add"
            positive = arr[arr > 0]
            fill = float(np.median(positive)) if positive.size else 1.0
            columns = _columns_from_profile(
                plan.apply(arr, fill=fill),
                tol=tol,
                max_iterations=max_iterations,
                deadline_s=deadline.remaining(),
            )
        except ReproError:
            return None, 1
        if columns is None:
            return None, 1
        repair = f"{strategy}:{len(plan.entries)}"
        return MemberRecovery(columns, attempts=1, repair=repair), 1

    if category == "non-convergent":
        tolerances = budget.attempt_tolerances(tol)
        iteration_budgets = budget.attempt_iterations(max_iterations)
        attempts = 0
        for tol_k, iters_k in zip(tolerances, iteration_budgets):
            if deadline.expired():
                break
            attempts += 1
            try:
                columns = _columns_from_profile(
                    matrix,
                    tol=tol_k,
                    max_iterations=iters_k,
                    deadline_s=deadline.remaining(),
                )
            except ReproError:
                continue
            if columns is not None:
                return (
                    MemberRecovery(
                        columns,
                        attempts=attempts,
                        repair=f"tol-backoff:{tol_k:g}",
                    ),
                    attempts,
                )
        return None, attempts

    return None, 0
