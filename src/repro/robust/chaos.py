"""Seedable fault injection for ensemble-pipeline drills.

Chaos engineering for the characterization service: a
:class:`FaultPlan` deterministically corrupts chosen members of an
``(N, T, M)`` ensemble — NaN entries, zeroed rows/columns, decomposable
zero patterns (paper eq. 10), forced Sinkhorn non-convergence — and can
stall the worker processing a member to simulate a straggler.  The
same plan drives both the chaos test suite (``tests/robust/``) and the
operator drill flag ``repro-hc characterize --inject-faults``.

Every fault kind maps to the :mod:`repro.robust.taxonomy` category the
pipeline is expected to report, so a drill can assert the quarantine
report against the plan's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import GenerationError, MatrixValueError

__all__ = ["FAULT_KINDS", "KIND_CATEGORY", "FaultSpec", "FaultPlan"]

#: Injectable fault kinds.
FAULT_KINDS = (
    "nan",
    "zero-row",
    "zero-col",
    "decomposable",
    "non-convergent",
    "stall",
)

#: Taxonomy category each kind is expected to produce.  ``decomposable``
#: only quarantines under ``tma_fallback="raise"`` (the limit/column
#: fallbacks characterize such members legitimately); ``stall`` only
#: under a per-member timeout.
KIND_CATEGORY = {
    "nan": "nan",
    "zero-row": "empty-line",
    "zero-col": "empty-line",
    "decomposable": "decomposable",
    "non-convergent": "non-convergent",
    "stall": "timeout",
}

#: Corner value that forces Sinkhorn past any practical iteration
#: budget: the convergence rate is ``(1 - 2/sqrt(severity))**2`` per
#: iteration, so 1e14 needs ~1e7 iterations to reach 1e-8.
DEFAULT_SEVERITY = 1e14

#: Default injected straggler stall, in seconds.
DEFAULT_STALL_S = 1.0


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: a kind applied to one ensemble member.

    ``severity`` parameterizes ``non-convergent`` (the corner dynamic
    range; smaller values converge eventually, so a drill can choose
    between "slow but repairable" and "hopeless").  ``stall_s`` is the
    injected sleep for ``stall``.
    """

    kind: str
    member: int
    severity: float = DEFAULT_SEVERITY
    stall_s: float = DEFAULT_STALL_S

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise MatrixValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.member < 0:
            raise MatrixValueError(
                f"fault member index must be >= 0, got {self.member}"
            )

    @property
    def category(self) -> str:
        """The taxonomy category this fault should produce."""
        return KIND_CATEGORY[self.kind]


def _parse_spec(spec: str) -> dict[str, int]:
    """Parse ``"nan=2,stall=1"`` into ``{"nan": 2, "stall": 1}``."""
    counts: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, count = part.partition("=")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise MatrixValueError(
                f"unknown fault kind {kind!r} in spec {spec!r}; expected "
                f"one of {FAULT_KINDS}"
            )
        try:
            n = int(count.strip()) if count.strip() else 1
        except ValueError:
            raise MatrixValueError(
                f"fault count for {kind!r} must be an int, got {count!r}"
            ) from None
        if n < 1:
            raise MatrixValueError(
                f"fault count for {kind!r} must be >= 1, got {n}"
            )
        counts[kind] = counts.get(kind, 0) + n
    if not counts:
        raise MatrixValueError(f"empty fault spec {spec!r}")
    return counts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one ensemble run.

    Build one with :meth:`random` (seeded member assignment) or from
    explicit :class:`FaultSpec` records.  Data faults are applied by
    :meth:`apply` / :meth:`apply_member`; ``stall`` faults are consumed
    by the robust pipeline's worker path via :meth:`stall_seconds`.

    Examples
    --------
    >>> plan = FaultPlan.random(8, faults="nan=1,zero-row=1", seed=0)
    >>> sorted(f.kind for f in plan.faults)
    ['nan', 'zero-row']
    >>> plan == FaultPlan.random(8, faults="nan=1,zero-row=1", seed=0)
    True
    """

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        members = [f.member for f in self.faults]
        if len(set(members)) != len(members):
            raise MatrixValueError(
                "fault plan assigns multiple faults to one member; use "
                "distinct members so quarantine categories stay "
                f"unambiguous (got members {sorted(members)})"
            )

    @classmethod
    def random(
        cls,
        n_members: int,
        *,
        faults: str | dict[str, int],
        seed=0,
        severity: float = DEFAULT_SEVERITY,
        stall_s: float = DEFAULT_STALL_S,
    ) -> "FaultPlan":
        """Assign the requested fault counts to random distinct members.

        ``faults`` is either a ``{kind: count}`` mapping or a compact
        spec string like ``"nan=2,stall=1"`` (the CLI format).  The
        member assignment is a seeded permutation, so the same seed
        always drills the same members.
        """
        counts = _parse_spec(faults) if isinstance(faults, str) else dict(faults)
        for kind in counts:
            if kind not in FAULT_KINDS:
                raise MatrixValueError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{FAULT_KINDS}"
                )
        total = sum(counts.values())
        if total > n_members:
            raise MatrixValueError(
                f"cannot inject {total} faults into {n_members} members"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.permutation(n_members)[:total]
        specs = []
        pos = 0
        for kind in sorted(counts):
            for _ in range(counts[kind]):
                specs.append(
                    FaultSpec(
                        kind=kind,
                        member=int(chosen[pos]),
                        severity=severity,
                        stall_s=stall_s,
                    )
                )
                pos += 1
        return cls(faults=tuple(specs))

    @property
    def members(self) -> tuple[int, ...]:
        """All targeted member indices, ascending."""
        return tuple(sorted(f.member for f in self.faults))

    @property
    def stalled(self) -> tuple[int, ...]:
        """Members targeted by ``stall`` faults, ascending."""
        return tuple(
            sorted(f.member for f in self.faults if f.kind == "stall")
        )

    def spec_for(self, index: int) -> FaultSpec | None:
        """The fault targeting member ``index``, or None."""
        for f in self.faults:
            if f.member == index:
                return f
        return None

    def stall_seconds(self, index: int) -> float:
        """Injected worker stall for member ``index`` (0.0 = none)."""
        spec = self.spec_for(index)
        return spec.stall_s if spec is not None and spec.kind == "stall" else 0.0

    def expected_categories(self) -> dict[int, str]:
        """Ground truth: member index → taxonomy category."""
        return {f.member: f.category for f in self.faults}

    def apply_member(self, index: int, matrix) -> np.ndarray:
        """A (possibly corrupted) copy of member ``index``'s matrix."""
        arr = np.array(matrix, dtype=np.float64, copy=True)
        spec = self.spec_for(index)
        if spec is None or spec.kind == "stall":
            return arr
        if arr.ndim != 2:
            raise MatrixValueError(
                f"data faults need a 2-D member, got shape {arr.shape}"
            )
        n_rows, n_cols = arr.shape
        if spec.kind == "nan":
            arr[0, 0] = np.nan
        elif spec.kind == "zero-row":
            arr[index % n_rows, :] = 0.0
        elif spec.kind == "zero-col":
            arr[:, index % n_cols] = 0.0
        elif spec.kind == "non-convergent":
            arr[:, :] = 1.0
            arr[-1, -1] = spec.severity
        elif spec.kind == "decomposable":
            arr = self._decomposable_member(arr)
        return arr

    @staticmethod
    def _decomposable_member(arr: np.ndarray) -> np.ndarray:
        """Corrupt a slice into a feasible-but-decomposable pattern.

        Recipe (square slices only): make every entry positive, then
        zero row 0 except its diagonal entry.  Equal margins then force
        the rest of column 0 to zero — those entries become the
        Marshall–Olkin blocking set, so the pattern has support but not
        total support and no standard form exists (paper Section VI).
        """
        n_rows, n_cols = arr.shape
        if n_rows != n_cols or n_rows < 2:
            raise GenerationError(
                "decomposable faults need a square slice with T = M >= 2 "
                f"(got {n_rows}x{n_cols}); pick another fault kind for "
                "this ensemble shape"
            )
        out = np.where(arr > 0, arr, 1.0)
        out[0, 1:] = 0.0
        from ..structure import normalizability_report

        report = normalizability_report(out)
        if not report.feasible or not report.blocking_edges:
            raise GenerationError(
                "decomposable fault construction failed to produce a "
                "feasible-but-blocked pattern (internal invariant)"
            )
        return out

    def apply(self, stack) -> np.ndarray:
        """A corrupted copy of an ``(N, T, M)`` stack.

        Only data faults touch the stack; ``stall`` members pass
        through unchanged (their fault manifests in the worker).
        """
        arr = np.array(stack, dtype=np.float64, copy=True)
        if arr.ndim != 3:
            raise MatrixValueError(
                f"fault plans apply to (N, T, M) stacks, got shape "
                f"{arr.shape}"
            )
        for spec in self.faults:
            if spec.member >= arr.shape[0]:
                raise MatrixValueError(
                    f"fault targets member {spec.member} but the stack has "
                    f"only {arr.shape[0]} members"
                )
            if spec.kind != "stall":
                arr[spec.member] = self.apply_member(
                    spec.member, arr[spec.member]
                )
        return arr

    def summary(self) -> str:
        """One line per injected fault, member order."""
        if not self.faults:
            return "fault plan: empty"
        lines = ["fault plan:"]
        for f in sorted(self.faults, key=lambda s: s.member):
            extra = ""
            if f.kind == "non-convergent":
                extra = f" (severity={f.severity:g})"
            elif f.kind == "stall":
                extra = f" (stall={f.stall_s:g}s)"
            lines.append(
                f"  member {f.member}: {f.kind} -> expect "
                f"{f.category}{extra}"
            )
        return "\n".join(lines)
