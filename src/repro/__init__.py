"""repro — heterogeneity measures for heterogeneous computing environments.

A production-quality reproduction of

    A. M. Al-Qawasmeh, A. A. Maciejewski, R. G. Roberts, H. J. Siegel,
    "Characterizing Task-Machine Affinity in Heterogeneous Computing
    Environments", IEEE IPDPS 2011.

The library characterizes an HC environment — an ETC (estimated time to
compute) matrix over task types and machines — with three independent,
scale-invariant measures:

* **MPH** machine performance homogeneity,
* **TDH** task difficulty homogeneity,
* **TMA** task-machine affinity (singular values of the standard-form
  ECS matrix).

Quickstart
----------
>>> from repro import ETCMatrix, characterize
>>> etc = ETCMatrix([[10.0, 5.0], [4.0, 8.0]])
>>> profile = characterize(etc)
>>> 0 < profile.mph <= 1 and 0 <= profile.tma <= 1
True

Subpackages
-----------
``repro.core``
    ETC/ECS matrix model, weights, CSV/JSON I/O.
``repro.measures``
    MPH, TDH, TMA and the Section II-D comparison statistics.
``repro.normalize``
    Sinkhorn standard form (Theorems 1–2), canonical ordering.
``repro.structure``
    Zero-pattern decomposability and exact normalizability (Section VI).
``repro.generate``
    ETC-matrix generators for simulation studies.
``repro.spec``
    SPEC CPU2006Rate-derived evaluation environments (Section V).
``repro.scheduling``
    Static mapping heuristics and heterogeneity-aware heuristic selection.
``repro.analysis``
    What-if studies, measure-independence experiments, reports.
``repro.batch``
    Batched ensemble kernels over ``(N, T, M)`` stacks (stacked
    Sinkhorn, vectorized MPH/TDH/TMA, columnar
    :func:`characterize_ensemble`).
``repro.obs``
    Zero-dependency structured tracing of the Sinkhorn/SVD/scheduling
    hot paths: :func:`recording`, :func:`span`, :func:`traced`,
    :func:`summary`, pluggable sinks.
``repro.robust``
    Fault-tolerant ensemble pipeline: quarantine/repair policies
    (:class:`QuarantineReport`, :class:`Budget`), the repair ladder and
    seedable chaos fault injection (:class:`FaultPlan`).
``repro.backends``
    Pluggable kernel backends behind every Sinkhorn/SVD entry point:
    registry (:func:`register_backend`, :func:`get_backend`,
    :func:`list_backends`), the :class:`KernelBackend` protocol, the
    float32 fast path and warm-started re-characterization.
``repro.shard``
    Out-of-core sharded ensembles: the on-disk :class:`StackStore`
    format, memory-budgeted chunk planning and
    :func:`characterize_store` — streaming execution with speculative
    straggler mitigation, bit-identical to the in-memory path.
"""

from .backends import (
    KernelBackend,
    get_backend,
    list_backends,
    register_backend,
)
from .core import (
    ECSMatrix,
    ETCMatrix,
    ecs_to_etc,
    etc_to_ecs,
    load_environment_json,
    load_etc_csv,
    save_environment_json,
    save_etc_csv,
)
from .exceptions import (
    ConvergenceError,
    DatasetError,
    EmptyRowColumnError,
    GenerationError,
    MatrixShapeError,
    MatrixValueError,
    NotNormalizableError,
    ReproError,
    SchedulingError,
    WeightError,
)
from .measures import (
    HeterogeneityProfile,
    characterize,
    coefficient_of_variation,
    geometric_mean_ratio,
    machine_performance,
    min_max_ratio,
    mph,
    standard_singular_values,
    task_difficulty,
    tdh,
    tma,
)
from .normalize import (
    CanonicalFormResult,
    NormalizationResult,
    ScalingOutcome,
    StandardFormResult,
    canonical_form,
    column_normalize,
    sinkhorn_knopp,
    standard_targets,
    standardize,
)
from .obs import recording, span, summary, traced
from .structure import (
    has_support,
    has_total_support,
    is_fully_indecomposable,
    is_normalizable,
    permute_to_block_form,
)
from .batch import (
    BatchNormalizationResult,
    EnsembleCharacterization,
    characterize_ensemble,
    mph_batched,
    sinkhorn_knopp_batched,
    standardize_batched,
    tdh_batched,
    tma_batched,
)
from .robust import (
    Budget,
    FaultPlan,
    MemberFault,
    QuarantineReport,
    RobustEnsembleCharacterization,
    characterize_ensemble_robust,
    repaired_matrix,
)
from .shard import (
    StackStore,
    StackStoreWriter,
    characterize_store,
    create_store,
    open_store,
    plan_shards,
    write_store,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ETCMatrix",
    "ECSMatrix",
    "etc_to_ecs",
    "ecs_to_etc",
    "load_etc_csv",
    "save_etc_csv",
    "load_environment_json",
    "save_environment_json",
    # measures
    "machine_performance",
    "mph",
    "task_difficulty",
    "tdh",
    "tma",
    "standard_singular_values",
    "min_max_ratio",
    "geometric_mean_ratio",
    "coefficient_of_variation",
    "characterize",
    "HeterogeneityProfile",
    # normalize
    "sinkhorn_knopp",
    "standardize",
    "standard_targets",
    "column_normalize",
    "canonical_form",
    "NormalizationResult",
    "ScalingOutcome",
    "StandardFormResult",
    "CanonicalFormResult",
    # obs
    "recording",
    "span",
    "traced",
    "summary",
    # structure
    "has_support",
    "has_total_support",
    "is_fully_indecomposable",
    "is_normalizable",
    "permute_to_block_form",
    # batch
    "BatchNormalizationResult",
    "EnsembleCharacterization",
    "characterize_ensemble",
    "sinkhorn_knopp_batched",
    "standardize_batched",
    "mph_batched",
    "tdh_batched",
    "tma_batched",
    # robust
    "Budget",
    "FaultPlan",
    "MemberFault",
    "QuarantineReport",
    "RobustEnsembleCharacterization",
    "characterize_ensemble_robust",
    "repaired_matrix",
    # shard
    "StackStore",
    "StackStoreWriter",
    "create_store",
    "open_store",
    "write_store",
    "plan_shards",
    "characterize_store",
    # backends
    "KernelBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    # exceptions
    "ReproError",
    "MatrixShapeError",
    "MatrixValueError",
    "EmptyRowColumnError",
    "WeightError",
    "ConvergenceError",
    "NotNormalizableError",
    "DatasetError",
    "SchedulingError",
    "GenerationError",
]
