"""Standard export formats for the obs layer.

Two consumers, two formats:

* **Prometheus text exposition** (:func:`render_prometheus`) of a
  :class:`~repro.obs.MetricsRegistry`, plus a stdlib-only scrape
  endpoint (:func:`start_metrics_server`, ``repro-hc serve-metrics``).
  The rendering follows the classic ``text/plain; version=0.0.4``
  format: ``# HELP`` / ``# TYPE`` headers, escaped label values, and
  cumulative ``_bucket`` series with ``_sum`` / ``_count`` for
  histograms.
* **Chrome trace-event JSON** (:func:`chrome_trace`,
  :func:`convert_trace_jsonl`, ``repro-hc trace convert``) built from
  the span/counter JSONL that :func:`repro.obs.recording` streams
  (``repro-hc profile -o trace.jsonl``).  The output loads directly in
  ``chrome://tracing`` and Perfetto: spans become complete (``"X"``)
  events with microsecond timestamps, counters and gauges become
  counter (``"C"``) tracks.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "render_prometheus",
    "start_metrics_server",
    "chrome_trace",
    "chrome_trace_events",
    "convert_trace_jsonl",
    "PROMETHEUS_CONTENT_TYPE",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, key, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in list(zip(labelnames, key)) + list(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _exemplar_text(exemplar: dict | None) -> str:
    """OpenMetrics exemplar suffix for one bucket sample line.

    Renders `` # {trace_id="..."} value timestamp`` — the OpenMetrics
    exemplar syntax, which Prometheus accepts on classic histogram
    bucket lines and plain-text consumers can strip at the ``#``.
    """
    if not exemplar:
        return ""
    labels = "{" + ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(exemplar.get("labels", {}).items())
    ) + "}"
    text = f" # {labels} {_format_value(float(exemplar['value']))}"
    timestamp = exemplar.get("timestamp")
    if timestamp is not None:
        text += f" {float(timestamp):.3f}"
    return text


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Counters and gauges render one sample per label series; histograms
    render the cumulative ``_bucket`` series (one per upper bound plus
    ``le="+Inf"``), ``_sum`` and ``_count``, preserving the invariants
    scrapers check: bucket counts non-decreasing in ``le``, and the
    ``+Inf`` bucket equal to ``_count``.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("demo_total", "Demo.", ("kind",)).inc(kind="a")
    >>> print(render_prometheus(registry))
    # HELP demo_total Demo.
    # TYPE demo_total counter
    demo_total{kind="a"} 1
    <BLANKLINE>
    """
    if registry is None:
        registry = get_registry()
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.samples):
            value = family.samples[key]
            if family.kind != "histogram":
                lines.append(
                    f"{family.name}"
                    f"{_labels_text(family.labelnames, key)} "
                    f"{_format_value(value)}"
                )
                continue
            running = 0
            exemplars = value.get("exemplars") or {}
            for idx, (bound, count) in enumerate(
                zip(family.buckets, value["counts"])
            ):
                running += count
                lines.append(
                    f"{family.name}_bucket"
                    + _labels_text(
                        family.labelnames,
                        key,
                        extra=[("le", _format_value(bound))],
                    )
                    + f" {running}"
                    + _exemplar_text(exemplars.get(idx))
                )
            running += value["counts"][-1]
            lines.append(
                f"{family.name}_bucket"
                + _labels_text(family.labelnames, key, extra=[("le", "+Inf")])
                + f" {running}"
                + _exemplar_text(exemplars.get(len(family.buckets)))
            )
            lines.append(
                f"{family.name}_sum"
                f"{_labels_text(family.labelnames, key)} "
                f"{_format_value(value['sum'])}"
            )
            lines.append(
                f"{family.name}_count"
                f"{_labels_text(family.labelnames, key)} {value['count']}"
            )
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the subclass by the factory

    def do_GET(self):  # noqa: N802 (stdlib handler naming)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        body = render_prometheus(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # scrapes should not spam stderr


def start_metrics_server(
    port: int = 9464,
    host: str = "127.0.0.1",
    registry: MetricsRegistry | None = None,
    *,
    in_thread: bool = True,
) -> ThreadingHTTPServer:
    """Serve ``/metrics`` for the registry over stdlib ``http.server``.

    Returns the bound server (``server.server_address`` carries the
    actual port — pass ``port=0`` for an ephemeral one).  With
    ``in_thread=True`` (default) a daemon thread runs ``serve_forever``
    and the caller stops it with ``server.shutdown()``; with False the
    caller owns the serve loop (the CLI foreground mode).
    """
    handler = type(
        "_BoundMetricsHandler",
        (_MetricsHandler,),
        {"registry": registry if registry is not None else get_registry()},
    )
    server = ThreadingHTTPServer((host, port), handler)
    if in_thread:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics", daemon=True
        )
        thread.start()
    return server


# -- Chrome trace-event conversion -------------------------------------


def _span_args(record: dict) -> dict:
    args = dict(record.get("meta", {}))
    args["cpu_s"] = record.get("cpu_s")
    args["depth"] = record.get("depth")
    if record.get("error") is not None:
        args["error"] = record["error"]
    for name, series in record.get("samples", {}).items():
        args[f"samples.{name}"] = series
    return args


def chrome_trace_events(records) -> list[dict]:
    """Trace-event dicts for an iterable of obs JSONL records.

    Spans map to complete (``ph="X"``) events — Chrome expects
    microsecond ``ts``/``dur`` — and counters/gauges (including the
    ``counter_total`` records flushed at session close) map to counter
    (``ph="C"``) events.  Unknown record types are skipped, so the
    converter tolerates trace files from newer writers.

    Records from multi-process runs (shard pool workers stamp ``pid``
    and ``process``) get a stable per-process lane: real pids map to
    sequential trace pids in first-seen order, and ``process_name`` /
    ``thread_name`` metadata (``ph="M"``) events name every lane, so
    Perfetto shows "shard-worker-1234" rather than an anonymous tid.
    """
    events: list[dict] = []
    lanes: dict[object, int] = {}
    lane_names: dict[int, str] = {}

    def lane(record: dict) -> int:
        raw = record.get("pid")
        assigned = lanes.get(raw)
        if assigned is None:
            assigned = lanes[raw] = len(lanes) + 1
            name = record.get("process")
            if not name:
                name = "repro" if raw is None else f"pid {raw}"
            lane_names[assigned] = str(name)
        return assigned

    for record in records:
        kind = record.get("type")
        if kind == "span":
            pid = lane(record)
            events.append(
                {
                    "name": record["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": record["start"] * 1e6,
                    "dur": record["wall_s"] * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": _span_args(record),
                }
            )
        elif kind in ("counter", "gauge", "counter_total"):
            pid = lane(record)
            events.append(
                {
                    "name": record["name"],
                    "cat": kind,
                    "ph": "C",
                    "ts": record["start"] * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {record["name"]: record["value"]},
                }
            )
    metadata: list[dict] = []
    for pid in sorted(lane_names):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": lane_names[pid]},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": "main"},
            }
        )
    return metadata + events


def chrome_trace(source) -> dict:
    """A Chrome/Perfetto-loadable trace document.

    ``source`` is an iterable of JSONL records (dicts), or a
    :class:`~repro.obs.Recorder` — the recorder's spans, counter totals
    and gauges are converted in place.

    Examples
    --------
    >>> from repro.obs import recording, span
    >>> with recording() as rec:
    ...     with span("demo.step"):
    ...         pass
    >>> doc = chrome_trace(rec)
    >>> doc["traceEvents"][0]["name"], doc["traceEvents"][0]["ph"]
    ('process_name', 'M')
    >>> [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    ['demo.step']
    """
    if hasattr(source, "events") and hasattr(source, "counters"):
        records = [event.to_record() for event in source.events]
        records += [
            {"type": "counter_total", "name": name, "value": value,
             "start": 0.0}
            for name, value in sorted(source.counters.items())
        ]
        records += [event.to_record() for event in source.gauges]
    else:
        records = list(source)
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def convert_trace_jsonl(input_path, output_path) -> int:
    """Convert a span JSONL file to Chrome trace-event JSON.

    This is ``repro-hc trace convert IN -o OUT``.  Returns the number
    of trace events written; raises :class:`ValueError` on malformed
    JSONL so the CLI can report the offending line.
    """
    records = []
    with open(input_path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{input_path}:{lineno}: not a JSON record ({exc})"
                ) from exc
    document = chrome_trace(records)
    Path(output_path).write_text(
        json.dumps(document) + "\n", encoding="utf-8"
    )
    return len(document["traceEvents"])
