"""Machine-readable benchmark runs and the perf-regression gate.

``repro-hc bench`` runs a curated subset of the workloads behind
``benchmarks/`` — scalar and batched Sinkhorn, warm-started
re-standardization, the full characterize pipeline, the batched
ensemble, and a scheduling heuristic — under
metrics collection, and writes a ``BENCH_<n>.json`` snapshot: git sha,
timestamps, per-benchmark wall/CPU stats, and the key histogram
snapshots (Sinkhorn iterations/residuals, SVD wall time).  The files
seed the repo's perf trajectory; ``--compare BASELINE.json`` turns any
run into a regression gate (non-zero exit when a benchmark's best wall
time regresses past ``--max-regression``).

Payload schema (``"schema": "repro-bench/1"``)::

    {
      "schema": "repro-bench/1",
      "git_sha": "..." | null,
      "generated_at": "2026-01-01T00:00:00+00:00",
      "quick": false,
      "python": "3.12.3", "platform": "Linux-...",
      "benchmarks": {
        "<name>": {"wall_s": {"best": .., "mean": .., "repeats": n},
                    "cpu_s":  {"best": .., "mean": ..},
                    "extra": {..}},   # optional case-reported numbers
                                      # (e.g. serve_latency p50/p99)
        ...
      },
      "metrics": { <MetricsRegistry.snapshot()> },
      "results_snapshots": { "<name>": <benchmarks/results/*.json> }  # optional
    }

All workload imports are lazy so ``import repro.obs`` never drags the
compute layers in.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from .metrics import MetricsRegistry, collecting_metrics

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_CASES",
    "BenchComparison",
    "run_bench",
    "compare_bench",
    "load_bench",
    "validate_bench",
    "write_bench",
    "next_bench_path",
    "collect_results_snapshots",
]

BENCH_SCHEMA = "repro-bench/1"


# -- curated cases -----------------------------------------------------
#
# Each case is fn(quick: bool) -> None: a seeded, deterministic workload
# sized to finish in well under a second (--quick) or a few seconds
# (full).  They mirror the paper-artifact benchmarks in benchmarks/
# without the assertion/reporting scaffolding.


def _rng(seed: int = 0):
    import numpy as np

    return np.random.default_rng(seed)


def _case_sinkhorn_scalar(quick: bool) -> None:
    from ..normalize.sinkhorn import sinkhorn_knopp

    matrix = _rng(1).uniform(0.5, 10.0, size=(24, 8))
    for _ in range(10 if quick else 50):
        sinkhorn_knopp(matrix)


def _case_sinkhorn_batched(quick: bool) -> None:
    from ..batch.sinkhorn import standardize_batched

    stack = _rng(2).uniform(
        0.1, 10.0, size=(16 if quick else 128, 8, 8)
    )
    standardize_batched(stack)


def _case_characterize(quick: bool) -> None:
    from ..measures.report import characterize

    matrix = _rng(3).uniform(0.5, 10.0, size=(12, 5))
    for _ in range(5 if quick else 25):
        characterize(matrix)


def _case_ensemble_batched(quick: bool) -> None:
    from ..batch import characterize_ensemble

    stack = _rng(4).uniform(
        0.1, 10.0, size=(16 if quick else 96, 8, 8)
    )
    characterize_ensemble(stack)


def _case_schedule_min_min(quick: bool) -> None:
    from ..generate.range_based import range_based
    from ..scheduling.selection import compare_heuristics

    env = range_based(12, 5, seed=5)
    compare_heuristics(
        env,
        heuristics=["min_min", "max_min"],
        total=24 if quick else 96,
        seed=5,
    )


def _case_serve_latency(quick: bool) -> dict:
    """The three serving paths of :mod:`repro.serve` on a live server.

    Returns the per-path p50/p99 study dict, which ``run_bench`` folds
    into the payload as ``benchmarks.serve_latency.extra`` — the BENCH
    record of cold vs coalesced vs cache-hit latency.
    """
    from ..serve import ServeConfig, ServerThread
    from ..serve.loadgen import latency_study

    handle = ServerThread(ServeConfig(port=0))
    host, port = handle.start()
    try:
        return latency_study(
            host,
            port,
            shape=(8, 8),
            cold=4 if quick else 8,
            coalesce_width=8 if quick else 16,
            cache_repeats=8 if quick else 16,
            seed=6,
        )
    finally:
        handle.stop()


def _case_serve_overload(quick: bool) -> dict:
    """Open-loop overload drill against a deliberately tiny server.

    A server with a fixed admission limit of 2 and a queue depth of 4
    receives a Poisson arrival stream at several times its measured
    capacity.  The ``extra`` dict records the offered/accepted/shed
    split and the accepted-only percentiles — the BENCH record of how
    shedding behaves under pressure, not of raw speed.
    """
    from ..serve import ServeConfig, ServerThread
    from ..serve.loadgen import overload_drill

    handle = ServerThread(
        ServeConfig(
            port=0,
            linger_s=0.001,
            max_inflight=2,
            queue_depth=4,
            adaptive=False,
        )
    )
    host, port = handle.start()
    try:
        drill = overload_drill(
            host,
            port,
            multiplier=3.0 if quick else 5.0,
            requests=32 if quick else 96,
            seed=11,
            deadline_ms=2000.0,
        )
    finally:
        handle.stop()
    report = drill["report"]
    return {
        "capacity_hz": round(drill["capacity_hz"], 2),
        "offered_hz": round(drill["offered_hz"], 2),
        "multiplier": drill["multiplier"],
        **report.to_payload(),
    }


def _case_warm_start(quick: bool) -> dict:
    """Warm-started re-standardization of a perturbed ensemble.

    A what-if study standardizes the base environment once, then
    re-standardizes a stack of small perturbations; the warm start
    re-applies the base run's scaling vectors before iterating.  The
    returned ``extra`` dict records the cold vs warm iteration totals
    (and their ratio) alongside the wall times, so BENCH snapshots
    track the speedup the warm start buys.
    """
    from ..batch.sinkhorn import standardize_batched
    from ..generate.ensembles import perturb_stack
    from ..normalize.standard_form import standardize

    base = _rng(7).uniform(0.5, 10.0, size=(16, 8))
    stack = perturb_stack(base, 1e-6, 16 if quick else 64, seed=7)
    seeded = standardize(base)
    cold = standardize_batched(stack)
    warm = standardize_batched(
        stack, warm_start=(seeded.row_scale, seeded.col_scale)
    )
    cold_iterations = int(cold.iterations.sum())
    warm_iterations = int(warm.iterations.sum())
    return {
        "cold_iterations": cold_iterations,
        "warm_iterations": warm_iterations,
        "iteration_speedup": cold_iterations / max(warm_iterations, 1),
    }


#: Bench-local store cache: members -> store path.  A shard_scale store
#: is written once per process and re-read by every warm-up/repeat (the
#: workload under test is the *streaming read + characterize*, not
#: store generation).
_SHARD_STORES: dict[int, str] = {}


def _shard_store(n_members: int) -> str:
    path = _SHARD_STORES.get(n_members)
    if path is None:
        import os
        import tempfile

        import numpy as np

        from ..shard.store import create_store

        rng = _rng(8)
        path = os.path.join(
            tempfile.mkdtemp(prefix="repro-bench-shard-"),
            f"store-{n_members}",
        )
        with create_store(path, n_tasks=8, n_machines=8) as writer:
            remaining = n_members
            while remaining:
                k = min(8192, remaining)
                writer.append(
                    np.exp(rng.uniform(-2.3, 2.3, size=(k, 8, 8)))
                )
                remaining -= k
        _SHARD_STORES[n_members] = path
    return path


#: Measured tracemalloc peaks: (members, budget_mb) -> peak bytes.
#: tracemalloc slows allocation ~8x, so the peak is measured once per
#: process — on the warm-up call — and the timed repeats run untracked.
_SHARD_PEAKS: dict[tuple[int, int], int] = {}


def _case_shard_scale(quick: bool) -> dict:
    """Out-of-core sharded characterization with a flat memory ceiling.

    Streams a disk-backed ``(N, 8, 8)`` ensemble through
    :func:`repro.shard.characterize_store` under a fixed memory budget
    and records the actual ``tracemalloc`` heap peak alongside the
    plan, so BENCH snapshots pin both throughput *and* the flat-memory
    promise (``extra.peak_under_budget``).
    """
    from ..shard import StackStore, characterize_store, plan_shards

    n_members = 8_192 if quick else 131_072
    budget_mb = 32
    store = StackStore(_shard_store(n_members))
    plan = plan_shards(
        store.n_members,
        store.n_tasks,
        store.n_machines,
        memory_budget_bytes=budget_mb * 2**20,
    )
    peak = _SHARD_PEAKS.get((n_members, budget_mb))
    if peak is None:
        import tracemalloc

        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        try:
            result = characterize_store(store, memory_budget_mb=budget_mb)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            if started_here:
                tracemalloc.stop()
        _SHARD_PEAKS[(n_members, budget_mb)] = peak
    else:
        result = characterize_store(store, memory_budget_mb=budget_mb)
    return {
        "members": n_members,
        "memory_budget_mb": budget_mb,
        "chunk_size": plan.chunk_size,
        "shards": len(plan.shards),
        "converged": int(result.converged.sum()),
        "tracemalloc_peak_mb": round(peak / 2**20, 3),
        "peak_under_budget": bool(peak <= budget_mb * 2**20),
    }


BENCH_CASES = {
    "sinkhorn_scalar": _case_sinkhorn_scalar,
    "sinkhorn_batched": _case_sinkhorn_batched,
    "warm_start": _case_warm_start,
    "characterize": _case_characterize,
    "ensemble_batched": _case_ensemble_batched,
    "schedule_min_min": _case_schedule_min_min,
    "serve_latency": _case_serve_latency,
    "serve_overload": _case_serve_overload,
    "shard_scale": _case_shard_scale,
}


# -- running -----------------------------------------------------------


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_bench(
    *,
    quick: bool = False,
    benchmarks=None,
    repeats: int | None = None,
    results_dir=None,
) -> dict:
    """Run the curated cases and return the BENCH payload dict.

    Parameters
    ----------
    quick : bool
        Shrink every workload for CI smoke runs (sub-second total).
    benchmarks : iterable of str, optional
        Subset of :data:`BENCH_CASES` names (default: all).
    repeats : int, optional
        Timing repeats per case (default 3 quick / 5 full); best and
        mean of the repeats are reported.
    results_dir : path-like, optional
        Fold the machine-readable ``*.json`` snapshots written next to
        ``benchmarks/results/*.txt`` into the payload
        (``results_snapshots``) when the directory exists.
    """
    names = list(benchmarks) if benchmarks is not None else list(BENCH_CASES)
    unknown = [n for n in names if n not in BENCH_CASES]
    if unknown:
        raise ValueError(
            f"unknown benchmark case(s) {unknown}; "
            f"known: {sorted(BENCH_CASES)}"
        )
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    registry = MetricsRegistry()
    results: dict[str, dict] = {}
    with collecting_metrics(registry):
        for name in names:
            case = BENCH_CASES[name]
            case(quick)  # warm-up: caches, lazy imports, BLAS threads
            walls, cpus = [], []
            extra = None
            for _ in range(repeats):
                cpu0 = time.process_time()
                t0 = time.perf_counter()
                extra = case(quick)
                walls.append(time.perf_counter() - t0)
                cpus.append(time.process_time() - cpu0)
            results[name] = {
                "wall_s": {
                    "best": min(walls),
                    "mean": sum(walls) / repeats,
                    "repeats": repeats,
                },
                "cpu_s": {"best": min(cpus), "mean": sum(cpus) / repeats},
            }
            # A case may return a dict of extra measurements (e.g. the
            # serve_latency per-path percentiles); fold it in verbatim.
            if isinstance(extra, dict) and extra:
                results[name]["extra"] = extra

    payload = {
        "schema": BENCH_SCHEMA,
        "git_sha": _git_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": results,
        "metrics": registry.snapshot(),
    }
    if results_dir is not None:
        snapshots = collect_results_snapshots(results_dir)
        if snapshots:
            payload["results_snapshots"] = snapshots
    validate_bench(payload)
    return payload


def collect_results_snapshots(results_dir) -> dict:
    """The machine-readable ``benchmarks/results/*.json`` siblings.

    ``benchmarks/conftest.py`` writes one JSON document next to every
    regenerated ``*.txt`` table; this folds them into one dict keyed by
    result name (unreadable files are skipped, not fatal — the
    snapshots are provenance, not the gate)."""
    directory = Path(results_dir)
    if not directory.is_dir():
        return {}
    snapshots = {}
    for path in sorted(directory.glob("*.json")):
        try:
            snapshots[path.stem] = json.loads(
                path.read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            continue
    return snapshots


# -- persisting --------------------------------------------------------


def next_bench_path(directory=".") -> Path:
    """The next free ``BENCH_<n>.json`` in ``directory`` (1-based)."""
    directory = Path(directory)
    taken = []
    for path in directory.glob("BENCH_*.json"):
        suffix = path.stem[len("BENCH_"):]
        if suffix.isdigit():
            taken.append(int(suffix))
    return directory / f"BENCH_{max(taken, default=0) + 1}.json"


def write_bench(payload: dict, path=None, directory=".") -> Path:
    """Write the payload to ``path`` (default: the next BENCH_<n>.json)."""
    validate_bench(payload)
    target = Path(path) if path is not None else next_bench_path(directory)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def validate_bench(payload) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a valid BENCH doc."""
    if not isinstance(payload, dict):
        raise ValueError(f"BENCH payload must be a dict, got {type(payload)}")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported BENCH schema {payload.get('schema')!r}; "
            f"expected {BENCH_SCHEMA!r}"
        )
    for key in ("generated_at", "python", "platform"):
        if not isinstance(payload.get(key), str):
            raise ValueError(f"BENCH payload field {key!r} must be a string")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise ValueError("BENCH payload needs a non-empty 'benchmarks' dict")
    for name, entry in benchmarks.items():
        try:
            best = entry["wall_s"]["best"]
            entry["wall_s"]["mean"]
            entry["cpu_s"]
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"benchmark {name!r} entry is malformed: {exc!r}"
            ) from exc
        if not isinstance(best, (int, float)) or best < 0:
            raise ValueError(
                f"benchmark {name!r} wall_s.best must be a non-negative "
                f"number, got {best!r}"
            )
    if not isinstance(payload.get("metrics"), dict):
        raise ValueError("BENCH payload needs a 'metrics' dict")


def load_bench(path) -> dict:
    """Load and validate a ``BENCH_*.json`` file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    try:
        validate_bench(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return payload


# -- comparing ---------------------------------------------------------


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a BENCH run against a baseline.

    ``rows`` has one entry per benchmark present in *both* runs:
    ``{"name", "current_s", "baseline_s", "ratio", "regressed"}``.
    ``only_current`` / ``only_baseline`` list benchmarks missing from
    the other side (reported, never failing).
    """

    rows: tuple[dict, ...]
    max_regression: float
    only_current: tuple[str, ...] = ()
    only_baseline: tuple[str, ...] = ()

    regressions: tuple[dict, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "regressions",
            tuple(row for row in self.rows if row["regressed"]),
        )

    @property
    def ok(self) -> bool:
        return not self.regressions

    def table(self) -> str:
        """Aligned comparison table plus the verdict line."""
        if not self.rows:
            lines = ["(no common benchmarks to compare)"]
        else:
            name_w = max(len("benchmark"), max(len(r["name"]) for r in self.rows))
            lines = [
                f"{'benchmark'.ljust(name_w)}  {'current':>10}  "
                f"{'baseline':>10}  {'ratio':>6}",
            ]
            lines.append("-" * len(lines[0]))
            for row in self.rows:
                flag = "  ** REGRESSION" if row["regressed"] else ""
                lines.append(
                    f"{row['name'].ljust(name_w)}  "
                    f"{row['current_s'] * 1e3:>8.2f}ms  "
                    f"{row['baseline_s'] * 1e3:>8.2f}ms  "
                    f"{row['ratio']:>6.2f}{flag}"
                )
        for name in self.only_current:
            lines.append(f"(new case, no baseline: {name})")
        for name in self.only_baseline:
            lines.append(f"(in baseline only: {name})")
        threshold_pct = self.max_regression * 100
        if self.ok:
            lines.append(
                f"OK: no benchmark regressed more than {threshold_pct:g}%"
            )
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} benchmark(s) regressed "
                f"more than {threshold_pct:g}%"
            )
        return "\n".join(lines)


def compare_bench(
    current: dict, baseline: dict, *, max_regression: float = 0.15
) -> BenchComparison:
    """Compare two BENCH payloads on best wall time per benchmark.

    A benchmark regresses when
    ``current_best > baseline_best * (1 + max_regression)``.  Benchmarks
    present on only one side never fail the gate.

    Examples
    --------
    >>> fast = {"benchmarks": {"case": {"wall_s": {"best": 0.10}}}}
    >>> slow = {"benchmarks": {"case": {"wall_s": {"best": 0.20}}}}
    >>> compare_bench(slow, fast).ok
    False
    >>> compare_bench(fast, fast).ok
    True
    """
    if max_regression < 0:
        raise ValueError(
            f"max_regression must be >= 0, got {max_regression!r}"
        )
    cur = current.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    rows = []
    for name in sorted(set(cur) & set(base)):
        current_s = float(cur[name]["wall_s"]["best"])
        baseline_s = float(base[name]["wall_s"]["best"])
        ratio = current_s / baseline_s if baseline_s > 0 else float("inf")
        rows.append(
            {
                "name": name,
                "current_s": current_s,
                "baseline_s": baseline_s,
                "ratio": ratio,
                "regressed": current_s > baseline_s * (1.0 + max_regression),
            }
        )
    return BenchComparison(
        rows=tuple(rows),
        max_regression=max_regression,
        only_current=tuple(sorted(set(cur) - set(base))),
        only_baseline=tuple(sorted(set(base) - set(cur))),
    )
