"""The contextvar-scoped recorder and its span/decorator front door.

Design (see ``docs/OBSERVABILITY.md`` for the full model):

* Instrumented library code calls :func:`span` (a context manager) or
  is wrapped in :func:`traced`.  Neither takes a recorder argument —
  the *ambient* recorder is looked up in a :mod:`contextvars` variable,
  so instrumentation composes across call stacks, threads and asyncio
  tasks without threading a handle through every signature.
* When no recorder is active (the default), :func:`span` returns a
  shared no-op singleton: the entire cost of disabled instrumentation
  is one contextvar read plus an attribute call, a few hundred
  nanoseconds per span.  ``benchmarks/bench_obs_overhead.py`` pins
  this below 2% of the batched-pipeline runtime.
* :func:`recording` activates a fresh :class:`Recorder` for the
  duration of a ``with`` block and restores the previous state on
  exit, so recordings nest and never leak.

Hot loops that want per-iteration samples should fetch the recorder
once with :func:`current_recorder` and skip the sampling work entirely
when it is ``None`` — see ``repro.batch.sinkhorn`` for the pattern.
"""

from __future__ import annotations

import contextvars
import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterable

from .events import CounterEvent, GaugeEvent, SpanEvent

__all__ = [
    "Recorder",
    "current_recorder",
    "recording",
    "span",
    "traced",
]

_recorder_var: contextvars.ContextVar["Recorder | None"] = (
    contextvars.ContextVar("repro_obs_recorder", default=None)
)


def current_recorder() -> "Recorder | None":
    """The recorder active in this context, or None when disabled.

    Hot loops use this to guard per-iteration sampling::

        rec = current_recorder()
        while iterating:
            ...
            if rec is not None:
                sp.sample("active_slices", int(active.sum()))
    """
    return _recorder_var.get()


class Recorder:
    """Collects structured events for one recording session.

    Attributes
    ----------
    events : list of SpanEvent
        Closed spans in close order.
    counters : dict of str -> float
        Running totals accumulated via :meth:`counter`.
    gauges : list of GaugeEvent
        Point-in-time values recorded via :meth:`gauge`.
    sinks : list
        Sinks receiving every record as it is produced (counter totals
        are additionally flushed on :meth:`close`).
    """

    def __init__(self, sinks: Iterable = ()) -> None:
        self.events: list[SpanEvent] = []
        self.counters: dict[str, float] = {}
        self.gauges: list[GaugeEvent] = []
        self.sinks = list(sinks)
        self._epoch = time.perf_counter()
        self._depth = 0
        self._index = 0
        self._closed = False

    # -- event intake --------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def _record_span(self, event: SpanEvent) -> None:
        self.events.append(event)
        if self.sinks:
            self._emit(event.to_record())

    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value
        if self.sinks:
            self._emit(CounterEvent(name, value, self._now()).to_record())

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value."""
        event = GaugeEvent(name, float(value), self._now())
        self.gauges.append(event)
        if self.sinks:
            self._emit(event.to_record())

    # -- reading back --------------------------------------------------

    def spans(self, prefix: str | None = None) -> list[SpanEvent]:
        """Closed spans, optionally filtered by dotted-name prefix."""
        if prefix is None:
            return list(self.events)
        return [
            e
            for e in self.events
            if e.name == prefix or e.name.startswith(prefix + ".")
        ]

    def summary(self):
        """Aggregate span statistics (see :func:`repro.obs.summary`)."""
        from .summary import summarize

        return summarize(self)

    def close(self) -> None:
        """Flush counter totals and close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.sinks and self.counters:
            now = self._now()
            for name, total in sorted(self.counters.items()):
                self._emit(
                    {
                        "type": "counter_total",
                        "name": name,
                        "value": total,
                        "start": now,
                    }
                )
        for sink in self.sinks:
            sink.close()


class _NoopSpan:
    """Shared do-nothing span returned while recording is disabled."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **meta) -> None:
        pass

    def sample(self, name, value) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open timed region bound to an active recorder."""

    __slots__ = ("_rec", "_name", "_meta", "_samples", "_t0", "_c0", "_depth")

    enabled = True

    def __init__(self, rec: Recorder, name: str, meta: dict) -> None:
        self._rec = rec
        self._name = name
        self._meta = meta
        self._samples: dict[str, list[float]] = {}

    def __enter__(self) -> "_LiveSpan":
        rec = self._rec
        self._depth = rec._depth
        rec._depth += 1
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        rec = self._rec
        rec._depth -= 1
        # Stamp distributed-trace identity when a TraceContext is ambient
        # (recorder spans become children of the surrounding trace).
        # Lookup happens only on the enabled path; the no-op span is
        # untouched.
        from .trace_context import current_trace

        ctx = current_trace()
        child = ctx.child() if ctx is not None else None
        event = SpanEvent(
            name=self._name,
            index=rec._index,
            depth=self._depth,
            start=self._t0 - rec._epoch,
            wall_s=wall,
            cpu_s=cpu,
            meta=self._meta,
            samples={k: tuple(v) for k, v in self._samples.items()},
            error=None if exc_type is None else exc_type.__name__,
            trace_id=None if child is None else child.trace_id,
            span_id=None if child is None else child.span_id,
            parent_id=None if child is None else child.parent_id,
        )
        rec._index += 1
        rec._record_span(event)
        return False

    def note(self, **meta) -> None:
        """Attach metadata to the span (last write per key wins)."""
        self._meta.update(meta)

    def sample(self, name: str, value) -> None:
        """Append one value — or a whole series — to sample set ``name``.

        Scalars append a single point; lists/tuples/arrays extend the
        series (useful for attaching an already-collected residual
        history in one call).
        """
        bucket = self._samples.setdefault(name, [])
        if isinstance(value, (list, tuple)) or (
            hasattr(value, "__iter__") and hasattr(value, "__len__")
        ):
            bucket.extend(float(v) for v in value)
        else:
            bucket.append(float(value))


def span(name: str, **meta):
    """Open a timed region under the ambient recorder.

    Returns a context manager; with no active recorder this is a shared
    no-op singleton, so instrumented code pays only a contextvar read.

    Examples
    --------
    >>> from repro.obs import recording, span
    >>> with recording() as rec:
    ...     with span("example.work", size=3) as sp:
    ...         sp.note(result="ok")
    >>> rec.events[0].name, rec.events[0].meta["result"]
    ('example.work', 'ok')
    """
    rec = _recorder_var.get()
    if rec is None:
        return _NOOP_SPAN
    return _LiveSpan(rec, name, dict(meta) if meta else {})


def traced(_fn: Callable | None = None, *, name: str | None = None, **meta):
    """Decorator form of :func:`span`.

    The span name defaults to the function's module path (minus the
    ``repro.`` prefix) plus its name, e.g.
    ``analysis.sensitivity.sensitivity_study``.  With no recorder
    active the wrapper calls straight through.

    Examples
    --------
    >>> from repro.obs import recording, traced
    >>> @traced(name="example.add")
    ... def add(a, b):
    ...     return a + b
    >>> with recording() as rec:
    ...     add(1, 2)
    3
    >>> rec.events[0].name
    'example.add'
    """

    def decorate(fn: Callable) -> Callable:
        module = fn.__module__ or ""
        if module.startswith("repro."):
            module = module[len("repro."):]
        span_name = name or f"{module}.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            rec = _recorder_var.get()
            if rec is None:
                return fn(*args, **kwargs)
            with _LiveSpan(rec, span_name, dict(meta) if meta else {}):
                return fn(*args, **kwargs)

        wrapper.__traced_span__ = span_name
        return wrapper

    return decorate(_fn) if _fn is not None else decorate


@contextmanager
def recording(
    *,
    sinks: Iterable = (),
    trace_path=None,
    logger=None,
):
    """Activate a fresh :class:`Recorder` for the enclosed block.

    Parameters
    ----------
    sinks : iterable, optional
        Extra sinks receiving every record as it is produced.
    trace_path : path-like, optional
        Convenience: append a :class:`~repro.obs.JsonlSink` writing to
        this path.
    logger : logging.Logger or bool, optional
        Convenience: append a :class:`~repro.obs.LoggingSink`.  Pass a
        logger instance, or True for the default ``repro.obs`` logger.

    Yields the recorder; on exit the previous recorder (usually None)
    is restored and the recorder is closed, flushing counter totals and
    closing file-backed sinks.  Recordings nest: an inner ``recording``
    shadows the outer one for its duration.

    Examples
    --------
    >>> from repro.obs import recording
    >>> from repro import characterize
    >>> with recording() as rec:
    ...     _ = characterize([[1.0, 2.0], [2.0, 1.0]])
    >>> any(e.name.startswith("sinkhorn") for e in rec.events)
    True
    """
    from .sinks import JsonlSink, LoggingSink

    all_sinks = list(sinks)
    if trace_path is not None:
        all_sinks.append(JsonlSink(trace_path))
    if logger is not None:
        all_sinks.append(
            LoggingSink(None if logger is True else logger)
        )
    rec = Recorder(sinks=all_sinks)
    token = _recorder_var.set(rec)
    try:
        yield rec
    finally:
        _recorder_var.reset(token)
        rec.close()
        # While process-wide metrics collection is enabled, completed
        # sessions accumulate into the registry (span-duration
        # histograms + counter totals) so scrape endpoints see every
        # recording without extra wiring.
        from . import metrics as _metrics

        if _metrics.metrics_enabled():
            _metrics.fold_recorder(rec)
