"""Pluggable destinations for :mod:`repro.obs` event records.

A sink is anything with ``emit(record: dict)`` and ``close()`` — the
:class:`Sink` protocol below.  Three stdlib-only implementations ship
with the library:

* :class:`MemorySink` — append records to an in-process list (the
  default for tests and interactive use; the recorder's own event list
  usually suffices, this exists for sink-API symmetry and fan-out).
* :class:`JsonlSink` — one JSON object per line, append-mode file.
  The file is opened lazily on the first record so constructing the
  sink never touches the filesystem.  Every line is flushed as it is
  written: a process killed mid-run (SIGTERM under drain) loses at most
  the record being written, never completed ones.
* :class:`RotatingJsonlSink` — a JsonlSink with size-based rotation
  (``path`` → ``path.1`` → ``path.2`` ...), used for the serving slow-
  request log so an unattended server cannot fill a disk.
* :class:`LoggingSink` — bridge into :mod:`logging`; each record
  becomes one ``DEBUG`` (spans/gauges) or ``INFO`` (counters at close)
  message on the ``repro.obs`` logger, so existing logging
  configuration picks up traces with no extra wiring.

Records are plain dicts (see :meth:`repro.obs.events.SpanEvent.to_record`)
and are already JSON-safe when they reach a sink.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Protocol, runtime_checkable

__all__ = ["Sink", "MemorySink", "JsonlSink", "RotatingJsonlSink", "LoggingSink"]


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive event records."""

    def emit(self, record: dict) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Collect records in an in-process list (``sink.records``)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Write one JSON object per line to ``path`` (append mode).

    The file handle is opened on the first :meth:`emit` and closed by
    :meth:`close` (which :func:`repro.obs.recording` calls on exit).
    Each record is written and flushed as one line, so a SIGTERM'd
    process never loses spans that already completed — at worst the
    final line is truncated, which ``trace query`` tolerates.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = None

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class RotatingJsonlSink:
    """A :class:`JsonlSink` with size-based rotation.

    When appending a record would push the current file past
    ``max_bytes``, the file is rotated: ``path.{backups}`` is dropped,
    ``path.N`` → ``path.N+1``, ``path`` → ``path.1`` and a fresh file is
    started.  With ``backups=0`` the file is simply truncated.
    """

    def __init__(self, path, *, max_bytes: int = 1_000_000, backups: int = 3) -> None:
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._handle = None

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _rotate(self) -> None:
        self.close()
        if self.backups <= 0:
            if os.path.exists(self.path):
                os.remove(self.path)
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")

    def emit(self, record: dict) -> None:
        line = json.dumps(record) + "\n"
        handle = self._open()
        if self.max_bytes > 0 and handle.tell() + len(line) > self.max_bytes:
            self._rotate()
            handle = self._open()
        handle.write(line)
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class LoggingSink:
    """Forward records to a :mod:`logging` logger.

    Spans log at DEBUG as ``span sinkhorn.scalar wall=1.23ms cpu=1.10ms``;
    counters and gauges log their name and value.  Pass a ``logger`` to
    override the default ``repro.obs`` logger (e.g. to attach handlers
    in a service).
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.obs")

    def emit(self, record: dict) -> None:
        kind = record.get("type", "event")
        if kind == "span":
            self.logger.debug(
                "span %s wall=%.3fms cpu=%.3fms depth=%d meta=%s",
                record["name"],
                record["wall_s"] * 1e3,
                record["cpu_s"] * 1e3,
                record["depth"],
                record.get("meta", {}),
            )
        elif kind == "counter":
            self.logger.info(
                "counter %s += %s", record["name"], record["value"]
            )
        else:
            self.logger.debug(
                "%s %s = %s", kind, record.get("name"), record.get("value")
            )

    def close(self) -> None:
        pass
