"""Pluggable destinations for :mod:`repro.obs` event records.

A sink is anything with ``emit(record: dict)`` and ``close()`` — the
:class:`Sink` protocol below.  Three stdlib-only implementations ship
with the library:

* :class:`MemorySink` — append records to an in-process list (the
  default for tests and interactive use; the recorder's own event list
  usually suffices, this exists for sink-API symmetry and fan-out).
* :class:`JsonlSink` — one JSON object per line, append-mode file.
  The file is opened lazily on the first record so constructing the
  sink never touches the filesystem.
* :class:`LoggingSink` — bridge into :mod:`logging`; each record
  becomes one ``DEBUG`` (spans/gauges) or ``INFO`` (counters at close)
  message on the ``repro.obs`` logger, so existing logging
  configuration picks up traces with no extra wiring.

Records are plain dicts (see :meth:`repro.obs.events.SpanEvent.to_record`)
and are already JSON-safe when they reach a sink.
"""

from __future__ import annotations

import json
import logging
from typing import Protocol, runtime_checkable

__all__ = ["Sink", "MemorySink", "JsonlSink", "LoggingSink"]


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive event records."""

    def emit(self, record: dict) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Collect records in an in-process list (``sink.records``)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Write one JSON object per line to ``path`` (append mode).

    The file handle is opened on the first :meth:`emit` and closed by
    :meth:`close` (which :func:`repro.obs.recording` calls on exit).
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = None

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class LoggingSink:
    """Forward records to a :mod:`logging` logger.

    Spans log at DEBUG as ``span sinkhorn.scalar wall=1.23ms cpu=1.10ms``;
    counters and gauges log their name and value.  Pass a ``logger`` to
    override the default ``repro.obs`` logger (e.g. to attach handlers
    in a service).
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.obs")

    def emit(self, record: dict) -> None:
        kind = record.get("type", "event")
        if kind == "span":
            self.logger.debug(
                "span %s wall=%.3fms cpu=%.3fms depth=%d meta=%s",
                record["name"],
                record["wall_s"] * 1e3,
                record["cpu_s"] * 1e3,
                record["depth"],
                record.get("meta", {}),
            )
        elif kind == "counter":
            self.logger.info(
                "counter %s += %s", record["name"], record["value"]
            )
        else:
            self.logger.debug(
                "%s %s = %s", kind, record.get("name"), record.get("value")
            )

    def close(self) -> None:
        pass
