"""Process-wide metrics: labelled counters, gauges and histograms.

The :class:`~repro.obs.Recorder` answers "where did time go" for one
in-process recording session; this module is the durable sibling — a
:class:`MetricsRegistry` that aggregates across *every* kernel call in
the process and renders to standard formats
(:func:`repro.obs.export.render_prometheus`).

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (kernel runs,
  ensemble members by dispatch path, quarantine outcomes by taxonomy
  slug);
* :class:`Gauge` — point-in-time values (last folded recorder gauges);
* :class:`Histogram` — fixed-bucket distributions (Sinkhorn
  iterations-to-tolerance, residual at exit, SVD wall time, span
  durations).

Instruments are labelled: one metric name carries many label-value
series (``repro_sinkhorn_runs_total{kernel="scalar",converged="true"}``).

Collection is **off by default** and gated by a module-level flag so the
instrumented hot paths pay one early-return function call per kernel
*run* (never per iteration) while disabled —
``benchmarks/bench_obs_overhead.py`` pins this below 1% of a scalar
Sinkhorn call.  Enable it explicitly::

    from repro.obs import collecting_metrics, render_prometheus

    with collecting_metrics() as registry:
        characterize(env)                  # hot paths feed the registry
    print(render_prometheus(registry))

Completed :func:`repro.obs.recording` sessions are folded into the
registry automatically while collection is enabled (span wall-time
histograms plus the recorder's counter totals); :func:`fold_recorder`
does the same explicitly.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "collecting_metrics",
    "fold_recorder",
    "observe_serve_request",
    "observe_serve_scrape",
    "observe_coalesce_batch",
    "count_serve_kernel",
    "count_serve_cache",
    "count_serve_quarantined",
    "count_serve_admitted",
    "count_serve_shed",
    "count_serve_deadline_exceeded",
    "count_serve_drain",
    "set_serve_admission_limit",
    "register_serve_resilience_metrics",
    "observe_shard_chunk",
    "count_shard_dispatch",
    "ITERATION_BUCKETS",
    "RESIDUAL_BUCKETS",
    "SECONDS_BUCKETS",
    "BATCH_SIZE_BUCKETS",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sinkhorn iterations-to-tolerance.  The paper's SPEC matrices converge
#: in 6-7 iterations; adversarial dynamic ranges push into the hundreds
#: and non-normalizable patterns run to the ``max_iterations`` ceiling,
#: so the grid is log-ish from 1 to the 100k default ceiling.
ITERATION_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    500.0, 1_000.0, 10_000.0, 100_000.0,
)

#: Residual at kernel exit.  Converged runs sit at or below the 1e-8
#: default tolerance; the coarse upper decades characterize how far
#: non-converged (Section VI) runs stalled.
RESIDUAL_BUCKETS = (
    1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0,
)

#: Wall-clock durations (SVD calls, folded span times).  Sub-100 µs
#: scalar kernels up through minute-scale analysis fan-outs.
SECONDS_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Coalesced batch sizes (powers of two up to the default max-batch
#: ceilings the server offers).  A healthy coalescer under concurrent
#: load shows mass above the ``le="1"`` bucket.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class MetricFamily:
    """One collected metric: identity plus every label-series sample.

    ``samples`` maps a label-value tuple (ordered as ``labelnames``) to
    the series value — a float for counters/gauges, or a dict with
    ``"buckets"`` (per-bucket non-cumulative counts, ``+Inf`` last),
    ``"sum"`` and ``"count"`` for histograms.  ``buckets`` on the family
    carries the upper bounds for histogram kinds, ``None`` otherwise.
    """

    name: str
    kind: str
    help: str
    labelnames: tuple[str, ...]
    samples: dict
    buckets: tuple[float, ...] | None = None


class _Metric:
    """Shared identity + label-key handling of the three instruments."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def series(self) -> dict:
        """Snapshot of every label-series value (label tuple -> value)."""
        with self._lock:
            return {k: self._copy_value(v) for k, v in self._series.items()}

    @staticmethod
    def _copy_value(value):
        return value


class Counter(_Metric):
    """A monotonically increasing total (per label series)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` (>= 0) to the series selected by ``labels``."""
        value = float(value)
        if value < 0 or math.isnan(value):
            raise ValueError(
                f"counter {self.name!r} can only increase, got {value!r}"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current total of one label series (0.0 when never incremented)."""
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # last slot = +Inf bucket
        self.sum = 0.0
        self.count = 0
        # bucket index -> {"labels": {...}, "value": v, "timestamp": ts};
        # populated only when observe() is handed an exemplar, so
        # exemplar-free histograms pay nothing.
        self.exemplars: dict[int, dict] | None = None


class Histogram(_Metric):
    """A fixed-bucket distribution; buckets are upper bounds (``le``)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets) -> None:
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(
            not math.isfinite(b) for b in bounds
        ) or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be finite and strictly "
                f"increasing, got {bounds}"
            )
        self.buckets = bounds

    def observe(self, value: float, exemplar: dict | None = None, **labels) -> None:
        """Record one observation into the series selected by ``labels``.

        NaN observations are dropped (a NaN would poison ``sum`` and
        land in no meaningful bucket — robust pipelines can legitimately
        produce NaN residuals for quarantined members).

        ``exemplar`` is an optional label dict (e.g. ``{"trace_id":
        "..."}``): the last exemplar per bucket is kept and rendered as
        an OpenMetrics exemplar on that bucket's sample line, so a p99
        bucket points at a concrete trace to pull up.
        """
        value = float(value)
        if math.isnan(value):
            return
        key = self._key(labels)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets)
                )
            series.counts[idx] += 1
            series.sum += value
            series.count += 1
            if exemplar:
                if series.exemplars is None:
                    series.exemplars = {}
                series.exemplars[idx] = {
                    "labels": {str(k): str(v) for k, v in exemplar.items()},
                    "value": value,
                    "timestamp": time.time(),
                }

    def snapshot(self, **labels) -> dict:
        """``{"buckets": {le: cumulative_count}, "sum": s, "count": n}``
        for one label series (all-zero when never observed)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            counts = list(series.counts) if series else [0] * (
                len(self.buckets) + 1
            )
            total = series.sum if series else 0.0
            n = series.count if series else 0
        cumulative, running = {}, 0
        for bound, c in zip(self.buckets, counts):
            running += c
            cumulative[bound] = running
        cumulative[math.inf] = running + counts[-1]
        return {"buckets": cumulative, "sum": total, "count": n}

    @staticmethod
    def _copy_value(value):
        copied = {
            "counts": list(value.counts),
            "sum": value.sum,
            "count": value.count,
        }
        if value.exemplars:
            copied["exemplars"] = {
                idx: dict(ex) for idx, ex in value.exemplars.items()
            }
        return copied


_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with create-or-get registration.

    ``counter()`` / ``gauge()`` / ``histogram()`` return the existing
    instrument when the name is already registered (validating that the
    kind, label names and buckets agree), so call sites never need to
    coordinate registration order.  All mutation is guarded by one lock,
    making the registry safe to scrape from the metrics HTTP endpoint
    while kernels feed it.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> runs = registry.counter(
    ...     "demo_runs_total", "Demo runs.", labelnames=("kind",)
    ... )
    >>> runs.inc(kind="fast"); runs.inc(2, kind="slow")
    >>> runs.value(kind="slow")
    2.0
    >>> sorted(f.name for f in registry.collect())
    ['demo_runs_total']
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration (create-or-get) ----------------------------------

    def _register(self, kind: str, name: str, help: str, labelnames, **extra):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(
                    f"invalid label name {label!r} for metric {name!r}"
                )
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                if kind == "histogram" and existing.buckets != tuple(
                    float(b) for b in extra["buckets"]
                ):
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        f"buckets {existing.buckets}"
                    )
                return existing
            metric = _METRIC_CLASSES[kind](
                name, help, labelnames, self._lock, **extra
            )
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        buckets=SECONDS_BUCKETS,
    ) -> Histogram:
        return self._register(
            "histogram", name, help, labelnames, buckets=buckets
        )

    # -- reading back --------------------------------------------------

    def get(self, name: str) -> _Metric:
        """The registered instrument called ``name`` (KeyError if absent)."""
        with self._lock:
            return self._metrics[name]

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def collect(self) -> list[MetricFamily]:
        """Every metric as a :class:`MetricFamily`, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [
            MetricFamily(
                name=m.name,
                kind=m.kind,
                help=m.help,
                labelnames=m.labelnames,
                samples=m.series(),
                buckets=getattr(m, "buckets", None),
            )
            for m in metrics
        ]

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric (the BENCH payload format)."""
        out = {}
        for family in self.collect():
            series = []
            for key, value in sorted(family.samples.items()):
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    # Exemplars are scrape-surface decoration, not part
                    # of the stable BENCH payload shape.
                    value = {k: v for k, v in value.items() if k != "exemplars"}
                    series.append({"labels": labels, **value})
                else:
                    series.append({"labels": labels, "value": value})
            entry = {"kind": family.kind, "help": family.help,
                     "series": series}
            if family.buckets is not None:
                entry["buckets"] = list(family.buckets)
            out[family.name] = entry
        return out

    def reset(self) -> None:
        """Drop every recorded value (registrations survive)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()


# -- the process-wide default registry and its enable gate -------------

_default_registry = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (always available, gate aside)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable_metrics() -> None:
    """Open the gate: hot paths start feeding the default registry."""
    global _enabled
    _enabled = True


def disable_metrics() -> None:
    global _enabled
    _enabled = False


def metrics_enabled() -> bool:
    """Whether hot-path instrumentation currently records anything."""
    return _enabled


@contextmanager
def collecting_metrics(registry: MetricsRegistry | None = None):
    """Enable metrics collection for a block, yielding the registry.

    Pass a fresh :class:`MetricsRegistry` to collect in isolation (the
    default registry is swapped in-place and restored on exit — the
    pattern every test uses); with no argument the process-wide default
    registry collects.

    Examples
    --------
    >>> from repro.normalize.sinkhorn import sinkhorn_knopp
    >>> with collecting_metrics(MetricsRegistry()) as registry:
    ...     _ = sinkhorn_knopp([[1.0, 2.0], [3.0, 4.0]])
    >>> registry.get("repro_sinkhorn_runs_total").value(
    ...     kernel="scalar", converged="true")
    1.0
    """
    global _enabled
    previous_registry = None
    if registry is not None:
        previous_registry = set_registry(registry)
    previous_enabled = _enabled
    _enabled = True
    try:
        yield _default_registry
    finally:
        _enabled = previous_enabled
        if previous_registry is not None:
            set_registry(previous_registry)


# -- pre-specified instruments fed by the compute layers ---------------
#
# Helpers rather than module-level instrument objects so a swapped
# default registry (collecting_metrics(fresh)) is always the one fed.
# Every helper early-returns while the gate is closed; that early
# return IS the disabled-path cost the overhead benchmark budgets.


def observe_sinkhorn(
    kernel: str,
    *,
    iterations: int,
    residual: float,
    converged: bool,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one scalar Sinkhorn kernel run (scalar/margins kernels)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_sinkhorn_runs_total",
        "Sinkhorn kernel runs by kernel and convergence outcome.",
        labelnames=("kernel", "converged"),
    ).inc(kernel=kernel, converged="true" if converged else "false")
    registry.histogram(
        "repro_sinkhorn_iterations",
        "Full (column+row) Sinkhorn iterations to tolerance per run.",
        labelnames=("kernel",),
        buckets=ITERATION_BUCKETS,
    ).observe(iterations, kernel=kernel)
    registry.histogram(
        "repro_sinkhorn_exit_residual",
        "Largest row/column-sum deviation at kernel exit.",
        labelnames=("kernel",),
        buckets=RESIDUAL_BUCKETS,
    ).observe(residual, kernel=kernel)


def observe_sinkhorn_batch(
    kernel: str,
    *,
    iterations,
    residual,
    converged,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record every slice of a batched Sinkhorn run (per-slice arrays)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    for it, res, conv in zip(iterations, residual, converged):
        observe_sinkhorn(
            kernel,
            iterations=int(it),
            residual=float(res),
            converged=bool(conv),
            registry=registry,
        )


def observe_svd(
    kernel: str, wall_s: float, registry: MetricsRegistry | None = None
) -> None:
    """Record the wall time of one SVD call (scalar or stacked)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.histogram(
        "repro_svd_seconds",
        "Wall time of the singular-value decompositions behind TMA.",
        labelnames=("kernel",),
        buckets=SECONDS_BUCKETS,
    ).observe(wall_s, kernel=kernel)


def count_ensemble_members(
    *,
    batched: int = 0,
    fallback: int = 0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record ensemble members by dispatch path (batched vs scalar)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    counter = registry.counter(
        "repro_ensemble_members_total",
        "Ensemble members characterized, by kernel dispatch path.",
        labelnames=("path",),
    )
    if batched:
        counter.inc(batched, path="batched")
    if fallback:
        counter.inc(fallback, path="fallback")


def count_member_outcomes(
    report, registry: MetricsRegistry | None = None
) -> None:
    """Record robust-pipeline member outcomes by taxonomy slug.

    ``report`` is a :class:`repro.robust.QuarantineReport`; outcomes are
    ``quarantined``, ``repaired`` plus one series per fault-category
    slug seen (``fault.nan_input``, ``fault.non_convergent``, ...).
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    counter = registry.counter(
        "repro_member_outcomes_total",
        "Robust ensemble member outcomes by quarantine taxonomy slug.",
        labelnames=("outcome",),
    )
    counter.inc(len(report.quarantined), outcome="quarantined")
    counter.inc(len(report.repaired), outcome="repaired")
    for category, indices in report.by_category().items():
        counter.inc(len(indices), outcome=f"fault.{category}")


def count_backend_dispatch(
    backend: str, kernel: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one kernel invocation by backend (``repro.backends``)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_backend_dispatch_total",
        "Kernel invocations by backend and kernel entry point.",
        labelnames=("backend", "kernel"),
    ).inc(backend=backend, kernel=kernel)


def count_backend_precision(
    backend: str, outcome: str, registry: MetricsRegistry | None = None
) -> None:
    """Record a float32 fast-path outcome (``verified``/``fallback``)."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_backend_precision_total",
        "float32 fast-path outcomes: float64-verified vs discarded.",
        labelnames=("backend", "outcome"),
    ).inc(backend=backend, outcome=outcome)


def count_warm_start(
    kernel: str, outcome: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one warm-started Sinkhorn run and how it ended."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_backend_warm_start_total",
        "Warm-started Sinkhorn runs by kernel and convergence outcome.",
        labelnames=("kernel", "outcome"),
    ).inc(kernel=kernel, outcome=outcome)


def count_characterize(
    tma_method: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one full characterization by TMA method taken."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_characterize_runs_total",
        "Full heterogeneity characterizations by TMA method.",
        labelnames=("tma_method",),
    ).inc(tma_method=tma_method)


def fold_recorder(
    recorder, registry: MetricsRegistry | None = None
) -> None:
    """Fold a completed :class:`repro.obs.Recorder` into a registry.

    Spans land in the ``repro_span_seconds`` histogram (one ``span``
    label series per span name) plus ``repro_spans_total`` /
    ``repro_span_errors_total`` counters; the recorder's counter totals
    accumulate onto ``repro_obs_counter_total`` and its gauges set
    ``repro_obs_gauge`` (last value per name wins).

    :func:`repro.obs.recording` calls this automatically on exit while
    metrics collection is enabled, so CLI profile runs and long-lived
    services feed the scrape endpoint with no extra wiring.
    """
    if registry is None:
        registry = _default_registry
    span_seconds = registry.histogram(
        "repro_span_seconds",
        "Wall time of recorded obs spans, by span name.",
        labelnames=("span",),
        buckets=SECONDS_BUCKETS,
    )
    spans_total = registry.counter(
        "repro_spans_total",
        "Recorded obs spans, by span name.",
        labelnames=("span",),
    )
    span_errors = registry.counter(
        "repro_span_errors_total",
        "Recorded obs spans that exited by raising, by span name.",
        labelnames=("span",),
    )
    for event in recorder.events:
        span_seconds.observe(event.wall_s, span=event.name)
        spans_total.inc(span=event.name)
        if event.error is not None:
            span_errors.inc(span=event.name)
    counter_total = registry.counter(
        "repro_obs_counter_total",
        "Recorder counter totals folded at session close, by name.",
        labelnames=("counter",),
    )
    for name, total in recorder.counters.items():
        counter_total.inc(total, counter=name)
    if recorder.gauges:
        gauge = registry.gauge(
            "repro_obs_gauge",
            "Last recorded obs gauge value, by name.",
            labelnames=("gauge",),
        )
        for event in recorder.gauges:
            gauge.set(event.value, gauge=event.name)


# -- serving-layer instruments (repro.serve) ---------------------------
#
# Same contract as the kernel helpers above: early return while the
# gate is closed, explicit registry override for isolated collection.


def observe_serve_request(
    endpoint: str,
    *,
    status: int,
    source: str,
    wall_s: float,
    trace_id: str | None = None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one finished service request.

    ``source`` names the path that produced the response bytes:
    ``cold`` (computed in a batch of one), ``batched`` (computed in a
    coalesced batch > 1), ``inflight`` (joined an identical in-flight
    computation), ``cache-memory`` / ``cache-disk`` (content-addressed
    cache hit), or ``error``.  Scrape traffic (``GET /metrics``,
    ``/healthz*``) never lands here — it is recorded separately by
    :func:`observe_serve_scrape` so it cannot skew the latency
    distribution the adaptive admission controller tunes against.

    ``trace_id`` attaches an OpenMetrics exemplar to the latency bucket
    this request fell into, tying the histogram tail to a concrete
    trace.
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_requests_total",
        "Characterization service requests by endpoint and HTTP status.",
        labelnames=("endpoint", "status"),
    ).inc(endpoint=endpoint, status=str(int(status)))
    registry.histogram(
        "repro_serve_request_seconds",
        "Service request wall time by endpoint and serving path.",
        labelnames=("endpoint", "source"),
        buckets=SECONDS_BUCKETS,
    ).observe(
        wall_s,
        exemplar={"trace_id": trace_id} if trace_id else None,
        endpoint=endpoint,
        source=source,
    )


def observe_serve_scrape(
    kind: str,
    *,
    status: int,
    wall_s: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one observability scrape (``GET /metrics`` or ``/healthz*``).

    Scrapes are kept out of ``repro_serve_requests_total`` /
    ``repro_serve_request_seconds`` entirely: a 15-second Prometheus
    scrape interval would otherwise pile sub-millisecond observations
    into the serving histograms and drag the p99 the AIMD estimator
    targets.  They get their own family instead, so scrape traffic is
    still visible.
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_scrapes_total",
        "Observability scrapes (metrics/health endpoints) by kind and status.",
        labelnames=("kind", "status"),
    ).inc(kind=kind, status=str(int(status)))
    registry.histogram(
        "repro_serve_scrape_seconds",
        "Wall time of observability scrapes, by kind.",
        labelnames=("kind",),
        buckets=SECONDS_BUCKETS,
    ).observe(wall_s, kind=kind)


def observe_coalesce_batch(
    endpoint: str, size: int, registry: MetricsRegistry | None = None
) -> None:
    """Record the size of one flushed coalescer batch."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.histogram(
        "repro_serve_coalesce_batch_size",
        "Requests per coalesced kernel batch, by endpoint.",
        labelnames=("endpoint",),
        buckets=BATCH_SIZE_BUCKETS,
    ).observe(size, endpoint=endpoint)


def count_serve_kernel(
    endpoint: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one batched kernel invocation issued by the service."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_kernel_invocations_total",
        "Batched kernel calls issued by the coalescer, by endpoint.",
        labelnames=("endpoint",),
    ).inc(endpoint=endpoint)


def count_serve_cache(
    event: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one result-cache event.

    ``event`` is ``hit-memory``, ``hit-disk``, ``miss``, ``store`` or
    ``spill``.
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_cache_events_total",
        "Content-addressed result cache events.",
        labelnames=("event",),
    ).inc(event=event)


def count_serve_quarantined(
    endpoint: str, category: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one request answered with a structured quarantine error."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_quarantined_total",
        "Service requests quarantined, by endpoint and fault category.",
        labelnames=("endpoint", "category"),
    ).inc(endpoint=endpoint, category=category)


# -- serving resilience instruments (repro.serve.resilience) -----------


def count_serve_admitted(
    endpoint: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one request admitted past the admission controller."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_admitted_total",
        "Requests admitted to the compute path, by endpoint.",
        labelnames=("endpoint",),
    ).inc(endpoint=endpoint)


def count_serve_shed(
    endpoint: str, reason: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one request shed by the admission layer.

    ``reason`` is ``queue-full`` (bounded pending queue overflowed) or
    ``draining`` (graceful shutdown in progress); deadline sheds are
    counted separately by :func:`count_serve_deadline_exceeded`.
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_shed_total",
        "Requests shed with a structured 503, by endpoint and reason.",
        labelnames=("endpoint", "reason"),
    ).inc(endpoint=endpoint, reason=reason)


def count_serve_deadline_exceeded(
    endpoint: str, stage: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one request shed because its deadline expired.

    ``stage`` names where the expiry was caught: ``entry`` (already
    expired when parsed), ``admission`` (expired while queued for a
    slot) or ``coalesce`` (expired while lingering in a batch group).
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_deadline_exceeded_total",
        "Requests shed at their deadline, by endpoint and pipeline stage.",
        labelnames=("endpoint", "stage"),
    ).inc(endpoint=endpoint, stage=stage)


def count_serve_drain(
    event: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one graceful-drain lifecycle event.

    ``event`` is ``started``, ``flushed`` (coalescer groups flushed
    during the drain), ``completed`` (all in-flight requests finished)
    or ``timeout`` (the drain deadline expired with work still live).
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_drain_total",
        "Graceful-drain lifecycle events.",
        labelnames=("event",),
    ).inc(event=event)


def set_serve_admission_limit(
    endpoint: str, limit: float, registry: MetricsRegistry | None = None
) -> None:
    """Publish the live AIMD admission limit of one endpoint."""
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.gauge(
        "repro_serve_admission_limit",
        "Current adaptive admission limit, by endpoint.",
        labelnames=("endpoint",),
    ).set(float(limit), endpoint=endpoint)


def register_serve_resilience_metrics(
    registry: MetricsRegistry | None = None,
) -> None:
    """Pre-register the resilience metric families (zero-valued).

    The server calls this at startup so an operator scraping
    ``/metrics`` sees the ``repro_serve_{admitted,shed,
    deadline_exceeded,drain}_total`` families (HELP/TYPE lines) before
    the first overload ever happens — a dashboard wired against a
    healthy server keeps working when the weather turns.
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_serve_admitted_total",
        "Requests admitted to the compute path, by endpoint.",
        labelnames=("endpoint",),
    )
    registry.counter(
        "repro_serve_shed_total",
        "Requests shed with a structured 503, by endpoint and reason.",
        labelnames=("endpoint", "reason"),
    )
    registry.counter(
        "repro_serve_deadline_exceeded_total",
        "Requests shed at their deadline, by endpoint and pipeline stage.",
        labelnames=("endpoint", "stage"),
    )
    registry.counter(
        "repro_serve_drain_total",
        "Graceful-drain lifecycle events.",
        labelnames=("event",),
    )
    registry.gauge(
        "repro_serve_admission_limit",
        "Current adaptive admission limit, by endpoint.",
        labelnames=("endpoint",),
    )


# -- shard-engine instruments (repro.shard) ----------------------------


def observe_shard_chunk(
    mode: str,
    *,
    members: int,
    wall_s: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one completed shard chunk.

    ``mode`` names the dispatch path: ``serial`` (streamed in-process)
    or ``pool`` (scheduled on a worker process).
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_shard_chunks_total",
        "Shard chunks characterized, by dispatch mode.",
        labelnames=("mode",),
    ).inc(mode=mode)
    registry.counter(
        "repro_shard_members_total",
        "Ensemble members streamed through the shard engine, by mode.",
        labelnames=("mode",),
    ).inc(members, mode=mode)
    registry.histogram(
        "repro_shard_chunk_seconds",
        "Wall time of one shard chunk (read + characterize), by mode.",
        labelnames=("mode",),
        buckets=SECONDS_BUCKETS,
    ).observe(wall_s, mode=mode)


def count_shard_dispatch(
    event: str, registry: MetricsRegistry | None = None
) -> None:
    """Record one shard-scheduler dispatch event.

    ``event`` is ``primary`` (first dispatch of a shard),
    ``speculative`` (redundant re-dispatch of a straggling shard),
    ``winner_primary`` / ``winner_backup`` (which copy finished first),
    or ``cancelled`` (the losing copy was revoked or abandoned).
    """
    if registry is None:
        if not _enabled:
            return
        registry = _default_registry
    registry.counter(
        "repro_shard_dispatch_total",
        "Shard scheduler dispatch events (straggler mitigation).",
        labelnames=("event",),
    ).inc(event=event)
