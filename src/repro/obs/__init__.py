"""repro.obs — zero-dependency structured tracing for the compute layers.

The observability subsystem answers "where do time and iterations go"
for the library's hot paths: Sinkhorn normalization (scalar and
batched), the SVD behind TMA, the scheduling heuristics and the
analysis fan-outs.  It is pure stdlib (contextvars + time + json +
logging) and costs almost nothing when disabled.

Quickstart
----------
>>> from repro import characterize
>>> from repro.obs import recording, summary
>>> with recording() as rec:
...     _ = characterize([[1.0, 2.0], [2.0, 1.0]])
>>> stats = summary(rec)
>>> stats.covers("sinkhorn") and stats.covers("svd")
True

Core pieces
-----------
* :func:`recording` — activate a contextvar-scoped :class:`Recorder`
  for a ``with`` block (optionally wiring a JSONL trace file or a
  :mod:`logging` bridge).
* :func:`span` / :func:`traced` — instrument a region / a function;
  no-ops when no recorder is active.
* :func:`current_recorder` — ambient-recorder lookup for hot loops
  that guard per-iteration sampling.
* :func:`summary` — count/total/p50/p95/p99 aggregation per span name,
  the table behind ``repro-hc profile``.
* Sinks: :class:`MemorySink`, :class:`JsonlSink`, :class:`LoggingSink`
  (anything matching the :class:`Sink` protocol works).
* Metrics: a process-wide :class:`MetricsRegistry` of labelled
  counters, gauges and fixed-bucket histograms that the hot paths feed
  while :func:`enable_metrics` (or :func:`collecting_metrics`) is
  active; :func:`render_prometheus` / :func:`start_metrics_server`
  expose it in Prometheus text format, :func:`chrome_trace` /
  :func:`convert_trace_jsonl` convert recorder output into Chrome
  ``about:tracing`` JSON, and :func:`run_bench` / :func:`compare_bench`
  drive the machine-readable ``repro-hc bench`` regression pipeline.

See ``docs/OBSERVABILITY.md`` for the recorder model, sink selection,
the metrics/export layer and measured overhead numbers.
"""

from .bench import (
    BENCH_CASES,
    BENCH_SCHEMA,
    BenchComparison,
    compare_bench,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from .events import CounterEvent, GaugeEvent, SpanEvent
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    chrome_trace,
    chrome_trace_events,
    convert_trace_jsonl,
    render_prometheus,
    start_metrics_server,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    collecting_metrics,
    disable_metrics,
    enable_metrics,
    fold_recorder,
    get_registry,
    metrics_enabled,
    set_registry,
)
from .recorder import (
    Recorder,
    current_recorder,
    recording,
    span,
    traced,
)
from .sinks import JsonlSink, LoggingSink, MemorySink, RotatingJsonlSink, Sink
from .summary import SpanStats, SpanSummary, summarize, summary
from .trace_context import (
    TIMING_STAGES,
    RequestTrace,
    TraceContext,
    Tracer,
    current_trace,
    current_tracer,
    set_tracer,
    trace_scope,
    tracing,
)
from .trace_query import (
    TraceView,
    format_trace,
    group_traces,
    load_spans,
    query_traces,
)

__all__ = [
    "Recorder",
    "recording",
    "span",
    "traced",
    "current_recorder",
    "summary",
    "summarize",
    "SpanSummary",
    "SpanStats",
    "SpanEvent",
    "CounterEvent",
    "GaugeEvent",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "RotatingJsonlSink",
    "LoggingSink",
    "TraceContext",
    "RequestTrace",
    "Tracer",
    "TIMING_STAGES",
    "current_trace",
    "current_tracer",
    "set_tracer",
    "trace_scope",
    "tracing",
    "TraceView",
    "load_spans",
    "group_traces",
    "query_traces",
    "format_trace",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "collecting_metrics",
    "fold_recorder",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "start_metrics_server",
    "chrome_trace",
    "chrome_trace_events",
    "convert_trace_jsonl",
    "BENCH_SCHEMA",
    "BENCH_CASES",
    "BenchComparison",
    "run_bench",
    "write_bench",
    "load_bench",
    "validate_bench",
    "compare_bench",
]
