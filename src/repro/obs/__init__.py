"""repro.obs — zero-dependency structured tracing for the compute layers.

The observability subsystem answers "where do time and iterations go"
for the library's hot paths: Sinkhorn normalization (scalar and
batched), the SVD behind TMA, the scheduling heuristics and the
analysis fan-outs.  It is pure stdlib (contextvars + time + json +
logging) and costs almost nothing when disabled.

Quickstart
----------
>>> from repro import characterize
>>> from repro.obs import recording, summary
>>> with recording() as rec:
...     _ = characterize([[1.0, 2.0], [2.0, 1.0]])
>>> stats = summary(rec)
>>> stats.covers("sinkhorn") and stats.covers("svd")
True

Core pieces
-----------
* :func:`recording` — activate a contextvar-scoped :class:`Recorder`
  for a ``with`` block (optionally wiring a JSONL trace file or a
  :mod:`logging` bridge).
* :func:`span` / :func:`traced` — instrument a region / a function;
  no-ops when no recorder is active.
* :func:`current_recorder` — ambient-recorder lookup for hot loops
  that guard per-iteration sampling.
* :func:`summary` — count/total/p50/p95 aggregation per span name,
  the table behind ``repro-hc profile``.
* Sinks: :class:`MemorySink`, :class:`JsonlSink`, :class:`LoggingSink`
  (anything matching the :class:`Sink` protocol works).

See ``docs/OBSERVABILITY.md`` for the recorder model, sink selection
and measured overhead numbers.
"""

from .events import CounterEvent, GaugeEvent, SpanEvent
from .recorder import (
    Recorder,
    current_recorder,
    recording,
    span,
    traced,
)
from .sinks import JsonlSink, LoggingSink, MemorySink, Sink
from .summary import SpanStats, SpanSummary, summarize, summary

__all__ = [
    "Recorder",
    "recording",
    "span",
    "traced",
    "current_recorder",
    "summary",
    "summarize",
    "SpanSummary",
    "SpanStats",
    "SpanEvent",
    "CounterEvent",
    "GaugeEvent",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "LoggingSink",
]
