"""Structured event records emitted by the :mod:`repro.obs` recorder.

Three event kinds cover the instrumentation needs of the compute
layers:

* :class:`SpanEvent` — one timed region (a Sinkhorn run, an SVD call,
  one heuristic execution) with wall/CPU duration, nesting depth,
  free-form metadata and optional per-iteration sample series
  (e.g. the residual after every Sinkhorn iteration).
* :class:`CounterEvent` — a monotonically accumulated count (trials
  fanned out, scheduling decisions committed).
* :class:`GaugeEvent` — a point-in-time value (active-mask occupancy,
  stack memory footprint).

Events are plain frozen dataclasses with a :meth:`to_record` method
producing the JSON-safe dict representation every sink consumes, so
new sinks never need to know about the dataclasses themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SpanEvent", "CounterEvent", "GaugeEvent", "jsonable"]


def jsonable(value: Any) -> Any:
    """Best-effort coercion of metadata values to JSON-safe types.

    Numpy scalars (which carry ``item()``), bools, ints, floats and
    strings pass through; sequences are converted element-wise; anything
    else falls back to ``str`` so a sink can never raise on emit.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return jsonable(value.item())
        except (ValueError, TypeError):
            return str(value)
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)) or (
        hasattr(value, "__iter__") and hasattr(value, "__len__")
    ):
        return [jsonable(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class SpanEvent:
    """One closed timed region.

    Attributes
    ----------
    name : str
        Dotted span name (``"sinkhorn.scalar"``, ``"svd.batched"``,
        ``"scheduling.min_min"`` ...).
    index : int
        Sequence number within the recorder (0-based, close order).
    depth : int
        Nesting depth at entry (0 = top level).
    start : float
        Entry time in seconds relative to the recorder's epoch.
    wall_s, cpu_s : float
        Wall-clock and process-CPU duration of the region.
    meta : dict
        Free-form annotations attached via ``span.note(...)`` (matrix
        shape, iteration count, makespan, ...).
    samples : dict of str -> tuple of float
        Named per-iteration series attached via ``span.sample(...)``
        (convergence residuals, active-mask occupancy, ...).
    error : str or None
        Exception type name when the region exited by raising.
    trace_id, span_id, parent_id : str or None
        Distributed-trace identity (W3C format), stamped when a
        :class:`repro.obs.trace_context.TraceContext` was ambient while
        the span closed.  None for untraced runs, and omitted from the
        record so existing sinks and tooling see unchanged output.
    links : tuple of dict
        Span links (``{"trace_id", "span_id"}``) for fan-in spans such
        as a batched kernel serving several request traces.
    """

    name: str
    index: int
    depth: int
    start: float
    wall_s: float
    cpu_s: float
    meta: dict = field(default_factory=dict)
    samples: dict = field(default_factory=dict)
    error: str | None = None
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None
    links: tuple = ()

    def to_record(self) -> dict:
        record = {
            "type": "span",
            "name": self.name,
            "index": self.index,
            "depth": self.depth,
            "start": self.start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "meta": {k: jsonable(v) for k, v in self.meta.items()},
        }
        if self.samples:
            record["samples"] = {
                k: [float(v) for v in vs] for k, vs in self.samples.items()
            }
        if self.error is not None:
            record["error"] = self.error
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
            record["span_id"] = self.span_id
            if self.parent_id is not None:
                record["parent_id"] = self.parent_id
            if self.links:
                record["links"] = [dict(link) for link in self.links]
        return record


@dataclass(frozen=True)
class CounterEvent:
    """One counter increment (the recorder also keeps running totals)."""

    name: str
    value: float
    start: float

    def to_record(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "value": self.value,
            "start": self.start,
        }


@dataclass(frozen=True)
class GaugeEvent:
    """One point-in-time measurement."""

    name: str
    value: float
    start: float

    def to_record(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "start": self.start,
        }
